//! End-to-end application-specific flow on the D26_media SoC benchmark:
//! synthesize topologies across a range of switch counts, compare the VC
//! overhead of the deadlock-removal algorithm with resource ordering, and
//! estimate the resulting power — i.e. a miniature version of the paper's
//! Figures 8 and 10 driven entirely through the public API.
//!
//! Run with `cargo run --release --example soc_media_synthesis`.

use noc_suite::deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_suite::deadlock::resource_ordering::apply_resource_ordering;
use noc_suite::power::{NetworkPowerModel, TechParams};
use noc_suite::synth::{synthesize, SynthesisConfig};
use noc_suite::topology::benchmarks::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let comm = Benchmark::D26Media.comm_graph();
    let model = NetworkPowerModel::new(TechParams::default());

    println!(
        "{:>9} {:>12} {:>12} {:>16} {:>16}",
        "switches", "removal_vc", "ordering_vc", "removal_power", "ordering_power"
    );
    for switch_count in (6..=22).step_by(4) {
        let design = synthesize(&comm, &SynthesisConfig::with_switches(switch_count))?;

        // Paper's algorithm.
        let mut dr_topology = design.topology.clone();
        let mut dr_routes = design.routes.clone();
        let report = remove_deadlocks(&mut dr_topology, &mut dr_routes, &RemovalConfig::default())?;
        let dr_power = model.estimate(&dr_topology, &comm, &dr_routes);

        // Resource-ordering baseline.
        let mut ro_topology = design.topology.clone();
        let mut ro_routes = design.routes.clone();
        let ro = apply_resource_ordering(&mut ro_topology, &mut ro_routes)?;
        let ro_power = model.estimate(&ro_topology, &comm, &ro_routes);

        println!(
            "{:>9} {:>12} {:>12} {:>13.1} mW {:>13.1} mW",
            switch_count,
            report.added_vcs,
            ro.added_vcs,
            dr_power.total_power_mw,
            ro_power.total_power_mw
        );
    }
    Ok(())
}
