//! Packets and flits.

use noc_topology::FlowId;

/// Identifier of a packet within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub usize);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Kind of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitKind {
    /// First flit: allocates VCs along the route.
    Head,
    /// Payload flit.
    Body,
    /// Last flit: releases the VCs it passes.
    Tail,
    /// Single-flit packet: acts as head and tail at once.
    HeadTail,
}

/// One flit of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// The packet this flit belongs to.
    pub packet: PacketId,
    /// Kind (head / body / tail).
    pub kind: FlitKind,
    /// Sequence number of the flit within the packet (head = 0).
    pub sequence: usize,
}

/// A packet: `length` flits following the static route of its flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Identifier.
    pub id: PacketId,
    /// The flow whose route the packet follows.
    pub flow: FlowId,
    /// Number of flits (≥ 1).
    pub length: usize,
    /// Cycle at which the packet was created (entered the source queue).
    pub created_at: u64,
}

impl Packet {
    /// Builds the flit sequence of this packet.
    pub fn flits(&self) -> Vec<Flit> {
        if self.length == 1 {
            return vec![Flit {
                packet: self.id,
                kind: FlitKind::HeadTail,
                sequence: 0,
            }];
        }
        (0..self.length)
            .map(|sequence| Flit {
                packet: self.id,
                kind: if sequence == 0 {
                    FlitKind::Head
                } else if sequence == self.length - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                },
                sequence,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_sequence_of_a_multi_flit_packet() {
        let p = Packet {
            id: PacketId(3),
            flow: FlowId::from_index(0),
            length: 4,
            created_at: 10,
        };
        let flits = p.flits();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.sequence == i));
        assert!(flits.iter().all(|f| f.packet == PacketId(3)));
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let p = Packet {
            id: PacketId(0),
            flow: FlowId::from_index(1),
            length: 1,
            created_at: 0,
        };
        let flits = p.flits();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
    }

    #[test]
    fn packet_id_display() {
        assert_eq!(PacketId(7).to_string(), "P7");
    }
}
