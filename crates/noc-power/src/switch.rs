//! Per-switch area and power estimation.

use crate::params::TechParams;

/// Geometry of one switch, derived from the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchGeometry {
    /// Incoming physical links (plus one local injection port is added
    /// internally).
    pub in_links: usize,
    /// Outgoing physical links (plus one local ejection port).
    pub out_links: usize,
    /// Total VC input buffers across all incoming links (one buffer per VC).
    pub input_buffers: usize,
}

impl SwitchGeometry {
    /// Total input ports including the local injection port.
    pub fn in_ports(&self) -> usize {
        self.in_links + 1
    }

    /// Total output ports including the local ejection port.
    pub fn out_ports(&self) -> usize {
        self.out_links + 1
    }

    /// Buffers including the single local-port buffer.
    pub fn buffers(&self) -> usize {
        self.input_buffers + 1
    }
}

/// Area and power breakdown of one switch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SwitchEstimate {
    /// Input-buffer area in µm².
    pub buffer_area_um2: f64,
    /// Crossbar area in µm².
    pub crossbar_area_um2: f64,
    /// Arbiter area in µm².
    pub arbiter_area_um2: f64,
    /// Dynamic power in mW at the given load.
    pub dynamic_power_mw: f64,
    /// Leakage power in mW.
    pub leakage_power_mw: f64,
}

impl SwitchEstimate {
    /// Total switch area in µm².
    pub fn total_area_um2(&self) -> f64 {
        self.buffer_area_um2 + self.crossbar_area_um2 + self.arbiter_area_um2
    }

    /// Total switch power in mW.
    pub fn total_power_mw(&self) -> f64 {
        self.dynamic_power_mw + self.leakage_power_mw
    }
}

/// Estimates the area and power of a switch.
///
/// `load_flits_per_cycle` is the aggregate flit rate traversing the switch
/// (0.0 = idle, `out_ports` = fully saturated); it drives the dynamic-energy
/// terms while area and leakage depend only on the geometry — which is why
/// adding VCs (buffers) costs area and leakage even on idle links, the
/// effect behind the paper's Figure 10.
pub fn estimate_switch(
    geometry: SwitchGeometry,
    load_flits_per_cycle: f64,
    params: &TechParams,
) -> SwitchEstimate {
    let buffer_area_um2 =
        geometry.buffers() as f64 * params.buffer_bits() as f64 * params.buffer_bit_area_um2;
    let crossbar_area_um2 = geometry.in_ports() as f64
        * geometry.out_ports() as f64
        * params.flit_width_bits as f64
        * params.crossbar_bit_area_um2;
    let arbiter_area_um2 =
        geometry.in_ports() as f64 * geometry.out_ports() as f64 * params.arbiter_pair_area_um2;

    // Dynamic energy per flit: buffer write+read, crossbar traversal, one
    // arbitration.
    let energy_per_flit_pj = params.flit_width_bits as f64
        * (params.buffer_access_energy_pj_per_bit + params.crossbar_energy_pj_per_bit)
        + params.arbitration_energy_pj;
    // flits/cycle * cycles/s * pJ = pW; convert to mW.
    let dynamic_power_mw =
        load_flits_per_cycle * params.frequency_mhz * 1.0e6 * energy_per_flit_pj * 1.0e-9;

    let total_area = buffer_area_um2 + crossbar_area_um2 + arbiter_area_um2;
    let leakage_power_mw = total_area * params.leakage_mw_per_um2;

    SwitchEstimate {
        buffer_area_um2,
        crossbar_area_um2,
        arbiter_area_um2,
        dynamic_power_mw,
        leakage_power_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(buffers: usize) -> SwitchGeometry {
        SwitchGeometry {
            in_links: 3,
            out_links: 3,
            input_buffers: buffers,
        }
    }

    #[test]
    fn ports_include_the_local_port() {
        let g = geometry(3);
        assert_eq!(g.in_ports(), 4);
        assert_eq!(g.out_ports(), 4);
        assert_eq!(g.buffers(), 4);
    }

    #[test]
    fn more_buffers_mean_more_area_and_leakage() {
        let p = TechParams::default();
        let small = estimate_switch(geometry(3), 0.5, &p);
        let big = estimate_switch(geometry(6), 0.5, &p);
        assert!(big.buffer_area_um2 > small.buffer_area_um2);
        assert!(big.total_area_um2() > small.total_area_um2());
        assert!(big.leakage_power_mw > small.leakage_power_mw);
        // Crossbar area is unchanged: the extra VCs share the physical ports.
        assert!((big.crossbar_area_um2 - small.crossbar_area_um2).abs() < 1e-9);
    }

    #[test]
    fn idle_switch_has_only_leakage() {
        let p = TechParams::default();
        let e = estimate_switch(geometry(3), 0.0, &p);
        assert_eq!(e.dynamic_power_mw, 0.0);
        assert!(e.leakage_power_mw > 0.0);
        assert!(e.total_power_mw() > 0.0);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_load() {
        let p = TechParams::default();
        let half = estimate_switch(geometry(3), 0.5, &p);
        let full = estimate_switch(geometry(3), 1.0, &p);
        assert!((full.dynamic_power_mw - 2.0 * half.dynamic_power_mw).abs() < 1e-9);
    }
}
