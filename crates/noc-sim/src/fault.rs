//! The fault-model seam: scheduled runtime faults and the transient
//! dependency graph behind cycle-safe live reconfiguration.
//!
//! A [`FaultPlan`] is the *scenario*: seeded link/switch failures (and
//! optional repairs) at scheduled cycles, either hand-written or produced by
//! the [fault-storm generator](FaultPlan::storm).  The
//! [`VcSimulator`](crate::VcSimulator) consumes the plan via
//! `with_faults`: on each fault batch it invalidates the affected flows,
//! re-routes them onto surviving up*/down* paths and migrates traffic
//! old→new *without a global drain* — an epoch only commits after the
//! transient combined dependency graph (committed routes of every flow plus
//! the residual old-route segments of in-flight worms) has been checked
//! acyclic on the incrementally maintained dependency graph.
//!
//! This mirrors the two reconfiguration schools named in the related work:
//! DBR's recovery-based scheme (drain only what is provably entangled) and
//! Remote Control's avoidance scheme (never let an unsafe configuration
//! become active in the first place).

use noc_graph::{DiGraph, IncrementalScc, NodeId};
use noc_rng::SmallRng;
use noc_topology::{FaultSet, LinkId, SwitchId, Topology};
use std::collections::HashMap;

/// One scheduled fault or repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The link fails: no flit may traverse it from this cycle on.  The
    /// simulator treats this as a physical cable fault — the reverse twin
    /// of a bidirectional pair goes down with it.
    LinkDown(LinkId),
    /// A previously failed link (and its reverse twin) is repaired.
    LinkUp(LinkId),
    /// The switch fails, taking every incident link down with it.
    SwitchDown(SwitchId),
    /// A previously failed switch is repaired.
    SwitchUp(SwitchId),
}

/// A fault or repair scheduled at a simulation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the fault takes effect (processed at the start of the cycle).
    pub cycle: u64,
    /// What fails or recovers.
    pub kind: FaultKind,
}

/// Parameters of the seeded fault-storm generator ([`FaultPlan::storm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StormConfig {
    /// Number of link failures to inject.
    pub faults: usize,
    /// Cycle of the first failure.
    pub first_cycle: u64,
    /// Cycles between consecutive failures.
    pub spacing: u64,
    /// RNG seed; the same seed over the same topology yields the same plan.
    pub seed: u64,
    /// When set, every failed link is repaired this many cycles later.
    pub repair_after: Option<u64>,
    /// Resample candidates whose failure would split the fabric into more
    /// components than it started with (bounded retries, so a storm on a
    /// fragile topology may still partition it — the harness checks
    /// [`connectivity_after`](noc_topology::Topology::connectivity_after)
    /// rather than trusting the flag).
    pub avoid_partition: bool,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            faults: 3,
            first_cycle: 200,
            spacing: 400,
            seed: 0xFA_17,
            repair_after: None,
            avoid_partition: true,
        }
    }
}

/// A schedule of runtime faults and repairs, sorted by cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a run with it armed is byte-identical to a run
    /// without the fault seam at all (pinned by the property suite).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit events (stably sorted by cycle, so same-cycle
    /// events keep their given order and apply as one batch).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events }
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, sorted by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Cycle of the last scheduled event (fault or repair), if any.
    pub fn last_event_cycle(&self) -> Option<u64> {
        self.events.last().map(|e| e.cycle)
    }

    /// Replays the whole plan into a [`FaultSet`] with the simulator's
    /// cable-fault (pair) semantics: the cumulative failure state after the
    /// last event.  Harnesses use it with
    /// [`connectivity_after`](Topology::connectivity_after) to predict
    /// which flows a plan leaves unreachable.
    pub fn final_faults(&self, topology: &Topology) -> FaultSet {
        let mut down = FaultSet::new(topology);
        for event in &self.events {
            match event.kind {
                FaultKind::LinkDown(link) => down.fail_link_pair(topology, link),
                FaultKind::LinkUp(link) => down.repair_link_pair(topology, link),
                FaultKind::SwitchDown(switch) => down.fail_switch(switch),
                FaultKind::SwitchUp(switch) => down.repair_switch(switch),
            }
        }
        down
    }

    /// Generates a seeded link-failure storm: `config.faults` distinct
    /// links fail at `first_cycle`, `first_cycle + spacing`, … (each
    /// repaired `repair_after` cycles later when configured).
    ///
    /// With [`avoid_partition`](StormConfig::avoid_partition) set,
    /// candidates that would increase the fabric's component count are
    /// resampled a bounded number of times, so storms on well-connected
    /// topologies keep every flow routable — the regime the `fig_faults`
    /// acceptance invariant (every strategy delivers through the storm)
    /// is asserted over.
    pub fn storm(topology: &Topology, config: &StormConfig) -> Self {
        let link_count = topology.link_count();
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut down = FaultSet::new(topology);
        let baseline = topology.connectivity_after(&down).component_count();
        // A link fault is a cable fault (both directions of a pair), so a
        // chosen link excludes its reverse twin from later picks.
        let mut excluded: Vec<LinkId> = Vec::new();
        let mut events = Vec::new();
        for k in 0..config.faults {
            if excluded.len() >= link_count {
                break; // nothing left to fail
            }
            let mut pick = None;
            for attempt in 0..(8 * link_count.max(1)) {
                let cand = LinkId::from_index(rng.gen_range(0..link_count));
                if excluded.contains(&cand) {
                    continue;
                }
                if config.avoid_partition {
                    down.fail_link_pair(topology, cand);
                    let split = topology.connectivity_after(&down).component_count() > baseline;
                    if split && attempt + 1 < 8 * link_count.max(1) {
                        down.repair_link_pair(topology, cand);
                        continue;
                    }
                }
                pick = Some(cand);
                break;
            }
            let Some(link) = pick else { break };
            if !config.avoid_partition {
                down.fail_link_pair(topology, link);
            }
            excluded.push(link);
            if let Some(l) = topology.link(link) {
                if let Some(reverse) = topology.find_link(l.target, l.source) {
                    excluded.push(reverse);
                }
            }
            let at = config.first_cycle + k as u64 * config.spacing;
            events.push(FaultEvent {
                cycle: at,
                kind: FaultKind::LinkDown(link),
            });
            if let Some(delay) = config.repair_after {
                events.push(FaultEvent {
                    cycle: at + delay,
                    kind: FaultKind::LinkUp(link),
                });
            }
        }
        FaultPlan::new(events)
    }
}

/// The incrementally maintained dependency graph the epoch protocol checks.
///
/// Nodes are the simulator's dense channels (link × VC); edges are
/// refcounted "holding this channel, the worm next needs that one" pairs
/// contributed by committed flow routes and, transiently during an epoch
/// check, by the residual old-route segments of in-flight worms.  Acyclicity
/// queries go through [`IncrementalScc`], so per-event cost scales with the
/// dirty region a reconfiguration touched, not the whole graph.
#[derive(Debug)]
pub(crate) struct DepGraph {
    graph: DiGraph<usize, ()>,
    nodes: Vec<NodeId>,
    refs: HashMap<(usize, usize), usize>,
    scc: IncrementalScc,
}

impl DepGraph {
    /// An edgeless graph over `channel_count` dense channels.
    pub fn new(channel_count: usize) -> Self {
        let mut graph = DiGraph::new();
        let nodes: Vec<NodeId> = (0..channel_count).map(|c| graph.add_node(c)).collect();
        DepGraph {
            graph,
            nodes,
            refs: HashMap::new(),
            scc: IncrementalScc::new(),
        }
    }

    /// Adds the consecutive-channel dependencies of one path.
    pub fn add_path(&mut self, path: &[usize]) {
        for pair in path.windows(2) {
            self.add_edge(pair[0], pair[1]);
        }
    }

    /// Removes the dependencies previously added for `path`.
    pub fn remove_path(&mut self, path: &[usize]) {
        for pair in path.windows(2) {
            self.remove_edge(pair[0], pair[1]);
        }
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let count = self.refs.entry((from, to)).or_insert(0);
        *count += 1;
        if *count == 1 {
            self.graph.add_edge(self.nodes[from], self.nodes[to], ());
            self.scc.mark_dirty(self.nodes[from]);
            self.scc.mark_dirty(self.nodes[to]);
        }
    }

    fn remove_edge(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        let Some(count) = self.refs.get_mut(&(from, to)) else {
            debug_assert!(false, "removing dependency {from}->{to} never added");
            return;
        };
        *count -= 1;
        if *count == 0 {
            self.refs.remove(&(from, to));
            let edge = self
                .graph
                .find_edge(self.nodes[from], self.nodes[to])
                .expect("refcounted edge exists in the graph");
            self.graph.remove_edge(edge);
            self.scc.mark_dirty(self.nodes[from]);
            self.scc.mark_dirty(self.nodes[to]);
        }
    }

    /// Dense channels on cycles (members of non-trivial SCCs), sorted.
    pub fn cyclic_channels(&mut self) -> Vec<usize> {
        let mut channels: Vec<usize> = self
            .scc
            .cyclic_nodes(&self.graph)
            .iter()
            .map(|n| n.index())
            .collect();
        channels.sort_unstable();
        channels
    }

    /// `true` when any dependency cycle exists.
    pub fn is_cyclic(&mut self) -> bool {
        !self.cyclic_channels().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::generators;

    #[test]
    fn none_plan_is_empty() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.events(), &[]);
        assert_eq!(plan.last_event_cycle(), None);
    }

    #[test]
    fn plans_sort_stably_by_cycle() {
        let l = |i| LinkId::from_index(i);
        let plan = FaultPlan::new(vec![
            FaultEvent {
                cycle: 300,
                kind: FaultKind::LinkDown(l(2)),
            },
            FaultEvent {
                cycle: 100,
                kind: FaultKind::LinkDown(l(0)),
            },
            FaultEvent {
                cycle: 300,
                kind: FaultKind::LinkUp(l(0)),
            },
        ]);
        let cycles: Vec<u64> = plan.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![100, 300, 300]);
        // Stable: the same-cycle pair keeps its given order.
        assert_eq!(plan.events()[1].kind, FaultKind::LinkDown(l(2)));
        assert_eq!(plan.last_event_cycle(), Some(300));
    }

    #[test]
    fn storm_is_deterministic_and_distinct() {
        let topo = generators::mesh2d(3, 3, 1.0).topology;
        let config = StormConfig::default();
        let a = FaultPlan::storm(&topo, &config);
        let b = FaultPlan::storm(&topo, &config);
        assert_eq!(a, b, "same seed, same storm");
        assert_eq!(a.events().len(), 3);
        let mut links: Vec<LinkId> = a
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::LinkDown(l) => l,
                other => panic!("storms without repairs only fail links: {other:?}"),
            })
            .collect();
        links.sort();
        links.dedup();
        assert_eq!(links.len(), 3, "failed links are distinct");
        let other = FaultPlan::storm(&topo, &StormConfig { seed: 99, ..config });
        assert_ne!(a, other, "different seeds explore different storms");
    }

    #[test]
    fn storm_with_repairs_schedules_matching_ups() {
        let topo = generators::mesh2d(3, 3, 1.0).topology;
        let plan = FaultPlan::storm(
            &topo,
            &StormConfig {
                faults: 2,
                repair_after: Some(150),
                ..StormConfig::default()
            },
        );
        let downs: Vec<&FaultEvent> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkDown(_)))
            .collect();
        let ups: Vec<&FaultEvent> = plan
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::LinkUp(_)))
            .collect();
        assert_eq!(downs.len(), 2);
        assert_eq!(ups.len(), 2);
        for (down, up) in downs.iter().zip(&ups) {
            assert_eq!(up.cycle, down.cycle + 150);
        }
    }

    #[test]
    fn storm_avoids_partition_on_a_mesh() {
        // Faults are cable faults (both directions of a pair), so on a
        // 3×3 mesh a careless 3-fault storm can isolate a corner; the
        // avoiding generator must keep the mesh in one piece under the
        // same pair semantics the simulator applies.
        let topo = generators::mesh2d(3, 3, 1.0).topology;
        for seed in 0..20 {
            let plan = FaultPlan::storm(
                &topo,
                &StormConfig {
                    faults: 3,
                    seed,
                    ..StormConfig::default()
                },
            );
            let mut down = FaultSet::new(&topo);
            for event in plan.events() {
                if let FaultKind::LinkDown(link) = event.kind {
                    down.fail_link_pair(&topo, link);
                }
            }
            assert!(
                topo.connectivity_after(&down).is_fully_connected(),
                "seed {seed} partitioned the mesh"
            );
        }
    }

    #[test]
    fn dep_graph_refcounts_and_detects_cycles() {
        let mut dep = DepGraph::new(4);
        assert!(!dep.is_cyclic());
        dep.add_path(&[0, 1, 2]);
        dep.add_path(&[1, 2, 3]); // 1->2 now refcounted twice
        assert!(!dep.is_cyclic());
        dep.add_path(&[3, 0]);
        // 0->1->2->3->0 closes the loop.
        assert_eq!(dep.cyclic_channels(), vec![0, 1, 2, 3]);
        dep.remove_path(&[0, 1, 2]);
        // 1->2 survives (still referenced by the second path), but 0->1 is
        // gone, so the cycle is broken.
        assert!(!dep.is_cyclic());
        dep.remove_path(&[1, 2, 3]);
        dep.remove_path(&[3, 0]);
        assert!(!dep.is_cyclic());
    }
}
