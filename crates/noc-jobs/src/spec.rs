//! Job specs: the JSON request a client submits, and its canonical
//! content-hash identity.

use crate::digest::sha256_hex;
use crate::error::JobError;
use noc_flow::json::{JsonValue, ToJson, SCHEMA_VERSION};

/// A submitted job: which figure to evaluate and with what parameters.
///
/// The wire form is a single JSON object:
///
/// ```json
/// {"id": "fig8-nightly", "figure": "fig8_d26_media", "params": {}, "threads": 4}
/// ```
///
/// `id` (optional) is a client-chosen handle for spool filenames and log
/// lines; `params` (optional, default `{}`) is the figure-specific
/// configuration; `threads` (optional, default `0` = auto-size) is the
/// worker-pool width.  Neither `id` nor `threads` is part of the job's
/// *identity*: two requests for the same figure with the same params are
/// the same job — see [`JobRequest::canonical`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen handle (may be empty).
    pub id: String,
    /// The figure to evaluate (must name a registered job source).
    pub figure: String,
    /// Figure-specific parameters (a JSON object; empty by default).
    pub params: JsonValue,
    /// Worker-pool width (`0` auto-sizes to the machine).
    pub threads: usize,
}

impl JobRequest {
    /// A request for `figure` with default (empty) parameters.
    pub fn new(figure: impl Into<String>) -> Self {
        JobRequest {
            id: String::new(),
            figure: figure.into(),
            params: JsonValue::Object(Vec::new()),
            threads: 0,
        }
    }

    /// Parses a request from its JSON wire form, rejecting unknown keys so
    /// a typo'd parameter fails loudly instead of silently running the
    /// default sweep.
    pub fn from_json(text: &str) -> Result<JobRequest, JobError> {
        let value = JsonValue::parse(text)?;
        let JsonValue::Object(fields) = &value else {
            return Err(JobError::Spec("a job spec must be a JSON object".into()));
        };
        let mut request = JobRequest::new(String::new());
        for (key, field) in fields {
            match key.as_str() {
                "id" => match field {
                    JsonValue::String(id) => request.id = id.clone(),
                    _ => return Err(JobError::Spec("\"id\" must be a string".into())),
                },
                "figure" => match field {
                    JsonValue::String(figure) => request.figure = figure.clone(),
                    _ => return Err(JobError::Spec("\"figure\" must be a string".into())),
                },
                "params" => match field {
                    JsonValue::Object(_) => request.params = field.clone(),
                    _ => return Err(JobError::Spec("\"params\" must be an object".into())),
                },
                "threads" => match field {
                    JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => {
                        request.threads = *n as usize;
                    }
                    _ => {
                        return Err(JobError::Spec(
                            "\"threads\" must be a non-negative integer".into(),
                        ))
                    }
                },
                other => {
                    return Err(JobError::Spec(format!("unknown key {other:?}")));
                }
            }
        }
        if request.figure.is_empty() {
            return Err(JobError::Spec("missing required key \"figure\"".into()));
        }
        Ok(request)
    }

    /// The canonical identity of the job: figure, recursively key-sorted
    /// params, and the artifact schema version (so a schema bump never
    /// reuses stale cached results).  `id` and `threads` are deliberately
    /// excluded — they change how and where a job runs, not what it
    /// computes.
    pub fn canonical(&self) -> String {
        let mut out = String::from("{\"figure\":");
        self.figure.write_json(&mut out);
        out.push_str(",\"params\":");
        write_canonical(&self.params, &mut out);
        out.push_str(&format!(",\"schema\":{SCHEMA_VERSION}}}"));
        out
    }

    /// SHA-256 hex digest of [`JobRequest::canonical`] — the job's
    /// content-hash key in store directories and the result cache.
    pub fn digest(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }

    /// Renders the request back to its wire form (document key order).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\"id\":");
        self.id.write_json(&mut out);
        out.push_str(",\"figure\":");
        self.figure.write_json(&mut out);
        out.push_str(",\"params\":");
        write_value(&self.params, &mut out);
        out.push_str(&format!(",\"threads\":{}}}", self.threads));
        out
    }
}

/// Renders a parsed [`JsonValue`] preserving document key order.
pub fn write_value(value: &JsonValue, out: &mut String) {
    write_json_value(value, out, false);
}

/// Renders a parsed [`JsonValue`] in canonical form: object keys
/// recursively sorted (bytewise), numbers through the writer's
/// shortest-round-trip `f64` rendering.  Two specs that parse to the same
/// value always canonicalize to the same bytes — the property the digest
/// keys rely on.
pub fn write_canonical(value: &JsonValue, out: &mut String) {
    write_json_value(value, out, true);
}

fn write_json_value(value: &JsonValue, out: &mut String, canonical: bool) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => b.write_json(out),
        JsonValue::Number(n) => n.write_json(out),
        JsonValue::String(s) => s.write_json(out),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_value(item, out, canonical);
            }
            out.push(']');
        }
        JsonValue::Object(fields) => {
            let mut ordered: Vec<&(String, JsonValue)> = fields.iter().collect();
            if canonical {
                ordered.sort_by(|a, b| a.0.cmp(&b.0));
            }
            out.push('{');
            for (i, (key, field)) in ordered.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                key.write_json(out);
                out.push(':');
                write_json_value(field, out, canonical);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_specs() {
        let minimal = JobRequest::from_json("{\"figure\":\"fig8_d26_media\"}").unwrap();
        assert_eq!(minimal.figure, "fig8_d26_media");
        assert_eq!(minimal.threads, 0);
        assert!(minimal.id.is_empty());

        let full = JobRequest::from_json(
            "{\"id\":\"n1\",\"figure\":\"fig_strategy_matrix\",\
             \"params\":{\"switch_counts\":[6,8]},\"threads\":2}",
        )
        .unwrap();
        assert_eq!(full.id, "n1");
        assert_eq!(full.threads, 2);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_types() {
        assert!(matches!(
            JobRequest::from_json("{\"figure\":\"f\",\"frobnicate\":1}"),
            Err(JobError::Spec(_))
        ));
        assert!(matches!(
            JobRequest::from_json("{\"figure\":7}"),
            Err(JobError::Spec(_))
        ));
        assert!(matches!(
            JobRequest::from_json("{\"id\":\"x\"}"),
            Err(JobError::Spec(_))
        ));
        assert!(matches!(
            JobRequest::from_json("{\"figure\":\"f\",\"threads\":-1}"),
            Err(JobError::Spec(_)) | Err(JobError::Json(_))
        ));
    }

    #[test]
    fn identity_ignores_id_and_threads_but_not_params() {
        let a = JobRequest::from_json("{\"id\":\"a\",\"figure\":\"f\",\"threads\":1}").unwrap();
        let b = JobRequest::from_json("{\"id\":\"b\",\"figure\":\"f\",\"threads\":8}").unwrap();
        assert_eq!(a.digest(), b.digest());

        let c = JobRequest::from_json("{\"figure\":\"f\",\"params\":{\"n\":1}}").unwrap();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn canonical_form_sorts_keys_recursively() {
        let a = JobRequest::from_json(
            "{\"figure\":\"f\",\"params\":{\"b\":{\"y\":1,\"x\":2},\"a\":3}}",
        )
        .unwrap();
        let b = JobRequest::from_json(
            "{\"figure\":\"f\",\"params\":{\"a\":3,\"b\":{\"x\":2,\"y\":1}}}",
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert!(a.canonical().contains("\"a\":3,\"b\":{\"x\":2,\"y\":1}"));
    }

    #[test]
    fn wire_form_round_trips() {
        let spec = "{\"id\":\"j\",\"figure\":\"f\",\"params\":{\"k\":[1,2]},\"threads\":3}";
        let request = JobRequest::from_json(spec).unwrap();
        assert_eq!(request.to_json_string(), spec);
        assert_eq!(
            JobRequest::from_json(&request.to_json_string()).unwrap(),
            request
        );
    }
}
