//! Incrementally maintained strongly-connected components.
//!
//! The deadlock-removal loop recomputes the SCC partition of the channel
//! dependency graph after every broken cycle, but each iteration only edits
//! a handful of edges — the rest of the graph keeps its components.  PR 3
//! measured the repeated full Tarjan pass as the loop's dominant cost at
//! scale.  [`IncrementalScc`] answers repeated SCC queries by recomputing
//! only a **dirty region** around the edited edges and stitching the result
//! into the cached partition, with a capped-cost fallback to a full Tarjan
//! pass when the region grows too large.
//!
//! # Dirty-region protocol
//!
//! Between queries the caller marks every node incident to an added or
//! removed edge as dirty ([`mark_dirty`](IncrementalScc::mark_dirty); the
//! CDG maintenance layer forwards the `touched_nodes` of its `CdgDelta`).
//! At the next query, with dirty set `D` on the *current* graph:
//!
//! 1. `F` = nodes reachable from `D`, `B` = nodes reaching `D` (two capped
//!    BFS passes); the **region** is `R = F ∩ B`.
//! 2. Tarjan restricted to `R` computes the new components inside the
//!    region.
//! 3. Cached components disjoint from `R` are carried over unchanged.
//!
//! This is exact, not heuristic.  Sketch of why:
//!
//! * No new SCC straddles the region boundary: strong connectivity moves
//!   membership of `F` and `B` across the whole component, so a component
//!   touching `R` is contained in `R`.
//! * A cached component that changed (split or merged) intersects `R`: any
//!   old witness path that died contains a removed edge, and any new cycle
//!   contains an added edge — walking to the first/last such edge shows the
//!   affected nodes both reach and are reached by `D` (every changed edge
//!   has both endpoints in `D`).
//! * Symmetrically, a cached component disjoint from `R` contains no
//!   endpoint of a changed edge, so its internal witness paths are intact
//!   and it is still maximal.
//!
//! The seeded property tests in `tests/graph_properties.rs` pin the
//! resulting partition byte-identical to a from-scratch Tarjan pass across
//! randomized edit sequences.
//!
//! # Canonical component order
//!
//! Unlike [`tarjan_scc`](crate::scc::tarjan_scc) (reverse topological
//! order), the partition returned here is **canonically ordered**: each
//! component's nodes ascend, and components are sorted by their smallest
//! node.  A stitched partition has no meaningful global topological order,
//! and every consumer in the suite is order-independent (the cycle finder
//! re-sorts its pool by rank; the recovery drain aggregates counts), so the
//! canonical order is what makes incremental and full recomputation
//! comparable bit-for-bit.

use crate::csr::GraphView;
use crate::digraph::NodeId;
use crate::scc;
use std::collections::VecDeque;

/// Counters describing how [`IncrementalScc`] answered its queries so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalSccStats {
    /// Queries answered by a full Tarjan pass (first query, explicit
    /// invalidation, or a dirty region past the size cap).
    pub full_recomputes: usize,
    /// Queries answered by recomputing only the dirty region.
    pub partial_recomputes: usize,
    /// Queries answered straight from the cache (no dirty nodes).
    pub cached_queries: usize,
}

/// Incrementally maintained SCC partition of a graph edited between queries;
/// see the [module docs](self) for the dirty-region protocol and the
/// exactness argument.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, IncrementalScc};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
/// for i in 0..4 { g.add_edge(n[i], n[(i + 1) % 4], ()); }
/// let mut scc = IncrementalScc::new();
/// assert_eq!(scc.components(&g).len(), 1);
///
/// let e = g.find_edge(n[3], n[0]).unwrap();
/// g.remove_edge(e);
/// scc.mark_dirty(n[3]);
/// scc.mark_dirty(n[0]);
/// assert_eq!(scc.components(&g).len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalScc {
    /// Cached partition in canonical order (see module docs).
    components: Vec<Vec<NodeId>>,
    /// `component_of[v]` = index into `components`, for region stitching.
    component_of: Vec<usize>,
    /// Nodes incident to edges changed since the last query.
    dirty: Vec<NodeId>,
    /// Node count at the last recompute; later ids are implicitly dirty.
    known_nodes: usize,
    /// `false` until the first query or after [`invalidate`](Self::invalidate).
    valid: bool,
    stats: IncrementalSccStats,
}

impl IncrementalScc {
    /// A maintainer with no cached state; the first query runs a full Tarjan
    /// pass.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `node` dirty: an edge incident to it was added or removed
    /// since the last query.  **Correctness requirement**, not a hint — the
    /// region recompute is exact only when every changed edge has both
    /// endpoints marked.  Over-marking is always safe.
    pub fn mark_dirty(&mut self, node: NodeId) {
        self.dirty.push(node);
    }

    /// Drops the cached partition, forcing the next query to run a full
    /// Tarjan pass (e.g. after a wholesale rebuild that changed node
    /// identities).
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.dirty.clear();
        self.components.clear();
        self.component_of.clear();
        self.known_nodes = 0;
    }

    /// Query counters.
    pub fn stats(&self) -> IncrementalSccStats {
        self.stats
    }

    /// The SCC partition of `graph`, in canonical order (each component
    /// ascending, components sorted by smallest node).  Exactly the
    /// partition [`tarjan_scc`](crate::scc::tarjan_scc) computes, reordered.
    pub fn components<G: GraphView>(&mut self, graph: &G) -> &[Vec<NodeId>] {
        let n = graph.node_count();
        debug_assert!(
            !self.valid || n >= self.known_nodes,
            "nodes are never removed"
        );
        if !self.valid {
            let _span = noc_telemetry::span("scc", "full_recompute");
            self.recompute_full(graph);
            return &self.components;
        }
        // Nodes added since the last recompute are dirty by definition.
        for index in self.known_nodes..n {
            self.dirty.push(NodeId::from_index(index));
        }
        self.dirty.retain(|node| node.index() < n);
        self.dirty.sort_unstable();
        self.dirty.dedup();
        if self.dirty.is_empty() {
            self.stats.cached_queries += 1;
            noc_telemetry::counter("scc.cached_queries", 1);
            return &self.components;
        }
        // The cap bounds the waste on graphs whose cyclic region spans
        // almost everything (an aborted BFS is pure overhead on top of the
        // Tarjan fallback it triggers), so it is deliberately tight: past an
        // eighth of the graph the stitched recompute saves little over one
        // linear Tarjan pass anyway.  64 keeps tiny graphs out of the
        // fallback entirely.
        let cap = (n / 8).max(64);
        // One flat span over region discovery plus whichever recompute it
        // picks — never nested inside another `scc` span, so summing the
        // category's durations attributes SCC time without double counting.
        let mut span = noc_telemetry::span("scc", "recompute");
        span.arg("dirty", self.dirty.len());
        match self.dirty_region(graph, cap) {
            Some(region) => self.recompute_region(graph, &region),
            None => {
                // The dirty region outgrew the cap: fall back to a linear
                // full recompute rather than stitch most of the graph.
                noc_telemetry::counter("scc.fallback_to_full", 1);
                self.recompute_full(graph);
            }
        }
        &self.components
    }

    /// The members of cycle-capable components (more than one node, or a
    /// self-loop), flattened.  This is the node pool the incremental cycle
    /// finder's verification scan walks.
    pub fn cyclic_nodes<G: GraphView>(&mut self, graph: &G) -> Vec<NodeId> {
        self.components(graph);
        let mut pool = Vec::new();
        for component in &self.components {
            if component.len() > 1 || graph.has_edge(component[0], component[0]) {
                pool.extend(component.iter().copied());
            }
        }
        pool
    }

    fn recompute_full<G: GraphView>(&mut self, graph: &G) {
        self.components = scc::tarjan_scc(graph);
        canonicalize(&mut self.components);
        self.rebuild_component_of(graph.node_count());
        self.dirty.clear();
        self.known_nodes = graph.node_count();
        self.valid = true;
        self.stats.full_recomputes += 1;
        noc_telemetry::counter("scc.full_recomputes", 1);
    }

    /// `F ∩ B` around the dirty set, as a membership vector, or `None` when
    /// either BFS frontier exceeds `cap` nodes.
    fn dirty_region<G: GraphView>(&self, graph: &G, cap: usize) -> Option<Vec<bool>> {
        let n = graph.node_count();
        let mut forward = vec![false; n];
        let mut backward = vec![false; n];
        for pass in 0..2 {
            let seen: &mut Vec<bool> = if pass == 0 {
                &mut forward
            } else {
                &mut backward
            };
            let mut queue: VecDeque<NodeId> = VecDeque::new();
            let mut count = 0usize;
            for &node in &self.dirty {
                if !seen[node.index()] {
                    seen[node.index()] = true;
                    count += 1;
                    queue.push_back(node);
                }
            }
            while let Some(node) = queue.pop_front() {
                let mut grow = |next: NodeId, seen: &mut Vec<bool>, count: &mut usize| {
                    if !seen[next.index()] {
                        seen[next.index()] = true;
                        *count += 1;
                        queue.push_back(next);
                    }
                };
                if pass == 0 {
                    for next in graph.successors(node) {
                        grow(next, seen, &mut count);
                    }
                } else {
                    for next in graph.predecessors(node) {
                        grow(next, seen, &mut count);
                    }
                }
                if count > cap {
                    return None;
                }
            }
        }
        for (f, b) in forward.iter_mut().zip(&backward) {
            *f = *f && *b;
        }
        Some(forward)
    }

    fn recompute_region<G: GraphView>(&mut self, graph: &G, in_region: &[bool]) {
        let mut next = tarjan_scc_restricted(graph, in_region);
        // Carry over every cached component untouched by the region.  A
        // component is all-in or all-out (see module docs); checking one
        // member suffices.
        for component in &self.components {
            if !in_region[component[0].index()] {
                debug_assert!(component.iter().all(|node| !in_region[node.index()]));
                next.push(component.clone());
            }
        }
        canonicalize(&mut next);
        self.components = next;
        self.rebuild_component_of(graph.node_count());
        self.dirty.clear();
        self.known_nodes = graph.node_count();
        self.stats.partial_recomputes += 1;
        noc_telemetry::counter("scc.partial_recomputes", 1);
    }

    fn rebuild_component_of(&mut self, n: usize) {
        self.component_of.clear();
        self.component_of.resize(n, usize::MAX);
        for (index, component) in self.components.iter().enumerate() {
            for &node in component {
                self.component_of[node.index()] = index;
            }
        }
    }
}

/// Sorts each component ascending and the component list by smallest member
/// (the canonical order of the module docs).
fn canonicalize(components: &mut [Vec<NodeId>]) {
    for component in components.iter_mut() {
        component.sort_unstable();
    }
    components.sort_unstable_by_key(|component| component[0]);
}

/// Tarjan's algorithm over the subgraph induced by `in_region`, mirroring
/// the iterative scheme of [`scc::tarjan_scc`] with successors outside the
/// region skipped.
fn tarjan_scc_restricted<G: GraphView>(graph: &G, in_region: &[bool]) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    enum Frame {
        Enter(NodeId),
        Continue(NodeId, usize),
    }

    for start_index in 0..n {
        if !in_region[start_index] || index[start_index] != usize::MAX {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(NodeId::from_index(start_index))];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v.index()] = next_index;
                    lowlink[v.index()] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v.index()] = true;
                    call_stack.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, succ_pos) => {
                    let succs: Vec<NodeId> = graph
                        .successors(v)
                        .filter(|w| in_region[w.index()])
                        .collect();
                    let mut pos = succ_pos;
                    let mut descended = false;
                    while pos < succs.len() {
                        let w = succs[pos];
                        if index[w.index()] == usize::MAX {
                            call_stack.push(Frame::Continue(v, pos));
                            call_stack.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w.index()] {
                            lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                        }
                        pos += 1;
                    }
                    if descended {
                        continue;
                    }
                    for &w in &succs {
                        if on_stack[w.index()] {
                            lowlink[v.index()] = lowlink[v.index()].min(lowlink[w.index()]);
                        }
                    }
                    if lowlink[v.index()] == index[v.index()] {
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w.index()] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    /// Full Tarjan partition in the canonical order for comparison.
    fn reference<N, E>(graph: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
        let mut components = scc::tarjan_scc(graph);
        canonicalize(&mut components);
        components
    }

    fn ring(n: usize) -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], ());
        }
        (g, nodes)
    }

    #[test]
    fn first_query_is_a_full_recompute() {
        let (g, _) = ring(5);
        let mut scc = IncrementalScc::new();
        assert_eq!(scc.components(&g), reference(&g).as_slice());
        assert_eq!(scc.stats().full_recomputes, 1);
    }

    #[test]
    fn clean_requery_hits_the_cache() {
        let (g, _) = ring(5);
        let mut scc = IncrementalScc::new();
        scc.components(&g);
        scc.components(&g);
        assert_eq!(scc.stats().cached_queries, 1);
        assert_eq!(scc.components(&g), reference(&g).as_slice());
    }

    #[test]
    fn split_is_tracked_through_dirty_marks() {
        let (mut g, n) = ring(6);
        let mut scc = IncrementalScc::new();
        assert_eq!(scc.components(&g).len(), 1);
        let e = g.find_edge(n[5], n[0]).unwrap();
        g.remove_edge(e);
        scc.mark_dirty(n[5]);
        scc.mark_dirty(n[0]);
        assert_eq!(scc.components(&g), reference(&g).as_slice());
        assert_eq!(scc.components(&g).len(), 6);
    }

    #[test]
    fn merge_is_tracked_through_dirty_marks() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[3], ());
        let mut scc = IncrementalScc::new();
        assert_eq!(scc.components(&g).len(), 4);
        g.add_edge(n[3], n[0], ());
        scc.mark_dirty(n[3]);
        scc.mark_dirty(n[0]);
        assert_eq!(scc.components(&g), reference(&g).as_slice());
        assert_eq!(scc.components(&g).len(), 1);
    }

    #[test]
    fn untouched_far_component_is_carried_over() {
        // A small ring next to a large disjoint one; edit only the small
        // ring, whose 50 nodes fit the BFS cap (max(550/8, 64) = 68), so
        // the query takes the partial path and must carry the big ring over.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..550).map(|_| g.add_node(())).collect();
        for i in 0..50 {
            g.add_edge(n[i], n[(i + 1) % 50], ());
        }
        for i in 0..500 {
            g.add_edge(n[50 + i], n[50 + (i + 1) % 500], ());
        }
        let mut scc = IncrementalScc::new();
        assert_eq!(scc.components(&g).len(), 2);
        let e = g.find_edge(n[49], n[0]).unwrap();
        g.remove_edge(e);
        scc.mark_dirty(n[49]);
        scc.mark_dirty(n[0]);
        assert_eq!(scc.components(&g), reference(&g).as_slice());
        assert_eq!(scc.stats().partial_recomputes, 1);
    }

    #[test]
    fn new_nodes_are_implicitly_dirty() {
        let (mut g, n) = ring(3);
        let mut scc = IncrementalScc::new();
        scc.components(&g);
        let extra = g.add_node(());
        g.add_edge(n[0], extra, ());
        // Only the pre-existing endpoint is marked; the new node needs no
        // mark.
        scc.mark_dirty(n[0]);
        assert_eq!(scc.components(&g), reference(&g).as_slice());
        assert_eq!(scc.components(&g).len(), 2);
    }

    #[test]
    fn invalidate_forces_a_full_pass() {
        let (g, _) = ring(4);
        let mut scc = IncrementalScc::new();
        scc.components(&g);
        scc.invalidate();
        assert_eq!(scc.components(&g), reference(&g).as_slice());
        assert_eq!(scc.stats().full_recomputes, 2);
    }

    #[test]
    fn cyclic_nodes_match_the_cyclic_components() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[4], n[4], ());
        let mut scc = IncrementalScc::new();
        let mut pool = scc.cyclic_nodes(&g);
        pool.sort_unstable();
        let mut expected: Vec<NodeId> = scc::cyclic_components(&g).into_iter().flatten().collect();
        expected.sort_unstable();
        assert_eq!(pool, expected);
    }

    #[test]
    fn unmarked_edits_after_invalidate_still_recover() {
        let (mut g, n) = ring(4);
        let mut scc = IncrementalScc::new();
        scc.components(&g);
        let e = g.find_edge(n[3], n[0]).unwrap();
        g.remove_edge(e);
        // No mark_dirty — but invalidate makes the next query exact again.
        scc.invalidate();
        assert_eq!(scc.components(&g), reference(&g).as_slice());
        assert_eq!(scc.components(&g).len(), 4);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let mut scc = IncrementalScc::new();
        assert!(scc.components(&g).is_empty());
    }
}
