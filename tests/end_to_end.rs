//! Repository-level integration tests: exercise the whole stack
//! (benchmark → synthesis → routing → deadlock removal → power → simulation)
//! through the umbrella crate, the way the examples and the experiment
//! harness do.

use noc_suite::deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_suite::deadlock::resource_ordering::resource_ordering_overhead;
use noc_suite::deadlock::verify;
use noc_suite::power::{NetworkPowerModel, TechParams};
use noc_suite::routing::validate::validate_routes;
use noc_suite::sim::{SimConfig, Simulator, TrafficConfig};
use noc_suite::synth::{synthesize, SynthesisConfig};
use noc_suite::topology::benchmarks::Benchmark;
use noc_suite::topology::validate::validate_design;

/// The full Figure-8-style pipeline for one benchmark and one switch count.
fn pipeline(benchmark: Benchmark, switches: usize) {
    let comm = benchmark.comm_graph();
    let design = synthesize(&comm, &SynthesisConfig::with_switches(switches)).unwrap();
    validate_design(&design.topology, &comm, &design.core_map).unwrap();
    validate_routes(&design.topology, &comm, &design.core_map, &design.routes).unwrap();

    let baseline = resource_ordering_overhead(&design.topology, &design.routes);

    let mut topology = design.topology.clone();
    let mut routes = design.routes.clone();
    let report = remove_deadlocks(&mut topology, &mut routes, &RemovalConfig::default()).unwrap();

    // Deadlock-free, valid, and never worse than the baseline.
    verify::check_deadlock_free(&topology, &routes).unwrap();
    validate_routes(&topology, &comm, &design.core_map, &routes).unwrap();
    assert!(report.added_vcs <= baseline);

    // The power model sees the extra buffers of the baseline.
    let model = NetworkPowerModel::new(TechParams::default());
    let removal_power = model.estimate(&topology, &comm, &routes).total_power_mw;
    let mut ro_topology = design.topology.clone();
    let mut ro_routes = design.routes.clone();
    noc_suite::deadlock::apply_resource_ordering(&mut ro_topology, &mut ro_routes).unwrap();
    let ordering_power = model.estimate(&ro_topology, &comm, &ro_routes).total_power_mw;
    assert!(ordering_power >= removal_power);
}

#[test]
fn d26_media_full_pipeline() {
    pipeline(Benchmark::D26Media, 12);
}

#[test]
fn d36_8_full_pipeline() {
    pipeline(Benchmark::D36x8, 14);
}

#[test]
fn d35_bott_full_pipeline() {
    pipeline(Benchmark::D35Bott, 9);
}

#[test]
fn repaired_designs_complete_a_simulated_workload() {
    let comm = Benchmark::D36x6.comm_graph();
    let design = synthesize(&comm, &SynthesisConfig::with_switches(10)).unwrap();
    let mut topology = design.topology.clone();
    let mut routes = design.routes.clone();
    remove_deadlocks(&mut topology, &mut routes, &RemovalConfig::default()).unwrap();

    let outcome = Simulator::new(
        &topology,
        &comm,
        &routes,
        &SimConfig {
            buffer_depth: 2,
            deadlock_threshold: 1_000,
            max_cycles: 500_000,
        },
    )
    .run(&TrafficConfig {
        packets_per_flow: 3,
        packet_length: 4,
        mean_gap_cycles: 4,
        seed: 5,
    });
    assert!(!outcome.deadlocked);
    assert_eq!(outcome.stats.delivered_packets, outcome.stats.injected_packets);
}

#[test]
fn umbrella_reexports_are_usable() {
    // Smoke-test that every re-exported module is reachable through the
    // umbrella crate (what the examples rely on).
    let g: noc_suite::graph::DiGraph<(), ()> = noc_suite::graph::DiGraph::new();
    assert_eq!(g.node_count(), 0);
    assert_eq!(Benchmark::ALL.len(), 6);
    let params = TechParams::default();
    assert!(params.buffer_bits() > 0);
}
