//! Ablation benches for the design choices the paper asserts:
//!
//! * smallest-cycle-first versus other cycle orders,
//! * checking both break directions versus forward-only / backward-only.
//!
//! The measured quantity is runtime; the printed summary reports the VC cost
//! of each variant, which is the number the paper's heuristics are meant to
//! minimise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_bench::{run_removal, synthesize_benchmark};
use noc_deadlock::removal::{CycleOrder, DirectionPolicy, RemovalConfig};
use noc_topology::benchmarks::Benchmark;

fn ablations(c: &mut Criterion) {
    let design = synthesize_benchmark(Benchmark::D36x8, 14).expect("synthesis succeeds");

    let variants: [(&str, RemovalConfig); 5] = [
        ("paper_default", RemovalConfig::default()),
        (
            "forward_only",
            RemovalConfig {
                direction: DirectionPolicy::ForwardOnly,
                ..RemovalConfig::default()
            },
        ),
        (
            "backward_only",
            RemovalConfig {
                direction: DirectionPolicy::BackwardOnly,
                ..RemovalConfig::default()
            },
        ),
        (
            "largest_cycle_first",
            RemovalConfig {
                cycle_order: CycleOrder::LargestFirst,
                ..RemovalConfig::default()
            },
        ),
        (
            "first_found_cycle",
            RemovalConfig {
                cycle_order: CycleOrder::FirstFound,
                ..RemovalConfig::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("ablations_d36_8_14sw");
    group.sample_size(10);
    for (name, config) in &variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), config, |b, config| {
            b.iter(|| run_removal(&design, config));
        });
    }
    group.finish();

    println!("\n== Ablation VC costs (D36_8, 14 switches) ==");
    for (name, config) in &variants {
        let report = run_removal(&design, config);
        println!(
            "{:>22}: added VCs = {:>3}, cycles broken = {:>3}, forward = {}, backward = {}",
            name,
            report.added_vcs,
            report.cycles_broken,
            report.forward_breaks(),
            report.backward_breaks()
        );
    }
}

criterion_group!(benches, ablations);
criterion_main!(benches);
