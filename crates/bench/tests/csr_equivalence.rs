//! CSR-vs-DiGraph equivalence on real channel dependency graphs.
//!
//! The unit-level properties in `noc-graph` check the frozen CSR view on
//! random graphs; this harness checks it where it matters — on the CDGs of
//! every Figure 8 (D26_media) and Figure 9 (D36_8) grid point, of the
//! seeded random ring / chorded-ring / mesh population, and of the scaling
//! sweep's smaller generator points.  For each design the mutable
//! [`noc_graph::DiGraph`] and its [`noc_graph::CsrGraph`] freeze must agree
//! on the smallest cycle (the canonical search order contract), the SCC
//! partition, the knots, and hop distances — and the incrementally
//! maintained SCC partition must match full Tarjan on the same graph.

use noc_bench::{random_routed_design, routed_benchmark, scale_design, sweeps, ScaleTopology};
use noc_deadlock::cdg::Cdg;
use noc_graph::{cycles, knots, scc, shortest_path, DiGraph, IncrementalScc, NodeId};
use noc_topology::benchmarks::Benchmark;
use noc_topology::Channel;

/// Canonicalizes a Tarjan partition the way `IncrementalScc` reports it.
fn canonical(mut comps: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    for c in &mut comps {
        c.sort();
    }
    comps.sort_by_key(|c| c[0]);
    comps
}

/// Asserts DiGraph/CSR agreement plus incremental-SCC/Tarjan agreement on
/// one CDG.
fn assert_cdg_equivalence(graph: &DiGraph<Channel, Vec<noc_topology::FlowId>>, label: &str) {
    let frozen = graph.freeze();
    assert_eq!(
        cycles::smallest_cycle(&frozen),
        cycles::smallest_cycle(graph),
        "{label}: smallest cycle differs between CSR and DiGraph"
    );
    assert_eq!(
        canonical(scc::tarjan_scc(&frozen)),
        canonical(scc::tarjan_scc(graph)),
        "{label}: SCC partition differs between CSR and DiGraph"
    );
    assert_eq!(
        canonical(knots::knots(&frozen)),
        canonical(knots::knots(graph)),
        "{label}: knots differ between CSR and DiGraph"
    );
    let mut inc = IncrementalScc::new();
    assert_eq!(
        inc.components(graph).to_vec(),
        canonical(scc::tarjan_scc(graph)),
        "{label}: incremental SCC partition differs from full Tarjan"
    );
    if graph.node_count() > 0 {
        let src = graph.node_ids().next().expect("non-empty graph");
        let sp_g = shortest_path::hop_distances(graph, src);
        let sp_c = shortest_path::hop_distances(&frozen, src);
        for node in graph.node_ids() {
            assert_eq!(
                sp_g.distance(node),
                sp_c.distance(node),
                "{label}: hop distance differs between CSR and DiGraph"
            );
        }
    }
}

#[test]
fn csr_matches_digraph_on_the_figure_grids() {
    for (benchmark, counts) in [
        (Benchmark::D26Media, sweeps::FIG8_SWITCH_COUNTS),
        (Benchmark::D36x8, sweeps::FIG9_SWITCH_COUNTS),
    ] {
        for switches in counts {
            let routed = routed_benchmark(benchmark, switches);
            let cdg = Cdg::build(routed.topology(), routed.routes());
            assert_cdg_equivalence(cdg.graph(), &format!("{benchmark}/{switches}"));
        }
    }
}

#[test]
fn csr_matches_digraph_on_seeded_random_designs() {
    for seed in 0..noc_bench::DEFAULT_RANDOM_DESIGNS as u64 {
        let routed = random_routed_design(seed);
        let cdg = Cdg::build(routed.topology(), routed.routes());
        assert_cdg_equivalence(cdg.graph(), &format!("random design, seed {seed}"));
    }
}

#[test]
fn csr_matches_digraph_on_scaling_designs() {
    // The smaller scaling-grid families; the tori contribute cyclic CDGs,
    // which is where the canonical search order contract has teeth.
    for spec in [
        ScaleTopology::Mesh2d { rows: 16, cols: 16 },
        ScaleTopology::Torus2d { rows: 16, cols: 16 },
        ScaleTopology::Torus3d {
            dx: 4,
            dy: 4,
            dz: 4,
        },
        ScaleTopology::FatTree {
            levels: 4,
            arity: 3,
        },
        ScaleTopology::Dragonfly {
            groups: 5,
            routers: 4,
            global_ports: 1,
        },
    ] {
        let design = scale_design(spec);
        let cdg = Cdg::build(&design.topology, &design.routes);
        assert_cdg_equivalence(
            cdg.graph(),
            &format!("{}/{}", spec.family(), spec.switch_count()),
        );
    }
}
