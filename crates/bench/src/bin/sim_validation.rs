//! Dynamic validation (beyond the paper's analytical argument): simulate
//! each benchmark design before and after deadlock removal under a
//! high-pressure wormhole workload and report whether deadlocks occur.
//!
//! Pass `--json <path>` to write the per-benchmark outcomes as a JSON
//! artifact.

use noc_bench::{artifact, simulate_before_after, SimValidation};
use noc_topology::benchmarks::Benchmark;

fn main() {
    let json_path = artifact::json_path_from_args("sim_validation");
    println!("# Wormhole simulation: deadlock behaviour before/after removal (10-switch designs)");
    println!(
        "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16}",
        "benchmark",
        "cdg_cyclic",
        "original_deadlock",
        "fixed_deadlock",
        "fixed_delivered",
        "fixed_latency"
    );
    let mut validations: Vec<SimValidation> = Vec::new();
    for benchmark in Benchmark::ALL {
        let v = simulate_before_after(benchmark, 10);
        println!(
            "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16.1}",
            v.benchmark,
            v.original_cdg_cyclic,
            v.original_deadlocked,
            v.fixed_deadlocked,
            v.fixed_delivered,
            v.fixed_mean_latency
        );
        validations.push(v);
    }
    if let Some(path) = json_path {
        artifact::write_json_artifact(&path, "sim_validation", &validations);
    }
}
