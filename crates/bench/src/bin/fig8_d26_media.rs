//! Reproduces Figure 8: extra VCs versus switch count for D26_media,
//! resource ordering versus the deadlock-removal algorithm.

use noc_bench::{sweeps, vc_overhead_sweep};
use noc_topology::benchmarks::Benchmark;

fn main() {
    println!("# Figure 8 — D26_media: extra VCs vs. switch count");
    println!(
        "{:>12} {:>22} {:>22} {:>14}",
        "switches", "resource_ordering_vc", "deadlock_removal_vc", "cycles_broken"
    );
    for point in vc_overhead_sweep(Benchmark::D26Media, sweeps::FIG8_SWITCH_COUNTS) {
        println!(
            "{:>12} {:>22} {:>22} {:>14}",
            point.switch_count,
            point.resource_ordering_vcs,
            point.deadlock_removal_vcs,
            point.cycles_broken
        );
    }
}
