//! Generators for regular NoC topologies.
//!
//! The paper's method applies to arbitrary topologies; these generators
//! provide the regular shapes (rings, meshes, tori, stars, trees) that are
//! used in tests, in examples and as sanity baselines next to the
//! application-specific topologies produced by `noc-synth`.

use crate::comm::{CommGraph, CoreMap};
use crate::ids::SwitchId;
use crate::topology::Topology;
use noc_rng::SmallRng;

/// A generated topology together with its switch handles, in generation
/// order (row-major for meshes/tori).
#[derive(Debug, Clone, PartialEq)]
pub struct Generated {
    /// The generated topology.
    pub topology: Topology,
    /// All switches in generation order.
    pub switches: Vec<SwitchId>,
}

/// Unidirectional ring of `n` switches (the shape of Figure 1 of the paper).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn unidirectional_ring(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a ring needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("ring{i}")))
        .collect();
    for i in 0..n {
        topology.add_link(switches[i], switches[(i + 1) % n], bandwidth);
    }
    Generated { topology, switches }
}

/// Bidirectional ring of `n` switches.
pub fn bidirectional_ring(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a ring needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("ring{i}")))
        .collect();
    for i in 0..n {
        let next = (i + 1) % n;
        if n > 1 {
            topology.add_bidirectional_link(switches[i], switches[next], bandwidth);
        }
    }
    Generated { topology, switches }
}

/// Open chain (line) of `n` switches with bidirectional links.
pub fn chain(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a chain needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("chain{i}")))
        .collect();
    for i in 0..n.saturating_sub(1) {
        topology.add_bidirectional_link(switches[i], switches[i + 1], bandwidth);
    }
    Generated { topology, switches }
}

/// 2-D mesh of `rows × cols` switches with bidirectional links, row-major
/// switch order.
pub fn mesh2d(rows: usize, cols: usize, bandwidth: f64) -> Generated {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..rows * cols)
        .map(|i| topology.add_switch(format!("mesh{}_{}", i / cols, i % cols)))
        .collect();
    let at = |r: usize, c: usize| switches[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                topology.add_bidirectional_link(at(r, c), at(r, c + 1), bandwidth);
            }
            if r + 1 < rows {
                topology.add_bidirectional_link(at(r, c), at(r + 1, c), bandwidth);
            }
        }
    }
    Generated { topology, switches }
}

/// 2-D torus of `rows × cols` switches (mesh plus wraparound links).
pub fn torus2d(rows: usize, cols: usize, bandwidth: f64) -> Generated {
    assert!(rows > 1 && cols > 1, "torus dimensions must be at least 2");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..rows * cols)
        .map(|i| topology.add_switch(format!("torus{}_{}", i / cols, i % cols)))
        .collect();
    let at = |r: usize, c: usize| switches[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            topology.add_bidirectional_link(at(r, c), at(r, (c + 1) % cols), bandwidth);
            topology.add_bidirectional_link(at(r, c), at((r + 1) % rows, c), bandwidth);
        }
    }
    Generated { topology, switches }
}

/// Star: switch 0 is the hub, every other switch connects to it with a
/// bidirectional link.
pub fn star(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a star needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("star{i}")))
        .collect();
    for i in 1..n {
        topology.add_bidirectional_link(switches[0], switches[i], bandwidth);
    }
    Generated { topology, switches }
}

/// Fully connected topology: a bidirectional link between every switch pair.
pub fn fully_connected(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "need at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("full{i}")))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            topology.add_bidirectional_link(switches[i], switches[j], bandwidth);
        }
    }
    Generated { topology, switches }
}

/// Balanced binary-tree topology with `n` switches (heap indexing: switch
/// `i` connects to `2i+1` and `2i+2`), bidirectional links.
pub fn binary_tree(n: usize, bandwidth: f64) -> Generated {
    assert!(n > 0, "a tree needs at least one switch");
    let mut topology = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topology.add_switch(format!("tree{i}")))
        .collect();
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                topology.add_bidirectional_link(switches[i], switches[child], bandwidth);
            }
        }
    }
    Generated { topology, switches }
}

/// 3-D mesh of `dx × dy × dz` switches with bidirectional links.  Switch
/// order is `(x, y, z)` with `z` fastest (`index = (x * dy + y) * dz + z`).
pub fn mesh3d(dx: usize, dy: usize, dz: usize, bandwidth: f64) -> Generated {
    assert!(
        dx > 0 && dy > 0 && dz > 0,
        "mesh dimensions must be positive"
    );
    let mut topology = Topology::new();
    let mut switches = Vec::with_capacity(dx * dy * dz);
    for x in 0..dx {
        for y in 0..dy {
            for z in 0..dz {
                switches.push(topology.add_switch(format!("mesh3d{x}_{y}_{z}")));
            }
        }
    }
    let at = |x: usize, y: usize, z: usize| switches[(x * dy + y) * dz + z];
    for x in 0..dx {
        for y in 0..dy {
            for z in 0..dz {
                if x + 1 < dx {
                    topology.add_bidirectional_link(at(x, y, z), at(x + 1, y, z), bandwidth);
                }
                if y + 1 < dy {
                    topology.add_bidirectional_link(at(x, y, z), at(x, y + 1, z), bandwidth);
                }
                if z + 1 < dz {
                    topology.add_bidirectional_link(at(x, y, z), at(x, y, z + 1), bandwidth);
                }
            }
        }
    }
    Generated { topology, switches }
}

/// 3-D torus of `dx × dy × dz` switches (3-D mesh plus wraparound links in
/// every dimension).
pub fn torus3d(dx: usize, dy: usize, dz: usize, bandwidth: f64) -> Generated {
    assert!(
        dx > 1 && dy > 1 && dz > 1,
        "torus dimensions must be at least 2"
    );
    let mut topology = Topology::new();
    let mut switches = Vec::with_capacity(dx * dy * dz);
    for x in 0..dx {
        for y in 0..dy {
            for z in 0..dz {
                switches.push(topology.add_switch(format!("torus3d{x}_{y}_{z}")));
            }
        }
    }
    let at = |x: usize, y: usize, z: usize| switches[(x * dy + y) * dz + z];
    for x in 0..dx {
        for y in 0..dy {
            for z in 0..dz {
                topology.add_bidirectional_link(at(x, y, z), at((x + 1) % dx, y, z), bandwidth);
                topology.add_bidirectional_link(at(x, y, z), at(x, (y + 1) % dy, z), bandwidth);
                topology.add_bidirectional_link(at(x, y, z), at(x, y, (z + 1) % dz), bandwidth);
            }
        }
    }
    Generated { topology, switches }
}

/// Fat tree: a complete `arity`-ary tree of `levels` levels whose links get
/// *fatter* toward the root — a link between levels `l` and `l + 1` carries
/// `bandwidth * arity^(levels - 2 - l)`, so the aggregate bandwidth crossing
/// each level is constant (the classic fat-tree property).  Switch order is
/// breadth-first (root first); leaves are the last `arity^(levels-1)`
/// switches.
///
/// # Panics
///
/// Panics if `levels == 0` or `arity == 0`.
pub fn fat_tree(levels: usize, arity: usize, bandwidth: f64) -> Generated {
    assert!(levels > 0, "a fat tree needs at least one level");
    assert!(arity > 0, "fat-tree arity must be positive");
    let mut topology = Topology::new();
    let mut switches = Vec::new();
    // Build level by level; `level_start[l]` is the index of the first
    // switch of level `l`.
    let mut level_start = Vec::with_capacity(levels + 1);
    let mut width = 1usize;
    for level in 0..levels {
        level_start.push(switches.len());
        for i in 0..width {
            switches.push(topology.add_switch(format!("fat{level}_{i}")));
        }
        width *= arity;
    }
    level_start.push(switches.len());
    for level in 0..levels.saturating_sub(1) {
        // Deeper links are thinner: the leaf level gets `bandwidth`, each
        // level above multiplies by `arity`.
        let fatness = bandwidth * (arity as f64).powi((levels - 2 - level) as i32);
        let parents = level_start[level + 1] - level_start[level];
        for p in 0..parents {
            let parent = switches[level_start[level] + p];
            for c in 0..arity {
                let child = switches[level_start[level + 1] + p * arity + c];
                topology.add_bidirectional_link(parent, child, fatness);
            }
        }
    }
    Generated { topology, switches }
}

/// Dragonfly: `groups` groups of `routers_per_group` routers each.  Routers
/// within a group are fully connected; every unordered pair of groups is
/// joined by one bidirectional global link, attached round-robin to the
/// routers of each group (each router offers `global_per_router` global
/// ports).  Switch order is group-major.
///
/// # Panics
///
/// Panics when a dimension is zero or the global ports cannot cover the
/// `groups - 1` links each group needs
/// (`routers_per_group * global_per_router < groups - 1`).
pub fn dragonfly(
    groups: usize,
    routers_per_group: usize,
    global_per_router: usize,
    bandwidth: f64,
) -> Generated {
    assert!(groups > 0, "a dragonfly needs at least one group");
    assert!(routers_per_group > 0, "groups need at least one router");
    assert!(
        groups == 1 || routers_per_group * global_per_router >= groups - 1,
        "not enough global ports: {} routers x {} ports < {} peer groups",
        routers_per_group,
        global_per_router,
        groups - 1
    );
    let mut topology = Topology::new();
    let mut switches = Vec::with_capacity(groups * routers_per_group);
    for g in 0..groups {
        for r in 0..routers_per_group {
            switches.push(topology.add_switch(format!("dfly{g}_{r}")));
        }
    }
    let at = |g: usize, r: usize| switches[g * routers_per_group + r];
    // Intra-group all-to-all.
    for g in 0..groups {
        for a in 0..routers_per_group {
            for b in (a + 1)..routers_per_group {
                topology.add_bidirectional_link(at(g, a), at(g, b), bandwidth);
            }
        }
    }
    // One global link per group pair, spread round-robin over each group's
    // routers in pair order.
    let mut used_ports = vec![0usize; groups];
    for i in 0..groups {
        for j in (i + 1)..groups {
            let ri = used_ports[i] % routers_per_group;
            let rj = used_ports[j] % routers_per_group;
            used_ports[i] += 1;
            used_ports[j] += 1;
            topology.add_bidirectional_link(at(i, ri), at(j, rj), bandwidth);
        }
    }
    Generated { topology, switches }
}

/// A synthetic communication workload over a generated topology: one core
/// per switch (core `i` attached to `switches[i]`) plus a seeded random flow
/// set — the communication-graph side of the scaling benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticWorkload {
    /// The communication graph (one core per switch, flows as generated).
    pub comm: CommGraph,
    /// The core-to-switch attachment (core `i` on switch `i`).
    pub map: CoreMap,
}

/// One core per switch, attached in switch order.
fn cores_per_switch(generated: &Generated) -> (CommGraph, CoreMap, Vec<crate::ids::CoreId>) {
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..generated.switches.len())
        .map(|i| comm.add_core(format!("c{i}")))
        .collect();
    let mut map = CoreMap::new(cores.len());
    for (i, &core) in cores.iter().enumerate() {
        map.assign(core, generated.switches[i])
            .expect("cores and switches are index-aligned");
    }
    (comm, map, cores)
}

/// Uniform-random traffic: every core sends `flows_per_core` flows of
/// `bandwidth` each to destinations drawn uniformly from all *other*
/// switches.  Deterministic in `seed`.
///
/// # Panics
///
/// Panics if the topology has fewer than two switches (no valid
/// destination exists).
pub fn uniform_traffic(
    generated: &Generated,
    flows_per_core: usize,
    seed: u64,
    bandwidth: f64,
) -> SyntheticWorkload {
    let n = generated.switches.len();
    assert!(n > 1, "uniform traffic needs at least two switches");
    let (mut comm, map, cores) = cores_per_switch(generated);
    let mut rng = SmallRng::seed_from_u64(seed);
    for (i, &source) in cores.iter().enumerate() {
        for _ in 0..flows_per_core {
            let mut dest = rng.gen_range(0..n - 1);
            if dest >= i {
                dest += 1; // skip self, keeping the draw uniform
            }
            comm.add_flow(source, cores[dest], bandwidth);
        }
    }
    SyntheticWorkload { comm, map }
}

/// Neighbor traffic: every core sends `flows_per_core` flows of `bandwidth`
/// each to cores one link away (destinations drawn uniformly from the
/// switch's out-neighbors).  Switches with no outgoing link send nothing.
/// Deterministic in `seed`.
pub fn neighbor_traffic(
    generated: &Generated,
    flows_per_core: usize,
    seed: u64,
    bandwidth: f64,
) -> SyntheticWorkload {
    let (mut comm, map, cores) = cores_per_switch(generated);
    // One pass over the links: per-switch out-neighbor lists (`links_from`
    // would rescan every link per switch — quadratic at 100k switches).
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); generated.switches.len()];
    for (_, link) in generated.topology.links() {
        neighbors[link.source.index()].push(link.target.index());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for (i, &source) in cores.iter().enumerate() {
        let near = &neighbors[i];
        if near.is_empty() {
            continue;
        }
        for _ in 0..flows_per_core {
            let dest = near[rng.gen_range(0..near.len())];
            comm.add_flow(source, cores[dest], bandwidth);
        }
    }
    SyntheticWorkload { comm, map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_graph::{scc, traversal};

    #[test]
    fn unidirectional_ring_matches_figure_1() {
        let g = unidirectional_ring(4, 1.0);
        assert_eq!(g.topology.switch_count(), 4);
        assert_eq!(g.topology.link_count(), 4);
        // Every switch has exactly one outgoing and one incoming link.
        for &sw in &g.switches {
            assert_eq!(g.topology.links_from(sw).count(), 1);
            assert_eq!(g.topology.links_to(sw).count(), 1);
        }
        assert!(scc::has_cycle(&g.topology.to_switch_graph()));
    }

    #[test]
    fn bidirectional_ring_has_twice_the_links() {
        let g = bidirectional_ring(5, 1.0);
        assert_eq!(g.topology.link_count(), 10);
    }

    #[test]
    fn chain_is_connected_and_acyclic_in_one_direction() {
        let g = chain(6, 1.0);
        assert_eq!(g.topology.link_count(), 10);
        assert!(traversal::is_weakly_connected(
            &g.topology.to_switch_graph()
        ));
    }

    #[test]
    fn mesh_link_count_is_correct() {
        let g = mesh2d(3, 4, 1.0);
        assert_eq!(g.topology.switch_count(), 12);
        // Horizontal: 3 rows * 3 = 9 pairs, vertical: 2 * 4 = 8 pairs, times 2 directions.
        assert_eq!(g.topology.link_count(), 2 * (9 + 8));
        assert!(traversal::is_weakly_connected(
            &g.topology.to_switch_graph()
        ));
    }

    #[test]
    fn torus_has_wraparound() {
        let g = torus2d(3, 3, 1.0);
        assert_eq!(g.topology.switch_count(), 9);
        // Every node has 4 outgoing links (right, left via neighbour's wrap, down, up).
        for &sw in &g.switches {
            assert_eq!(g.topology.links_from(sw).count(), 4);
        }
    }

    #[test]
    fn star_and_tree_are_connected() {
        for generated in [star(7, 1.0), binary_tree(7, 1.0)] {
            assert!(traversal::is_weakly_connected(
                &generated.topology.to_switch_graph()
            ));
        }
        assert_eq!(star(7, 1.0).topology.link_count(), 12);
        assert_eq!(binary_tree(7, 1.0).topology.link_count(), 12);
    }

    #[test]
    fn fully_connected_has_n_choose_2_pairs() {
        let g = fully_connected(6, 1.0);
        assert_eq!(g.topology.link_count(), 6 * 5);
    }

    #[test]
    fn single_switch_edge_cases() {
        assert_eq!(unidirectional_ring(1, 1.0).topology.link_count(), 1); // self loop link
        assert_eq!(bidirectional_ring(1, 1.0).topology.link_count(), 0);
        assert_eq!(chain(1, 1.0).topology.link_count(), 0);
        assert_eq!(star(1, 1.0).topology.link_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn zero_size_panics() {
        chain(0, 1.0);
    }

    #[test]
    fn mesh3d_counts_and_connectivity() {
        let g = mesh3d(3, 4, 5, 1.0);
        assert_eq!(g.topology.switch_count(), 60);
        // Internal pairs: x: 2*4*5, y: 3*3*5, z: 3*4*4; times 2 directions.
        assert_eq!(g.topology.link_count(), 2 * (40 + 45 + 48));
        assert!(traversal::is_weakly_connected(
            &g.topology.to_switch_graph()
        ));
    }

    #[test]
    fn torus3d_is_regular_of_degree_six() {
        let g = torus3d(3, 3, 3, 1.0);
        assert_eq!(g.topology.switch_count(), 27);
        for &sw in &g.switches {
            assert_eq!(g.topology.links_from(sw).count(), 6);
            assert_eq!(g.topology.links_to(sw).count(), 6);
        }
    }

    #[test]
    fn fat_tree_fattens_toward_the_root() {
        let g = fat_tree(3, 2, 1.0);
        assert_eq!(g.topology.switch_count(), 7); // 1 + 2 + 4
        assert_eq!(g.topology.link_count(), 12); // 6 pairs
                                                 // Root links carry arity x the leaf-link bandwidth.
        let (_, root_link) = g.topology.links_from(g.switches[0]).next().unwrap();
        assert_eq!(root_link.bandwidth, 2.0);
        let (_, leaf_link) = g.topology.links_from(g.switches[1]).nth(1).unwrap();
        assert_eq!(leaf_link.bandwidth, 1.0);
        assert!(traversal::is_weakly_connected(
            &g.topology.to_switch_graph()
        ));
    }

    #[test]
    fn dragonfly_counts_and_connectivity() {
        let g = dragonfly(4, 3, 1, 1.0);
        assert_eq!(g.topology.switch_count(), 12);
        // Intra: 4 groups * C(3,2)=3 pairs; global: C(4,2)=6 pairs; times 2.
        assert_eq!(g.topology.link_count(), 2 * (4 * 3 + 6));
        assert!(traversal::is_weakly_connected(
            &g.topology.to_switch_graph()
        ));
    }

    #[test]
    #[should_panic(expected = "not enough global ports")]
    fn dragonfly_rejects_insufficient_global_ports() {
        dragonfly(8, 2, 1, 1.0);
    }

    #[test]
    fn uniform_traffic_is_seeded_and_never_self_directed() {
        let g = mesh2d(4, 4, 1.0);
        let a = uniform_traffic(&g, 3, 7, 1.0);
        let b = uniform_traffic(&g, 3, 7, 1.0);
        assert_eq!(a, b, "same seed, same workload");
        assert_eq!(a.comm.core_count(), 16);
        assert_eq!(a.comm.flow_count(), 48);
        assert!(a.map.is_complete());
        for (_, flow) in a.comm.flows() {
            assert_ne!(flow.source, flow.destination);
        }
        let c = uniform_traffic(&g, 3, 8, 1.0);
        assert_ne!(a, c, "different seed, different destinations");
    }

    #[test]
    fn neighbor_traffic_only_targets_adjacent_switches() {
        let g = mesh2d(3, 3, 1.0);
        let w = neighbor_traffic(&g, 2, 11, 1.0);
        assert_eq!(w.comm.flow_count(), 18);
        for (_, flow) in w.comm.flows() {
            let from = w.map.switch_of(flow.source).unwrap();
            let to = w.map.switch_of(flow.destination).unwrap();
            assert!(g.topology.find_link(from, to).is_some());
        }
    }
}
