//! Demonstrates an actual wormhole deadlock in simulation and shows that the
//! repaired design completes the same workload.
//!
//! Four flows chase each other around a unidirectional ring (the paper's
//! Figure 1 configuration).  With small buffers and multi-flit packets the
//! simulation stalls permanently; after the removal algorithm adds one VC
//! and re-routes one flow, the same workload finishes.
//!
//! Run with `cargo run --example ring_deadlock`.

use noc_suite::flow::{CycleBreaking, DesignFlow, ShortestPathRouter};
use noc_suite::sim::{SimConfig, TrafficConfig};
use noc_suite::topology::{generators, CommGraph, CoreMap};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generators::unidirectional_ring(4, 1000.0);

    // Every core sends to the core two hops away, so every link is shared by
    // two flows and the channel dependency cycle closes.
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("core{i}"))).collect();
    for i in 0..4 {
        comm.add_flow(cores[i], cores[(i + 2) % 4], 400.0);
    }
    let mut core_map = CoreMap::new(comm.core_count());
    for (i, &core) in cores.iter().enumerate() {
        core_map.assign(core, generated.switches[i])?;
    }

    let routed = DesignFlow::from_comm(comm)
        .labelled("ring-deadlock")
        .with_design(generated.topology, core_map)?
        .route(&ShortestPathRouter::default())?;

    let sim_config = SimConfig {
        buffer_depth: 1,
        deadlock_threshold: 300,
        max_cycles: 100_000,
    };
    let traffic = TrafficConfig {
        packets_per_flow: 16,
        packet_length: 6,
        mean_gap_cycles: 0,
        seed: 42,
        ..TrafficConfig::default()
    };

    println!("--- original design (cyclic CDG) ---");
    let outcome = routed.simulate_with(&sim_config, &traffic);
    println!(
        "deadlocked: {}, delivered {}/{} packets, {} stranded",
        outcome.deadlocked,
        outcome.stats.delivered_packets,
        outcome.stats.injected_packets,
        outcome.stranded_packets
    );

    let fixed = routed.resolve_deadlocks(&CycleBreaking::default())?;
    println!(
        "--- after deadlock removal ({} VC added, {} cycle broken) ---",
        fixed.resolution().added_vcs,
        fixed.resolution().cycles_broken
    );
    let outcome = fixed.simulate_with(&sim_config, &traffic)?.into_outcome();
    println!(
        "deadlocked: {}, delivered {}/{} packets, mean latency {:.1} cycles",
        outcome.deadlocked,
        outcome.stats.delivered_packets,
        outcome.stats.injected_packets,
        outcome.stats.mean_latency()
    );
    Ok(())
}
