//! Traffic generation from a communication graph.

use crate::packet::{Packet, PacketId};
use noc_rng::SmallRng;
use noc_topology::{CommGraph, CoreId, FlowId};

/// The temporal / spatial shape of the generated workload.
///
/// All patterns are deterministic per [`TrafficConfig::seed`] (jitter comes
/// from `noc-rng`), so every scenario is reproducible run-to-run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TrafficPattern {
    /// Every flow injects [`TrafficConfig::packets_per_flow`] packets with
    /// bandwidth-scaled inter-arrival gaps (the original generator).
    #[default]
    Uniform,
    /// Like [`Uniform`](Self::Uniform), but the flows converging on the
    /// *hotspot core* — the core with the highest total incoming bandwidth
    /// demand (ties: lowest core id) — inject `factor` times as many packets,
    /// concentrating pressure on one region of the network.
    Hotspot {
        /// Packet-count multiplier for flows into the hotspot core (values
        /// below 1.0 are clamped to 1.0; a factor of 1.0 degenerates to
        /// uniform traffic).
        factor: f64,
    },
    /// Packets arrive in back-to-back bursts of `burst_len` packets,
    /// separated by an idle gap drawn uniformly from
    /// `[idle_cycles, 2·idle_cycles]` — on/off traffic, the bursty pattern
    /// wormhole networks saturate under first.
    Burst {
        /// Packets per burst (clamped to at least 1).
        burst_len: usize,
        /// Minimum idle gap between bursts, in cycles; the actual gap is
        /// drawn uniformly from `[idle_cycles, 2·idle_cycles]` (mean
        /// 1.5·`idle_cycles`).
        idle_cycles: u64,
    },
}

/// Traffic-generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of packets injected per flow.
    pub packets_per_flow: usize,
    /// Packet length in flits.
    pub packet_length: usize,
    /// Mean inter-arrival gap (cycles) between consecutive packets of the
    /// same flow; the actual gap is scaled by the flow's bandwidth share so
    /// heavy flows inject more often.  A gap of 0 means all packets are
    /// ready at cycle 0 (maximum pressure — the configuration most likely to
    /// expose deadlocks).
    pub mean_gap_cycles: u64,
    /// RNG seed for the jitter on inter-arrival times.
    pub seed: u64,
    /// Spatial/temporal workload shape (uniform, hotspot or bursty).
    pub pattern: TrafficPattern,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            packets_per_flow: 8,
            packet_length: 4,
            mean_gap_cycles: 0,
            seed: 0xD1CE,
            pattern: TrafficPattern::Uniform,
        }
    }
}

/// A generated packet workload: packets with creation times, sorted by
/// creation time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    /// All packets, sorted by `created_at` then id.
    pub packets: Vec<Packet>,
}

impl Workload {
    /// Total packet count.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` when the workload has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

/// The core with the highest total incoming bandwidth demand (ties: lowest
/// core id), or `None` when the graph has no flows — the hotspot the
/// [`TrafficPattern::Hotspot`] pattern concentrates traffic on.
pub fn hotspot_core(comm: &CommGraph) -> Option<CoreId> {
    // One accumulation pass over the flows instead of re-summing each
    // destination's incoming bandwidth per flow (which would be O(flows²)).
    let mut incoming: std::collections::BTreeMap<CoreId, f64> = std::collections::BTreeMap::new();
    for (_, flow) in comm.flows() {
        *incoming.entry(flow.destination).or_insert(0.0) += flow.bandwidth;
    }
    incoming
        .into_iter()
        // BTreeMap iterates in ascending core order, so a strict `>` keeps
        // the lowest core id on ties.
        .fold(None, |best: Option<(CoreId, f64)>, (core, bw)| match best {
            Some((_, best_bw)) if best_bw >= bw => best,
            _ => Some((core, bw)),
        })
        .map(|(core, _)| core)
}

/// Generates the packet workload for every flow of `comm` under the
/// configured [`TrafficPattern`].
///
/// Under [`Uniform`](TrafficPattern::Uniform) and
/// [`Hotspot`](TrafficPattern::Hotspot), flows whose bandwidth is higher
/// relative to the maximum flow get proportionally smaller inter-arrival
/// gaps; under [`Burst`](TrafficPattern::Burst) packets arrive
/// back-to-back within a burst and idle between bursts.
pub fn generate_workload(comm: &CommGraph, config: &TrafficConfig) -> Workload {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let hotspot = match config.pattern {
        TrafficPattern::Hotspot { .. } => hotspot_core(comm),
        _ => None,
    };
    let max_bw = comm
        .flows()
        .map(|(_, f)| f.bandwidth)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let mut packets = Vec::new();
    let mut next_id = 0usize;
    for (flow_id, flow) in comm.flows() {
        let relative = (flow.bandwidth / max_bw).clamp(0.05, 1.0);
        let count = match config.pattern {
            TrafficPattern::Hotspot { factor } if hotspot == Some(flow.destination) => {
                (config.packets_per_flow as f64 * factor.max(1.0)).ceil() as usize
            }
            _ => config.packets_per_flow,
        };
        let mut time = 0u64;
        for index in 0..count {
            packets.push(Packet {
                id: PacketId(next_id),
                flow: flow_id,
                length: config.packet_length.max(1),
                created_at: time,
            });
            next_id += 1;
            let gap = match config.pattern {
                TrafficPattern::Uniform | TrafficPattern::Hotspot { .. } => {
                    if config.mean_gap_cycles == 0 {
                        0
                    } else {
                        let scaled = (config.mean_gap_cycles as f64 / relative).round() as u64;
                        rng.gen_range(0..=scaled.max(1))
                    }
                }
                TrafficPattern::Burst {
                    burst_len,
                    idle_cycles,
                } => {
                    if (index + 1).is_multiple_of(burst_len.max(1)) && idle_cycles > 0 {
                        rng.gen_range(idle_cycles..=2 * idle_cycles)
                    } else {
                        0
                    }
                }
            };
            time += gap;
        }
    }
    packets.sort_by_key(|p| (p.created_at, p.id.0));
    Workload { packets }
}

/// Convenience: the set of flows that actually appear in a workload.
pub fn flows_in(workload: &Workload) -> Vec<FlowId> {
    let mut flows: Vec<FlowId> = workload.packets.iter().map(|p| p.flow).collect();
    flows.sort();
    flows.dedup();
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> CommGraph {
        let mut g = CommGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        g.add_flow(a, b, 800.0);
        g.add_flow(b, c, 100.0);
        g
    }

    #[test]
    fn workload_has_packets_per_flow_for_every_flow() {
        let workload = generate_workload(&comm(), &TrafficConfig::default());
        assert_eq!(workload.len(), 16);
        assert!(!workload.is_empty());
        assert_eq!(flows_in(&workload).len(), 2);
    }

    #[test]
    fn zero_gap_injects_everything_at_cycle_zero() {
        let workload = generate_workload(&comm(), &TrafficConfig::default());
        assert!(workload.packets.iter().all(|p| p.created_at == 0));
    }

    #[test]
    fn nonzero_gap_spreads_heavy_flows_less() {
        let config = TrafficConfig {
            mean_gap_cycles: 20,
            packets_per_flow: 16,
            ..TrafficConfig::default()
        };
        let workload = generate_workload(&comm(), &config);
        let last_time = |flow: usize| {
            workload
                .packets
                .iter()
                .filter(|p| p.flow == FlowId::from_index(flow))
                .map(|p| p.created_at)
                .max()
                .unwrap()
        };
        // Flow 0 has 8x the bandwidth of flow 1, so its packets finish
        // injecting earlier.
        assert!(last_time(0) < last_time(1));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for pattern in [
            TrafficPattern::Uniform,
            TrafficPattern::Hotspot { factor: 2.0 },
            TrafficPattern::Burst {
                burst_len: 3,
                idle_cycles: 10,
            },
        ] {
            let config = TrafficConfig {
                mean_gap_cycles: 10,
                pattern,
                ..TrafficConfig::default()
            };
            assert_eq!(
                generate_workload(&comm(), &config),
                generate_workload(&comm(), &config)
            );
        }
    }

    #[test]
    fn packet_ids_are_unique() {
        let workload = generate_workload(&comm(), &TrafficConfig::default());
        let mut ids: Vec<usize> = workload.packets.iter().map(|p| p.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), workload.len());
    }

    #[test]
    fn packet_length_is_at_least_one() {
        let config = TrafficConfig {
            packet_length: 0,
            ..TrafficConfig::default()
        };
        let workload = generate_workload(&comm(), &config);
        assert!(workload.packets.iter().all(|p| p.length == 1));
    }

    #[test]
    fn hotspot_core_is_the_heaviest_destination() {
        // b receives 800, c receives 100: the hotspot is b.
        assert_eq!(hotspot_core(&comm()), Some(CoreId::from_index(1)));
        assert_eq!(hotspot_core(&CommGraph::new()), None);
    }

    #[test]
    fn hotspot_pattern_multiplies_the_hot_flows() {
        let config = TrafficConfig {
            pattern: TrafficPattern::Hotspot { factor: 3.0 },
            ..TrafficConfig::default()
        };
        let workload = generate_workload(&comm(), &config);
        let count = |flow: usize| {
            workload
                .packets
                .iter()
                .filter(|p| p.flow == FlowId::from_index(flow))
                .count()
        };
        // Flow 0 targets the hotspot core b: 3x the packets.
        assert_eq!(count(0), 24);
        assert_eq!(count(1), 8);
        // Sub-unit factors degenerate to uniform counts.
        let config = TrafficConfig {
            pattern: TrafficPattern::Hotspot { factor: 0.1 },
            ..TrafficConfig::default()
        };
        let workload = generate_workload(&comm(), &config);
        assert_eq!(workload.len(), 16);
    }

    #[test]
    fn burst_pattern_clusters_arrivals() {
        let config = TrafficConfig {
            packets_per_flow: 9,
            pattern: TrafficPattern::Burst {
                burst_len: 3,
                idle_cycles: 50,
            },
            ..TrafficConfig::default()
        };
        let workload = generate_workload(&comm(), &config);
        let times: Vec<u64> = workload
            .packets
            .iter()
            .filter(|p| p.flow == FlowId::from_index(0))
            .map(|p| p.created_at)
            .collect();
        // Within a burst the packets share one creation time; between bursts
        // there is at least the configured idle gap.
        assert_eq!(times.len(), 9);
        for burst in times.chunks(3) {
            assert!(burst.iter().all(|&t| t == burst[0]));
        }
        assert!(times[3] >= times[2] + 50);
        assert!(times[6] >= times[5] + 50);
    }

    #[test]
    fn burst_len_zero_is_clamped() {
        let config = TrafficConfig {
            packets_per_flow: 4,
            pattern: TrafficPattern::Burst {
                burst_len: 0,
                idle_cycles: 10,
            },
            ..TrafficConfig::default()
        };
        // Bursts of (clamped) length 1: every consecutive pair is separated
        // by an idle gap.
        let workload = generate_workload(&comm(), &config);
        let times: Vec<u64> = workload
            .packets
            .iter()
            .filter(|p| p.flow == FlowId::from_index(1))
            .map(|p| p.created_at)
            .collect();
        for pair in times.windows(2) {
            assert!(pair[1] >= pair[0] + 10);
        }
    }
}
