//! Route validation and the routing error type.

use crate::route::RouteSet;
use noc_topology::{CommGraph, CoreMap, FlowId, SwitchId, Topology, TopologyError};
use std::error::Error;
use std::fmt;

/// Errors produced while computing or validating routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A flow cannot be routed because no switch-level path exists.
    Unroutable {
        /// The flow that could not be routed.
        flow: FlowId,
        /// Switch the route must start from.
        from: SwitchId,
        /// Switch the route must reach.
        to: SwitchId,
    },
    /// The route of a flow is not a contiguous path in the topology.
    Discontiguous {
        /// The offending flow.
        flow: FlowId,
        /// Index of the first hop whose source switch does not match the
        /// previous hop's target switch.
        at_hop: usize,
    },
    /// The route of a flow references a channel whose VC does not exist on
    /// the link.
    MissingVc {
        /// The offending flow.
        flow: FlowId,
        /// Index of the offending hop.
        at_hop: usize,
    },
    /// The route does not start or end at the switches the flow's cores are
    /// attached to.
    WrongEndpoints {
        /// The offending flow.
        flow: FlowId,
    },
    /// An underlying topology-model error (unknown link, unmapped core, …).
    Topology(TopologyError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { flow, from, to } => {
                write!(f, "flow {flow} cannot be routed from {from} to {to}")
            }
            RouteError::Discontiguous { flow, at_hop } => {
                write!(f, "route of flow {flow} is discontiguous at hop {at_hop}")
            }
            RouteError::MissingVc { flow, at_hop } => {
                write!(f, "route of flow {flow} uses a missing VC at hop {at_hop}")
            }
            RouteError::WrongEndpoints { flow } => {
                write!(f, "route of flow {flow} does not match its core attachment")
            }
            RouteError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl Error for RouteError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RouteError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for RouteError {
    fn from(e: TopologyError) -> Self {
        RouteError::Topology(e)
    }
}

/// Validates that every route in `routes` is well-formed with respect to the
/// topology, the communication graph and the core attachment:
///
/// 1. every referenced link exists and the referenced VC exists on it,
/// 2. consecutive links are contiguous (target of hop *i* = source of hop
///    *i+1*),
/// 3. the route starts at the source core's switch and ends at the
///    destination core's switch (empty routes require both cores to share a
///    switch).
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_routes(
    topology: &Topology,
    comm: &CommGraph,
    map: &CoreMap,
    routes: &RouteSet,
) -> Result<(), RouteError> {
    for (flow_id, flow) in comm.flows() {
        let route = routes
            .route(flow_id)
            .ok_or(RouteError::WrongEndpoints { flow: flow_id })?;
        let src_switch = map.require(flow.source)?;
        let dst_switch = map.require(flow.destination)?;

        if route.is_empty() {
            if src_switch != dst_switch {
                return Err(RouteError::WrongEndpoints { flow: flow_id });
            }
            continue;
        }

        let mut prev_target: Option<SwitchId> = None;
        for (hop, channel) in route.channels().iter().enumerate() {
            let link = topology.link(channel.link).ok_or(RouteError::Topology(
                TopologyError::UnknownLink(channel.link),
            ))?;
            if channel.vc >= link.vcs {
                return Err(RouteError::MissingVc {
                    flow: flow_id,
                    at_hop: hop,
                });
            }
            if let Some(prev) = prev_target {
                if prev != link.source {
                    return Err(RouteError::Discontiguous {
                        flow: flow_id,
                        at_hop: hop,
                    });
                }
            }
            prev_target = Some(link.target);
        }

        let first_link = topology
            .link(route.channels()[0].link)
            .expect("validated above");
        if first_link.source != src_switch || prev_target != Some(dst_switch) {
            return Err(RouteError::WrongEndpoints { flow: flow_id });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::shortest::route_all_shortest;
    use noc_topology::{generators, Channel, CommGraph, CoreMap, LinkId};

    fn design() -> (Topology, CommGraph, CoreMap, RouteSet, FlowId) {
        let generated = generators::bidirectional_ring(4, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        let f = comm.add_flow(a, b, 1.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[2]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        (generated.topology, comm, map, routes, f)
    }

    #[test]
    fn shortest_routes_validate_cleanly() {
        let (t, c, m, r, _) = design();
        assert!(validate_routes(&t, &c, &m, &r).is_ok());
    }

    #[test]
    fn missing_vc_is_detected() {
        let (t, c, m, mut r, f) = design();
        let first = r.route(f).unwrap().channels()[0];
        r.route_mut(f).unwrap().channels_mut()[0] = Channel::new(first.link, 3);
        assert_eq!(
            validate_routes(&t, &c, &m, &r),
            Err(RouteError::MissingVc { flow: f, at_hop: 0 })
        );
    }

    #[test]
    fn discontiguous_route_is_detected() {
        let (t, c, m, mut r, f) = design();
        // Replace the second hop with a link that does not start where the
        // first ends (reuse the first link again).
        let first = r.route(f).unwrap().channels()[0];
        r.route_mut(f).unwrap().channels_mut()[1] = first;
        assert_eq!(
            validate_routes(&t, &c, &m, &r),
            Err(RouteError::Discontiguous { flow: f, at_hop: 1 })
        );
    }

    #[test]
    fn wrong_endpoints_are_detected() {
        let (t, c, m, mut r, f) = design();
        // Truncate the route so it no longer reaches the destination switch.
        r.route_mut(f).unwrap().channels_mut().pop();
        assert_eq!(
            validate_routes(&t, &c, &m, &r),
            Err(RouteError::WrongEndpoints { flow: f })
        );
    }

    #[test]
    fn empty_route_for_distinct_switches_is_rejected() {
        let (t, c, m, mut r, f) = design();
        r.set_route(f, Route::empty());
        assert_eq!(
            validate_routes(&t, &c, &m, &r),
            Err(RouteError::WrongEndpoints { flow: f })
        );
    }

    #[test]
    fn unknown_link_is_reported_as_topology_error() {
        let (t, c, m, mut r, f) = design();
        r.set_route(f, Route::from_links([LinkId::from_index(999)]));
        assert!(matches!(
            validate_routes(&t, &c, &m, &r),
            Err(RouteError::Topology(TopologyError::UnknownLink(_)))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = RouteError::Unroutable {
            flow: FlowId::from_index(1),
            from: SwitchId::from_index(0),
            to: SwitchId::from_index(2),
        };
        assert!(e.to_string().contains("F1"));
        let e: RouteError = TopologyError::UnknownLink(LinkId::from_index(3)).into();
        assert!(e.to_string().contains("L3"));
    }
}
