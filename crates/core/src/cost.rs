//! Algorithm 2: finding the cheapest dependency of a cycle to break.
//!
//! For a cycle `C = [c_0, …, c_{j-1}]` of the CDG the candidate operations
//! are "remove the dependency `d_i = (c_i, c_{i+1 mod j})`", each in one of
//! two directions:
//!
//! * **forward** — duplicate the channels a flow used from where it entered
//!   the cycle up to `c_i`,
//! * **backward** — duplicate the channels from `c_{i+1}` to where the flow
//!   exits the cycle.
//!
//! The cost of a candidate is the number of channels that must be duplicated
//! (= extra VCs added), taking the maximum over the flows that create the
//! dependency, exactly as in the paper's Table 1.

use noc_routing::RouteSet;
use noc_topology::{Channel, FlowId};

/// Direction in which a cycle is broken (Figures 5 and 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Duplicate channels from the flow's entry into the cycle up to the
    /// removed dependency.
    Forward,
    /// Duplicate channels from just after the removed dependency to the
    /// flow's exit from the cycle.
    Backward,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Forward => f.write_str("forward"),
            Direction::Backward => f.write_str("backward"),
        }
    }
}

/// The per-flow / per-dependency cost table of Algorithm 2 (the paper's
/// Table 1), kept around for tests, diagnostics and the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTable {
    /// Flows that take part in the cycle (use at least two of its channels).
    pub flows: Vec<FlowId>,
    /// `costs[f][i]` is the cost of breaking dependency `i` considering flow
    /// `flows[f]` alone; 0 means the flow does not create that dependency.
    pub costs: Vec<Vec<usize>>,
    /// Column-wise maximum: how many channels must be duplicated to break
    /// dependency `i` (0 only if nothing creates the dependency, which
    /// cannot happen for a genuine CDG cycle).
    pub combined: Vec<usize>,
}

impl CostTable {
    /// The minimum combined cost and the dependency index achieving it, i.e.
    /// the pair `⟨cost, pos⟩` returned by Algorithm 2.  Dependencies that no
    /// flow creates are skipped.
    pub fn best(&self) -> Option<(usize, usize)> {
        self.combined
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (c, i))
            .min()
    }
}

/// Computes the forward-direction cost table for `cycle`
/// (`FindDepToBreakForward`).
pub fn cost_table_forward(cycle: &[Channel], routes: &RouteSet) -> CostTable {
    cost_table(cycle, routes, Direction::Forward)
}

/// Computes the backward-direction cost table for `cycle`
/// (`FindDepToBreakBackward`).
pub fn cost_table_backward(cycle: &[Channel], routes: &RouteSet) -> CostTable {
    cost_table(cycle, routes, Direction::Backward)
}

/// Computes the cost table in the given direction.
pub fn cost_table(cycle: &[Channel], routes: &RouteSet, direction: Direction) -> CostTable {
    let len = cycle.len();
    let pos_in_cycle = |c: Channel| cycle.iter().position(|&x| x == c);

    let mut flows = Vec::new();
    let mut costs: Vec<Vec<usize>> = Vec::new();

    for (flow, route) in routes.iter() {
        let path = route.channels();
        // Steps 3–7: only flows that use more than one channel of the cycle
        // can create (and therefore break) a dependency of the cycle.
        let in_cycle = path.iter().filter(|c| pos_in_cycle(**c).is_some()).count();
        if in_cycle <= 1 {
            continue;
        }
        let mut row = vec![0usize; len];
        match direction {
            Direction::Forward => {
                // Walk the path source → destination; `val` counts the cycle
                // channels seen so far ("how many channels would have to be
                // duplicated up to here").
                let mut val = 0usize;
                for i in 0..path.len() {
                    let Some(k) = pos_in_cycle(path[i]) else {
                        continue;
                    };
                    val += 1;
                    if i + 1 < path.len() && cycle[(k + 1) % len] == path[i + 1] {
                        row[k] = val;
                    }
                }
            }
            Direction::Backward => {
                // Walk the path destination → source; `val` counts the cycle
                // channels from here to the flow's exit from the cycle.
                let mut val = 0usize;
                for i in (0..path.len()).rev() {
                    let Some(kc) = pos_in_cycle(path[i]) else {
                        continue;
                    };
                    val += 1;
                    if i >= 1 {
                        if let Some(k) = pos_in_cycle(path[i - 1]) {
                            if (k + 1) % len == kc {
                                row[k] = val;
                            }
                        }
                    }
                }
            }
        }
        if row.iter().any(|&c| c > 0) {
            flows.push(flow);
            costs.push(row);
        }
    }

    // Step 20: combined effect = column-wise maximum.
    let mut combined = vec![0usize; len];
    for row in &costs {
        for (i, &c) in row.iter().enumerate() {
            combined[i] = combined[i].max(c);
        }
    }

    CostTable {
        flows,
        costs,
        combined,
    }
}

/// Runs Algorithm 2 in both directions and returns the cheaper plan as
/// `(cost, dependency index, direction)`.  Ties go to the forward direction,
/// matching the `f_cost ≤ b_cost` comparison in Algorithm 1.
pub fn best_break(cycle: &[Channel], routes: &RouteSet) -> Option<(usize, usize, Direction)> {
    let forward = cost_table_forward(cycle, routes).best();
    let backward = cost_table_backward(cycle, routes).best();
    match (forward, backward) {
        (Some((fc, fp)), Some((bc, bp))) => {
            if fc <= bc {
                Some((fc, fp, Direction::Forward))
            } else {
                Some((bc, bp, Direction::Backward))
            }
        }
        (Some((fc, fp)), None) => Some((fc, fp, Direction::Forward)),
        (None, Some((bc, bp))) => Some((bc, bp, Direction::Backward)),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::Route;
    use noc_topology::LinkId;

    /// The Figure 1 / Figure 2 example with its four flows.  Channels of the
    /// cycle are VC 0 of links L0..L3 (the paper's L1..L4).
    fn figure_2_cycle_and_routes() -> (Vec<Channel>, RouteSet) {
        let l = |i| Channel::base(LinkId::from_index(i));
        let cycle = vec![l(0), l(1), l(2), l(3)];
        let mut routes = RouteSet::new(4);
        routes.set_route(
            noc_topology::FlowId::from_index(0),
            Route::new(vec![l(0), l(1), l(2)]),
        );
        routes.set_route(
            noc_topology::FlowId::from_index(1),
            Route::new(vec![l(2), l(3)]),
        );
        routes.set_route(
            noc_topology::FlowId::from_index(2),
            Route::new(vec![l(3), l(0)]),
        );
        routes.set_route(
            noc_topology::FlowId::from_index(3),
            Route::new(vec![l(0), l(1)]),
        );
        (cycle, routes)
    }

    #[test]
    fn forward_cost_table_matches_table_1() {
        let (cycle, routes) = figure_2_cycle_and_routes();
        let table = cost_table_forward(&cycle, &routes);
        // Rows: F1 = [1, 2, 0, 0], F2 = [0, 0, 1, 0], F3 = [0, 0, 0, 1],
        //       F4 = [1, 0, 0, 0]; MAX = [1, 2, 1, 1].
        assert_eq!(table.flows.len(), 4);
        assert_eq!(table.costs[0], vec![1, 2, 0, 0]);
        assert_eq!(table.costs[1], vec![0, 0, 1, 0]);
        assert_eq!(table.costs[2], vec![0, 0, 0, 1]);
        assert_eq!(table.costs[3], vec![1, 0, 0, 0]);
        assert_eq!(table.combined, vec![1, 2, 1, 1]);
        assert_eq!(table.best(), Some((1, 0)));
    }

    #[test]
    fn backward_cost_table_for_the_example() {
        let (cycle, routes) = figure_2_cycle_and_routes();
        let table = cost_table_backward(&cycle, &routes);
        // F1 (L0 L1 L2): D0 needs L1,L2 duplicated (2); D1 needs L2 (1).
        // F2 (L2 L3): D2 needs L3 (1).  F3 (L3 L0): D3 needs L0 (1).
        // F4 (L0 L1): D0 needs L1 (1).
        assert_eq!(table.costs[0], vec![2, 1, 0, 0]);
        assert_eq!(table.costs[1], vec![0, 0, 1, 0]);
        assert_eq!(table.costs[2], vec![0, 0, 0, 1]);
        assert_eq!(table.costs[3], vec![1, 0, 0, 0]);
        assert_eq!(table.combined, vec![2, 1, 1, 1]);
        assert_eq!(table.best(), Some((1, 1)));
    }

    #[test]
    fn best_break_prefers_forward_on_ties() {
        let (cycle, routes) = figure_2_cycle_and_routes();
        let (cost, _pos, dir) = best_break(&cycle, &routes).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(dir, Direction::Forward);
    }

    #[test]
    fn flows_outside_the_cycle_are_ignored() {
        let (cycle, mut routes) = figure_2_cycle_and_routes();
        // A flow using only one cycle channel must not appear in the table.
        let extra = Channel::base(LinkId::from_index(9));
        let mut routes2 = RouteSet::new(5);
        for (f, r) in routes.iter() {
            routes2.set_route(f, r.clone());
        }
        routes2.set_route(
            noc_topology::FlowId::from_index(4),
            Route::new(vec![extra, cycle[0]]),
        );
        routes = routes2;
        let table = cost_table_forward(&cycle, &routes);
        assert_eq!(table.flows.len(), 4);
    }

    #[test]
    fn flow_crossing_the_cycle_twice_counts_cumulatively() {
        // A flow that enters the cycle, leaves, and re-enters: the val
        // counter keeps growing, matching the pseudocode.
        let l = |i| Channel::base(LinkId::from_index(i));
        let cycle = vec![l(0), l(1), l(2), l(3)];
        let mut routes = RouteSet::new(2);
        routes.set_route(
            noc_topology::FlowId::from_index(0),
            Route::new(vec![l(0), l(1), l(7), l(2), l(3)]),
        );
        // A second flow closes the cycle so all dependencies exist.
        routes.set_route(
            noc_topology::FlowId::from_index(1),
            Route::new(vec![l(1), l(2)]),
        );
        let table = cost_table_forward(&cycle, &routes);
        // Flow 0 creates D0 (cost 1: only L0 seen) and D2 (cost 3: L0, L1, L2 seen);
        // it does NOT create D1 (L1 is followed by L7 in the path) nor D3
        // (the path ends at L3).
        assert_eq!(table.costs[0], vec![1, 0, 3, 0]);
    }

    #[test]
    fn acyclic_or_uninvolved_cycle_yields_no_plan() {
        let l = |i| Channel::base(LinkId::from_index(i));
        let cycle = vec![l(0), l(1)];
        let routes = RouteSet::new(1); // empty route, creates nothing
        assert!(best_break(&cycle, &routes).is_none());
        let table = cost_table_forward(&cycle, &routes);
        assert!(table.flows.is_empty());
        assert_eq!(table.best(), None);
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::Forward.to_string(), "forward");
        assert_eq!(Direction::Backward.to_string(), "backward");
    }
}
