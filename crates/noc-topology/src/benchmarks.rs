//! Synthetic SoC benchmark suite.
//!
//! The paper evaluates on six SoC benchmarks taken from ref. \[21\]
//! (D26_media, D36_4, D36_6, D36_8, D35_bott, D38_tvopd).  Those
//! communication specifications were never released publicly, so this module
//! provides **deterministic synthetic substitutes** that match the published
//! structure:
//!
//! * `D26_media` — 26 cores of a combined multimedia + wireless SoC: a few
//!   processors and DSPs, shared memories, a pipeline of media accelerators
//!   and a set of peripherals.  Traffic is master/slave oriented with a
//!   moderate flow count, which is why the paper observes that most
//!   synthesized topologies for it are already deadlock-free.
//! * `D36_4`, `D36_6`, `D36_8` — 36 processing cores where every core sends
//!   data to 4, 6 or 8 other cores respectively (the paper describes D36_8
//!   exactly this way); spreading traffic this widely creates many CDG
//!   cycles, which is why Figure 9 shows a large resource-ordering overhead.
//! * `D35_bott` — 35 cores with a bottleneck pattern: most cores talk to a
//!   small set of memory/IO targets.
//! * `D38_tvopd` — 38 cores arranged as a TV object-plane-decoder-like
//!   pipeline with neighbour-to-neighbour streaming plus a few global
//!   control flows.
//!
//! The exact bandwidth values are drawn from a seeded RNG so every run of the
//! suite sees the same numbers.  Only the *relative* comparison between the
//! deadlock-removal algorithm and resource ordering matters for reproducing
//! the paper's figures, and that comparison is driven by route shapes, not by
//! the absolute bandwidth values.

use crate::comm::CommGraph;
use crate::ids::CoreId;
use noc_rng::SmallRng;

/// Identifies one of the six SoC benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 26-core multimedia + wireless SoC.
    D26Media,
    /// 36 cores, each communicating with 4 others.
    D36x4,
    /// 36 cores, each communicating with 6 others.
    D36x6,
    /// 36 cores, each communicating with 8 others.
    D36x8,
    /// 35 cores with a hot-spot/bottleneck traffic pattern.
    D35Bott,
    /// 38-core TV object-plane-decoder-like pipeline.
    D38Tvopd,
}

impl Benchmark {
    /// All six benchmarks in the order used by Figure 10 of the paper.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::D26Media,
        Benchmark::D36x4,
        Benchmark::D36x6,
        Benchmark::D36x8,
        Benchmark::D35Bott,
        Benchmark::D38Tvopd,
    ];

    /// The short name used in the paper's plots.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::D26Media => "D26_media",
            Benchmark::D36x4 => "D36_4",
            Benchmark::D36x6 => "D36_6",
            Benchmark::D36x8 => "D36_8",
            Benchmark::D35Bott => "D35_bott",
            Benchmark::D38Tvopd => "D38_tvopd",
        }
    }

    /// Number of cores in the benchmark.
    pub fn core_count(self) -> usize {
        match self {
            Benchmark::D26Media => 26,
            Benchmark::D36x4 | Benchmark::D36x6 | Benchmark::D36x8 => 36,
            Benchmark::D35Bott => 35,
            Benchmark::D38Tvopd => 38,
        }
    }

    /// Builds the benchmark's communication graph.
    pub fn comm_graph(self) -> CommGraph {
        match self {
            Benchmark::D26Media => d26_media(),
            Benchmark::D36x4 => d36(4),
            Benchmark::D36x6 => d36(6),
            Benchmark::D36x8 => d36(8),
            Benchmark::D35Bott => d35_bott(),
            Benchmark::D38Tvopd => d38_tvopd(),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn seeded_rng(tag: u64) -> SmallRng {
    // Fixed seed per benchmark so every run of the suite is identical.
    SmallRng::seed_from_u64(0x5eed_0000_0000_0000 ^ tag)
}

/// Bandwidth helper: media-class stream in MB/s.
fn stream_bw(rng: &mut SmallRng) -> f64 {
    rng.gen_range(100.0..800.0)
}

/// Bandwidth helper: control-class traffic in MB/s.
fn control_bw(rng: &mut SmallRng) -> f64 {
    rng.gen_range(5.0..50.0)
}

/// D26_media: 26-core multimedia + wireless SoC.
///
/// Structure: 3 processors, 2 DSPs, 4 shared memories, a 9-stage media
/// pipeline (camera → preproc → encode → … → display), 4 wireless blocks and
/// 4 peripherals.  Masters read/write memories; the pipeline streams
/// neighbour to neighbour; the wireless subsystem exchanges data with one
/// processor and one memory.
pub fn d26_media() -> CommGraph {
    let mut rng = seeded_rng(26);
    let mut g = CommGraph::new();
    let cpus: Vec<CoreId> = (0..3).map(|i| g.add_core(format!("cpu{i}"))).collect();
    let dsps: Vec<CoreId> = (0..2).map(|i| g.add_core(format!("dsp{i}"))).collect();
    let mems: Vec<CoreId> = (0..4).map(|i| g.add_core(format!("mem{i}"))).collect();
    let pipeline: Vec<CoreId> = (0..9).map(|i| g.add_core(format!("media{i}"))).collect();
    let wireless: Vec<CoreId> = (0..4).map(|i| g.add_core(format!("rf{i}"))).collect();
    let periph: Vec<CoreId> = (0..4).map(|i| g.add_core(format!("io{i}"))).collect();
    debug_assert_eq!(g.core_count(), 26);

    // Masters (cpus, dsps) to every memory, and read return traffic.
    for &m in cpus.iter().chain(dsps.iter()) {
        for &mem in &mems {
            g.add_flow(m, mem, stream_bw(&mut rng) * 0.5);
            g.add_flow(mem, m, stream_bw(&mut rng) * 0.5);
        }
    }
    // Media pipeline: neighbour-to-neighbour streaming plus DMA to memory at
    // the ends.
    for w in pipeline.windows(2) {
        g.add_flow(w[0], w[1], stream_bw(&mut rng));
    }
    g.add_flow(mems[0], pipeline[0], stream_bw(&mut rng));
    g.add_flow(*pipeline.last().unwrap(), mems[1], stream_bw(&mut rng));
    // Wireless chain anchored at cpu0 and mem2.
    for w in wireless.windows(2) {
        g.add_flow(w[0], w[1], stream_bw(&mut rng) * 0.3);
    }
    g.add_flow(cpus[0], wireless[0], control_bw(&mut rng));
    g.add_flow(
        *wireless.last().unwrap(),
        mems[2],
        stream_bw(&mut rng) * 0.3,
    );
    // Peripherals: control traffic with cpu1/cpu2.
    for (i, &p) in periph.iter().enumerate() {
        let cpu = cpus[1 + (i % 2)];
        g.add_flow(cpu, p, control_bw(&mut rng));
        g.add_flow(p, cpu, control_bw(&mut rng));
    }
    g
}

/// D36_k: 36 processing cores, each sending data to `fanout` other cores
/// chosen deterministically (a mix of near neighbours and far cores, like a
/// parallel workload with both local and global communication).
pub fn d36(fanout: usize) -> CommGraph {
    assert!(fanout > 0 && fanout < 36, "fanout must be in 1..36");
    let mut rng = seeded_rng(3600 + fanout as u64);
    let mut g = CommGraph::new();
    let cores: Vec<CoreId> = (0..36).map(|i| g.add_core(format!("pe{i}"))).collect();
    for (i, &src) in cores.iter().enumerate() {
        for k in 0..fanout {
            // Half the destinations are neighbours, half stride across the die.
            let offset = if k % 2 == 0 {
                k / 2 + 1
            } else {
                5 + 7 * (k / 2 + 1)
            };
            let dst = cores[(i + offset) % 36];
            if dst != src {
                g.add_flow(src, dst, stream_bw(&mut rng) * 0.4);
            }
        }
    }
    g
}

/// D35_bott: 35 cores, bottleneck pattern — 30 processing cores all talk to a
/// pool of 4 memories and one IO hub, plus sparse peer-to-peer flows.
pub fn d35_bott() -> CommGraph {
    let mut rng = seeded_rng(35);
    let mut g = CommGraph::new();
    let pes: Vec<CoreId> = (0..30).map(|i| g.add_core(format!("pe{i}"))).collect();
    let mems: Vec<CoreId> = (0..4).map(|i| g.add_core(format!("mem{i}"))).collect();
    let io = g.add_core("io_hub");
    debug_assert_eq!(g.core_count(), 35);
    for (i, &pe) in pes.iter().enumerate() {
        let mem = mems[i % mems.len()];
        g.add_flow(pe, mem, stream_bw(&mut rng) * 0.6);
        g.add_flow(mem, pe, stream_bw(&mut rng) * 0.6);
        if i % 5 == 0 {
            g.add_flow(pe, io, control_bw(&mut rng));
        }
        if i % 7 == 0 {
            g.add_flow(pe, pes[(i + 11) % pes.len()], control_bw(&mut rng));
        }
    }
    g
}

/// D38_tvopd: 38-core TV object-plane-decoder-like design — long streaming
/// pipelines with a few broadcast-style control flows.
pub fn d38_tvopd() -> CommGraph {
    let mut rng = seeded_rng(38);
    let mut g = CommGraph::new();
    let cores: Vec<CoreId> = (0..38).map(|i| g.add_core(format!("op{i}"))).collect();
    // Three parallel decode pipelines of 12 cores each.
    for p in 0..3 {
        let base = p * 12;
        for i in base..base + 11 {
            g.add_flow(cores[i], cores[i + 1], stream_bw(&mut rng));
        }
    }
    // Two controller cores broadcast configuration to pipeline heads and
    // collect status from the tails.
    let ctrl0 = cores[36];
    let ctrl1 = cores[37];
    for p in 0..3 {
        g.add_flow(ctrl0, cores[p * 12], control_bw(&mut rng));
        g.add_flow(cores[p * 12 + 11], ctrl1, control_bw(&mut rng));
    }
    // Cross links between pipelines (object plane composition).
    for p in 0..2 {
        g.add_flow(
            cores[p * 12 + 5],
            cores[(p + 1) * 12 + 5],
            stream_bw(&mut rng) * 0.5,
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_match_the_paper() {
        for b in Benchmark::ALL {
            assert_eq!(b.comm_graph().core_count(), b.core_count(), "{b}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for b in Benchmark::ALL {
            let a = b.comm_graph();
            let c = b.comm_graph();
            assert_eq!(a, c, "{b} must be reproducible run-to-run");
        }
    }

    #[test]
    fn d36_fanout_controls_flow_count() {
        let f4 = Benchmark::D36x4.comm_graph().flow_count();
        let f6 = Benchmark::D36x6.comm_graph().flow_count();
        let f8 = Benchmark::D36x8.comm_graph().flow_count();
        assert!(f4 < f6 && f6 < f8);
        assert_eq!(f8, 36 * 8);
    }

    #[test]
    fn every_flow_references_valid_cores_with_positive_bandwidth() {
        for b in Benchmark::ALL {
            let g = b.comm_graph();
            for (_, f) in g.flows() {
                assert!(f.source.index() < g.core_count());
                assert!(f.destination.index() < g.core_count());
                assert_ne!(f.source, f.destination, "{b}: self flows make no sense");
                assert!(f.bandwidth > 0.0);
            }
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Benchmark::D26Media.name(), "D26_media");
        assert_eq!(Benchmark::D36x8.to_string(), "D36_8");
        assert_eq!(Benchmark::ALL.len(), 6);
    }

    #[test]
    fn bottleneck_benchmark_concentrates_traffic_on_memories() {
        let g = d35_bott();
        // Memories (cores 30..34) receive far more flows *each* than a PE does.
        let mem_in_avg = (30..34)
            .map(|i| g.flows_to(CoreId::from_index(i)).count())
            .sum::<usize>() as f64
            / 4.0;
        let pe_in_avg = (0..30)
            .map(|i| g.flows_to(CoreId::from_index(i)).count())
            .sum::<usize>() as f64
            / 30.0;
        assert!(mem_in_avg > 3.0 * pe_in_avg);
    }

    #[test]
    fn tvopd_has_three_pipelines() {
        let g = d38_tvopd();
        // Pipeline interior cores have exactly one outgoing stream flow.
        let c = CoreId::from_index(3);
        assert_eq!(g.flows_from(c).count(), 1);
        assert!(g.flow_count() >= 3 * 11);
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn d36_rejects_bad_fanout() {
        d36(0);
    }
}
