//! The cycle-based wormhole simulation engine.

use crate::packet::{Flit, FlitKind, Packet, PacketId};
use crate::stats::SimStats;
use crate::traffic::{generate_workload, TrafficConfig, Workload};
use noc_routing::RouteSet;
use noc_topology::{Channel, CommGraph, FlowId, Topology};
use std::collections::{HashMap, VecDeque};

/// Simulator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Depth of every VC input buffer, in flits.
    pub buffer_depth: usize,
    /// Number of consecutive cycles without any flit movement (while flits
    /// are in flight) after which the run is declared deadlocked.
    pub deadlock_threshold: u64,
    /// Hard cap on simulated cycles.
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_depth: 2,
            deadlock_threshold: 1_000,
            max_cycles: 2_000_000,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Latency / throughput statistics.
    pub stats: SimStats,
    /// `true` if the run was declared deadlocked (no progress while flits
    /// were in flight).
    pub deadlocked: bool,
    /// Packets still undelivered when the run ended.
    pub stranded_packets: usize,
}

/// Per-packet bookkeeping.
#[derive(Debug, Clone)]
struct PacketState {
    packet: Packet,
    /// The packet's route (copied so the simulator owns its channel list).
    route: Vec<Channel>,
    /// Flits not yet injected, front first.
    to_inject: VecDeque<Flit>,
    /// Number of flits already ejected at the destination.
    ejected: usize,
}

/// One decided flit movement, applied in the second phase of a cycle.
#[derive(Debug, Clone, Copy)]
enum Move {
    /// Inject the next flit of a packet into its first channel.
    Inject { packet: PacketId, into: usize },
    /// Advance the head-of-line flit of channel `from` to channel `to`.
    Advance { from: usize, to: usize },
    /// Eject the head-of-line flit of channel `from` at the destination.
    Eject { from: usize },
}

/// The wormhole simulator.  Borrows the design it simulates.
#[derive(Debug)]
pub struct Simulator<'a> {
    comm: &'a CommGraph,
    routes: &'a RouteSet,
    config: SimConfig,
    /// Dense channel indexing.
    channels: Vec<Channel>,
    channel_index: HashMap<Channel, usize>,
    /// Input buffer of each channel (at the link's downstream switch).
    buffers: Vec<VecDeque<Flit>>,
    /// Which packet currently owns each channel (wormhole VC allocation).
    owner: Vec<Option<PacketId>>,
    packets: HashMap<PacketId, PacketState>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the given design.
    ///
    /// # Panics
    ///
    /// Panics if a route references a channel that does not exist in the
    /// topology (run `noc_deadlock::verify::missing_channels` first if the
    /// route set comes from an untrusted source).
    pub fn new(
        topology: &'a Topology,
        comm: &'a CommGraph,
        routes: &'a RouteSet,
        config: &SimConfig,
    ) -> Self {
        let channels: Vec<Channel> = topology.channels().collect();
        let channel_index: HashMap<Channel, usize> =
            channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        for (_, route) in routes.iter() {
            for channel in route.channels() {
                assert!(
                    channel_index.contains_key(channel),
                    "route references unknown channel {channel}"
                );
            }
        }
        let n = channels.len();
        Simulator {
            comm,
            routes,
            config: config.clone(),
            channels,
            channel_index,
            buffers: vec![VecDeque::new(); n],
            owner: vec![None; n],
            packets: HashMap::new(),
        }
    }

    /// Generates a workload from the design's communication graph and runs
    /// it to completion, deadlock or the cycle cap.
    pub fn run(&mut self, traffic: &TrafficConfig) -> SimOutcome {
        let workload = generate_workload(self.comm, traffic);
        self.run_workload(&workload)
    }

    /// Runs an explicit workload.
    pub fn run_workload(&mut self, workload: &Workload) -> SimOutcome {
        self.reset();
        let mut stats = SimStats::default();
        let mut pending: VecDeque<Packet> = workload.packets.iter().cloned().collect();
        // Per-flow FIFO of packets waiting to start injection.
        let mut flow_queues: HashMap<FlowId, VecDeque<PacketId>> = HashMap::new();
        let mut idle_cycles = 0u64;
        let mut deadlocked = false;

        let mut cycle = 0u64;
        while cycle < self.config.max_cycles {
            // Admit newly created packets into their flow queue.
            while pending.front().is_some_and(|p| p.created_at <= cycle) {
                let packet = pending.pop_front().expect("checked non-empty");
                stats.injected_packets += 1;
                let route: Vec<Channel> = self
                    .routes
                    .route(packet.flow)
                    .map(|r| r.channels().to_vec())
                    .unwrap_or_default();
                if route.is_empty() {
                    // Same-switch flow: delivered immediately.
                    stats.delivered_packets += 1;
                    stats.delivered_flits += packet.length;
                    stats.record_latency(cycle.saturating_sub(packet.created_at));
                    continue;
                }
                let state = PacketState {
                    to_inject: packet.flits().into(),
                    route,
                    ejected: 0,
                    packet: packet.clone(),
                };
                flow_queues
                    .entry(packet.flow)
                    .or_default()
                    .push_back(packet.id);
                self.packets.insert(packet.id, state);
            }

            let moves = self.decide_moves(&flow_queues);
            let progressed = !moves.is_empty();
            let delivered = self.apply_moves(&moves, cycle, &mut stats, &mut flow_queues);
            let _ = delivered;

            let in_flight = self.packets.values().any(|p| p.ejected < p.packet.length);
            if !in_flight && pending.is_empty() {
                cycle += 1;
                break;
            }
            if progressed || !in_flight {
                // Waiting for future packet arrivals is not a deadlock.
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                if idle_cycles >= self.config.deadlock_threshold {
                    deadlocked = true;
                    cycle += 1;
                    break;
                }
            }
            cycle += 1;
        }

        stats.cycles = cycle;
        let stranded_packets = self
            .packets
            .values()
            .filter(|p| p.ejected < p.packet.length)
            .count();
        SimOutcome {
            stats,
            deadlocked,
            stranded_packets,
        }
    }

    fn reset(&mut self) {
        for buffer in &mut self.buffers {
            buffer.clear();
        }
        for owner in &mut self.owner {
            *owner = None;
        }
        self.packets.clear();
    }

    /// Phase 1: decide all flit movements for this cycle based on the
    /// start-of-cycle state.  At most one flit enters and one flit leaves
    /// each channel per cycle.
    fn decide_moves(&self, flow_queues: &HashMap<FlowId, VecDeque<PacketId>>) -> Vec<Move> {
        let mut moves = Vec::new();
        let mut entering = vec![false; self.channels.len()];
        let mut leaving = vec![false; self.channels.len()];

        // In-network flits first (drain before filling), iterating channels
        // in reverse index order so downstream channels (added later during
        // removal) are not starved; the order does not affect correctness.
        for from in (0..self.channels.len()).rev() {
            let Some(flit) = self.buffers[from].front() else {
                continue;
            };
            let state = &self.packets[&flit.packet];
            let pos = state
                .route
                .iter()
                .position(|&c| self.channel_index[&c] == from)
                .expect("flit sits on a channel of its route");
            if pos + 1 == state.route.len() {
                // Last hop: eject (destination always sinks flits).
                moves.push(Move::Eject { from });
                leaving[from] = true;
                continue;
            }
            let to = self.channel_index[&state.route[pos + 1]];
            if entering[to] {
                continue;
            }
            let can_claim = match flit.kind {
                FlitKind::Head | FlitKind::HeadTail => {
                    self.owner[to].is_none() || self.owner[to] == Some(flit.packet)
                }
                _ => self.owner[to] == Some(flit.packet),
            };
            if can_claim && self.buffers[to].len() < self.config.buffer_depth {
                moves.push(Move::Advance { from, to });
                entering[to] = true;
                leaving[from] = true;
            }
        }

        // Injections: the packet at the front of each flow queue may push its
        // next flit into the first channel of its route.
        let mut flows: Vec<&FlowId> = flow_queues.keys().collect();
        flows.sort();
        for flow in flows {
            let Some(&packet_id) = flow_queues[flow].front() else {
                continue;
            };
            let state = &self.packets[&packet_id];
            let Some(flit) = state.to_inject.front() else {
                continue;
            };
            let into = self.channel_index[&state.route[0]];
            if entering[into] {
                continue;
            }
            let can_claim = match flit.kind {
                FlitKind::Head | FlitKind::HeadTail => {
                    self.owner[into].is_none() || self.owner[into] == Some(packet_id)
                }
                _ => self.owner[into] == Some(packet_id),
            };
            if can_claim && self.buffers[into].len() < self.config.buffer_depth {
                moves.push(Move::Inject {
                    packet: packet_id,
                    into,
                });
                entering[into] = true;
            }
        }
        let _ = leaving;
        moves
    }

    /// Phase 2: apply the decided moves, updating ownership, ejections and
    /// statistics.  Returns the number of packets fully delivered this cycle.
    fn apply_moves(
        &mut self,
        moves: &[Move],
        cycle: u64,
        stats: &mut SimStats,
        flow_queues: &mut HashMap<FlowId, VecDeque<PacketId>>,
    ) -> usize {
        let mut delivered = 0usize;
        for &mv in moves {
            match mv {
                Move::Inject { packet, into } => {
                    let state = self.packets.get_mut(&packet).expect("packet exists");
                    let flit = state.to_inject.pop_front().expect("decided with a flit");
                    if matches!(flit.kind, FlitKind::Head | FlitKind::HeadTail) {
                        self.owner[into] = Some(packet);
                    }
                    self.buffers[into].push_back(flit);
                    if state.to_inject.is_empty() {
                        // The whole packet has left the source: the next
                        // packet of this flow may start injecting.
                        if let Some(queue) = flow_queues.get_mut(&state.packet.flow) {
                            if queue.front() == Some(&packet) {
                                queue.pop_front();
                            }
                        }
                    }
                }
                Move::Advance { from, to } => {
                    let flit = self.buffers[from].pop_front().expect("decided with a flit");
                    if matches!(flit.kind, FlitKind::Head | FlitKind::HeadTail) {
                        self.owner[to] = Some(flit.packet);
                    }
                    if matches!(flit.kind, FlitKind::Tail | FlitKind::HeadTail)
                        && self.owner[from] == Some(flit.packet)
                    {
                        self.owner[from] = None;
                    }
                    self.buffers[to].push_back(flit);
                }
                Move::Eject { from } => {
                    let flit = self.buffers[from].pop_front().expect("decided with a flit");
                    if matches!(flit.kind, FlitKind::Tail | FlitKind::HeadTail)
                        && self.owner[from] == Some(flit.packet)
                    {
                        self.owner[from] = None;
                    }
                    let state = self.packets.get_mut(&flit.packet).expect("packet exists");
                    state.ejected += 1;
                    stats.delivered_flits += 1;
                    if state.ejected == state.packet.length {
                        delivered += 1;
                        stats.delivered_packets += 1;
                        stats.record_latency(cycle.saturating_sub(state.packet.created_at) + 1);
                    }
                }
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::shortest::route_all_shortest;
    use noc_routing::Route;
    use noc_topology::{generators, CoreMap, LinkId};

    fn line_design() -> (Topology, CommGraph, RouteSet) {
        let generated = generators::chain(3, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        comm.add_flow(a, b, 100.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[2]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        (generated.topology, comm, routes)
    }

    #[test]
    fn single_flow_delivers_all_packets() {
        let (topo, comm, routes) = line_design();
        let mut sim = Simulator::new(&topo, &comm, &routes, &SimConfig::default());
        let outcome = sim.run(&TrafficConfig {
            packets_per_flow: 10,
            packet_length: 4,
            ..TrafficConfig::default()
        });
        assert!(!outcome.deadlocked);
        assert_eq!(outcome.stats.injected_packets, 10);
        assert_eq!(outcome.stats.delivered_packets, 10);
        assert_eq!(outcome.stats.delivered_flits, 40);
        assert_eq!(outcome.stranded_packets, 0);
        assert!(outcome.stats.mean_latency() >= 2.0, "2 hops minimum");
        assert!(outcome.stats.delivery_ratio() == 1.0);
    }

    #[test]
    fn same_switch_flow_is_delivered_instantly() {
        let generated = generators::chain(2, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        comm.add_flow(a, b, 10.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[0]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        let mut sim = Simulator::new(&generated.topology, &comm, &routes, &SimConfig::default());
        let outcome = sim.run(&TrafficConfig::default());
        assert_eq!(
            outcome.stats.delivered_packets,
            outcome.stats.injected_packets
        );
        assert!(!outcome.deadlocked);
    }

    #[test]
    fn cyclic_ring_under_pressure_deadlocks() {
        // The Figure 1 configuration: four flows chasing each other around a
        // unidirectional ring with multi-flit packets and tiny buffers.
        let generated = generators::unidirectional_ring(4, 1.0);
        let topo = generated.topology;
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..4 {
            comm.add_flow(cores[i], cores[(i + 2) % 4], 100.0);
        }
        let links: Vec<LinkId> = (0..4).map(LinkId::from_index).collect();
        let mut routes = RouteSet::new(4);
        for i in 0..4 {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([links[i], links[(i + 1) % 4]]),
            );
        }
        let config = SimConfig {
            buffer_depth: 1,
            deadlock_threshold: 200,
            max_cycles: 100_000,
        };
        let mut sim = Simulator::new(&topo, &comm, &routes, &config);
        let outcome = sim.run(&TrafficConfig {
            packets_per_flow: 20,
            packet_length: 6,
            mean_gap_cycles: 0,
            seed: 1,
            ..TrafficConfig::default()
        });
        assert!(
            outcome.deadlocked,
            "the cyclic CDG design must deadlock under pressure"
        );
        assert!(outcome.stranded_packets > 0);
    }

    #[test]
    fn removal_fixed_ring_does_not_deadlock() {
        // Same design, after the deadlock-removal algorithm.
        let generated = generators::unidirectional_ring(4, 1.0);
        let mut topo = generated.topology;
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..4 {
            comm.add_flow(cores[i], cores[(i + 2) % 4], 100.0);
        }
        let links: Vec<LinkId> = (0..4).map(LinkId::from_index).collect();
        let mut routes = RouteSet::new(4);
        for i in 0..4 {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([links[i], links[(i + 1) % 4]]),
            );
        }
        noc_deadlock::removal::remove_deadlocks(
            &mut topo,
            &mut routes,
            &noc_deadlock::removal::RemovalConfig::default(),
        )
        .unwrap();
        let config = SimConfig {
            buffer_depth: 1,
            deadlock_threshold: 200,
            max_cycles: 200_000,
        };
        let mut sim = Simulator::new(&topo, &comm, &routes, &config);
        let outcome = sim.run(&TrafficConfig {
            packets_per_flow: 20,
            packet_length: 6,
            mean_gap_cycles: 0,
            seed: 1,
            ..TrafficConfig::default()
        });
        assert!(!outcome.deadlocked);
        assert_eq!(
            outcome.stats.delivered_packets,
            outcome.stats.injected_packets
        );
        assert_eq!(outcome.stranded_packets, 0);
    }

    #[test]
    #[should_panic(expected = "unknown channel")]
    fn routes_with_unknown_channels_are_rejected() {
        let (topo, comm, mut routes) = line_design();
        routes
            .route_mut(FlowId::from_index(0))
            .unwrap()
            .channels_mut()[0] = Channel::new(LinkId::from_index(0), 9);
        let _ = Simulator::new(&topo, &comm, &routes, &SimConfig::default());
    }

    #[test]
    fn larger_buffers_reduce_latency_under_contention() {
        let generated = generators::chain(5, 1.0);
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..5).map(|i| comm.add_core(format!("c{i}"))).collect();
        // Several flows sharing the same chain links.
        comm.add_flow(cores[0], cores[4], 100.0);
        comm.add_flow(cores[1], cores[4], 100.0);
        comm.add_flow(cores[0], cores[3], 100.0);
        let mut map = CoreMap::new(5);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        let traffic = TrafficConfig {
            packets_per_flow: 30,
            packet_length: 4,
            ..TrafficConfig::default()
        };
        let small = Simulator::new(
            &generated.topology,
            &comm,
            &routes,
            &SimConfig {
                buffer_depth: 1,
                ..SimConfig::default()
            },
        )
        .run(&traffic);
        let large = Simulator::new(
            &generated.topology,
            &comm,
            &routes,
            &SimConfig {
                buffer_depth: 8,
                ..SimConfig::default()
            },
        )
        .run(&traffic);
        assert!(!small.deadlocked && !large.deadlocked);
        assert!(large.stats.cycles <= small.stats.cycles);
    }
}
