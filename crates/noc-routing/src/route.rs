//! The route data model: ordered channel lists per flow.

use noc_topology::{Channel, FlowId, LinkId, SwitchId, Topology};

/// A route (Definition 3): the ordered list of channels a flow traverses.
///
/// A flow whose source and destination cores are attached to the same switch
/// has an empty route — it never enters the switch-to-switch network.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Route {
    channels: Vec<Channel>,
}

impl Route {
    /// Creates a route from an ordered channel list.
    pub fn new(channels: Vec<Channel>) -> Self {
        Route { channels }
    }

    /// Creates an empty (same-switch) route.
    pub fn empty() -> Self {
        Route::default()
    }

    /// Creates a route that uses VC 0 of every link in `links`, in order.
    pub fn from_links(links: impl IntoIterator<Item = LinkId>) -> Self {
        Route {
            channels: links.into_iter().map(Channel::base).collect(),
        }
    }

    /// The ordered channels of the route.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Mutable access to the channels (used by the deadlock-removal
    /// algorithm when re-routing a flow onto newly added VCs).
    pub fn channels_mut(&mut self) -> &mut Vec<Channel> {
        &mut self.channels
    }

    /// The ordered physical links of the route.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.channels.iter().map(|c| c.link)
    }

    /// Number of channels (= hops across the switch network).
    pub fn hop_count(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` for a same-switch route.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Returns `true` if the route uses the given channel.
    pub fn uses_channel(&self, channel: Channel) -> bool {
        self.channels.contains(&channel)
    }

    /// Returns `true` if the route uses any VC of the given link.
    pub fn uses_link(&self, link: LinkId) -> bool {
        self.channels.iter().any(|c| c.link == link)
    }

    /// The position of `channel` within the route, if present.
    pub fn position(&self, channel: Channel) -> Option<usize> {
        self.channels.iter().position(|&c| c == channel)
    }

    /// The switch sequence the route traverses, derived from `topology`
    /// (source switch of the first link, then target of each link).
    /// Returns `None` if any link is unknown to the topology.
    pub fn switch_path(&self, topology: &Topology) -> Option<Vec<SwitchId>> {
        if self.channels.is_empty() {
            return Some(Vec::new());
        }
        let mut path = Vec::with_capacity(self.channels.len() + 1);
        let first = topology.link(self.channels[0].link)?;
        path.push(first.source);
        for c in &self.channels {
            path.push(topology.link(c.link)?.target);
        }
        Some(path)
    }
}

impl FromIterator<Channel> for Route {
    fn from_iter<T: IntoIterator<Item = Channel>>(iter: T) -> Self {
        Route {
            channels: iter.into_iter().collect(),
        }
    }
}

/// The set of routes for every flow of a design, indexed by [`FlowId`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteSet {
    routes: Vec<Route>,
}

impl RouteSet {
    /// Creates a route set with `flow_count` empty routes.
    pub fn new(flow_count: usize) -> Self {
        RouteSet {
            routes: vec![Route::empty(); flow_count],
        }
    }

    /// Number of flows covered.
    pub fn flow_count(&self) -> usize {
        self.routes.len()
    }

    /// Returns the route of `flow`, if the id is in range.
    pub fn route(&self, flow: FlowId) -> Option<&Route> {
        self.routes.get(flow.index())
    }

    /// Returns a mutable reference to the route of `flow`.
    pub fn route_mut(&mut self, flow: FlowId) -> Option<&mut Route> {
        self.routes.get_mut(flow.index())
    }

    /// Replaces the route of `flow`.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn set_route(&mut self, flow: FlowId, route: Route) {
        self.routes[flow.index()] = route;
    }

    /// Iterates over `(FlowId, &Route)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &Route)> + '_ {
        self.routes
            .iter()
            .enumerate()
            .map(|(i, r)| (FlowId::from_index(i), r))
    }

    /// The flows whose route uses the given channel.
    pub fn flows_using_channel(&self, channel: Channel) -> Vec<FlowId> {
        self.iter()
            .filter(|(_, r)| r.uses_channel(channel))
            .map(|(f, _)| f)
            .collect()
    }

    /// The flows whose route uses any VC of the given link.
    pub fn flows_using_link(&self, link: LinkId) -> Vec<FlowId> {
        self.iter()
            .filter(|(_, r)| r.uses_link(link))
            .map(|(f, _)| f)
            .collect()
    }

    /// The longest route length across all flows (used by the
    /// resource-ordering baseline to size its channel-class count).
    pub fn max_hops(&self) -> usize {
        self.routes.iter().map(Route::hop_count).max().unwrap_or(0)
    }

    /// Number of flows that actually enter the switch network, i.e. whose
    /// route has at least one hop.  Flows between cores on the same switch
    /// have empty routes and are *not* counted.
    pub fn active_flow_count(&self) -> usize {
        self.routes.iter().filter(|r| !r.is_empty()).count()
    }

    /// Average hop count over the [`active_flow_count`](Self::active_flow_count)
    /// flows that actually enter the network.
    ///
    /// Zero-hop (same-switch) flows are **deliberately excluded** from the
    /// average: they never occupy a channel, so counting them would make a
    /// design with good core clustering look artificially "shorter-routed"
    /// than one where every flow crosses the network.  A route set with no
    /// active flows at all has a mean of `0.0`.
    pub fn mean_hops(&self) -> f64 {
        let (count, total) = self
            .routes
            .iter()
            .map(Route::hop_count)
            .filter(|&h| h > 0)
            .fold((0usize, 0usize), |(c, t), h| (c + 1, t + h));
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Topology;

    fn two_link_route() -> (Topology, Route) {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let c = t.add_switch("c");
        let l0 = t.add_link(a, b, 1.0);
        let l1 = t.add_link(b, c, 1.0);
        (t, Route::from_links([l0, l1]))
    }

    #[test]
    fn route_accessors() {
        let (t, r) = two_link_route();
        assert_eq!(r.hop_count(), 2);
        assert!(!r.is_empty());
        assert!(r.uses_link(LinkId::from_index(0)));
        assert!(r.uses_channel(Channel::base(LinkId::from_index(1))));
        assert!(!r.uses_channel(Channel::new(LinkId::from_index(1), 1)));
        assert_eq!(r.position(Channel::base(LinkId::from_index(1))), Some(1));
        let path = r.switch_path(&t).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], SwitchId::from_index(0));
        assert_eq!(path[2], SwitchId::from_index(2));
    }

    #[test]
    fn empty_route_has_empty_switch_path() {
        let (t, _) = two_link_route();
        let r = Route::empty();
        assert!(r.is_empty());
        assert_eq!(r.switch_path(&t), Some(vec![]));
    }

    #[test]
    fn switch_path_with_unknown_link_is_none() {
        let t = Topology::new();
        let r = Route::from_links([LinkId::from_index(0)]);
        assert_eq!(r.switch_path(&t), None);
    }

    #[test]
    fn route_set_indexing_and_queries() {
        let (_, r) = two_link_route();
        let mut rs = RouteSet::new(3);
        assert_eq!(rs.flow_count(), 3);
        let f1 = FlowId::from_index(1);
        rs.set_route(f1, r.clone());
        assert_eq!(rs.route(f1), Some(&r));
        assert_eq!(rs.max_hops(), 2);
        assert_eq!(rs.flows_using_link(LinkId::from_index(0)), vec![f1]);
        assert_eq!(
            rs.flows_using_channel(Channel::base(LinkId::from_index(1))),
            vec![f1]
        );
        assert!(rs.flows_using_link(LinkId::from_index(7)).is_empty());
        assert_eq!(rs.route(FlowId::from_index(9)), None);
    }

    #[test]
    fn mean_hops_ignores_local_flows() {
        let (_, r) = two_link_route();
        let mut rs = RouteSet::new(2);
        rs.set_route(FlowId::from_index(0), r);
        // One 2-hop flow plus one local (empty) flow: the local flow is
        // excluded, so the mean is 2.0, not 1.0.
        assert_eq!(rs.mean_hops(), 2.0);
        let empty = RouteSet::new(2);
        assert_eq!(empty.mean_hops(), 0.0);
    }

    #[test]
    fn active_flow_count_matches_nonempty_routes() {
        let (_, r) = two_link_route();
        let mut rs = RouteSet::new(3);
        assert_eq!(rs.active_flow_count(), 0);
        rs.set_route(FlowId::from_index(0), r.clone());
        rs.set_route(FlowId::from_index(2), r);
        assert_eq!(rs.active_flow_count(), 2);
        // mean_hops averages over exactly the active flows.
        assert_eq!(rs.mean_hops(), 2.0);
    }

    #[test]
    fn route_collects_from_channel_iterator() {
        let channels = vec![
            Channel::base(LinkId::from_index(0)),
            Channel::new(LinkId::from_index(1), 2),
        ];
        let r: Route = channels.iter().copied().collect();
        assert_eq!(r.channels(), channels.as_slice());
    }

    #[test]
    fn channels_mut_allows_rerouting() {
        let (_, mut r) = two_link_route();
        r.channels_mut()[0] = Channel::new(LinkId::from_index(0), 1);
        assert!(r.uses_channel(Channel::new(LinkId::from_index(0), 1)));
    }
}
