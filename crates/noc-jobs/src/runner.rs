//! The worker-pool job runner: resumes from the store, consults the
//! cache, computes what is missing, and commits the assembled artifact.

use crate::cache::ArtifactCache;
use crate::digest::sha256_hex;
use crate::error::JobError;
use crate::source::{AssembleContext, JobSource};
use crate::spec::JobRequest;
use crate::store::JobStore;
use noc_flow::executor::parallel_map_streaming;
use noc_flow::json::ParsedArtifact;
use std::path::PathBuf;

/// The content-hash key of one task: the digest of
/// `{"job": <canonical spec>, "task": <index>}` — see [`task_key`] for the
/// pre-image.  This is the cache key a re-submitted identical job hits.
pub fn task_digest(spec: &JobRequest, index: usize) -> String {
    sha256_hex(task_key(spec, index).as_bytes())
}

/// The pre-image of [`task_digest`], kept in cache entries for audit.
pub fn task_key(spec: &JobRequest, index: usize) -> String {
    format!("{{\"job\":{},\"task\":{index}}}", spec.canonical())
}

/// How a finished job's tasks were satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Total tasks in the job.
    pub total: usize,
    /// Tasks computed in this run.
    pub computed: usize,
    /// Tasks replayed from the job store's completion log.
    pub resumed: usize,
    /// Tasks satisfied from the content-hash cache.
    pub cache_hits: usize,
    /// Total recorded task wall time, in milliseconds.
    pub task_ms_total: u64,
}

/// The outcome of a [`JobRunner::run`] / [`JobRunner::run_bounded`] call.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// How the tasks were satisfied.
    pub stats: RunStats,
    /// The committed artifact (path + full text) — `None` when a bounded
    /// run exhausted its task budget with tasks still missing.
    pub artifact: Option<JobArtifact>,
}

/// A committed artifact.
#[derive(Debug, Clone)]
pub struct JobArtifact {
    /// Where the store committed it (`<job dir>/artifact.json`).
    pub path: PathBuf,
    /// The full document text.
    pub text: String,
}

/// Drives one job to completion (or up to a task budget) against an open
/// [`JobStore`], optionally consulting an [`ArtifactCache`].
#[derive(Debug)]
pub struct JobRunner<'a> {
    store: JobStore,
    cache: Option<&'a ArtifactCache>,
}

impl<'a> JobRunner<'a> {
    /// Wraps an open store.
    pub fn new(store: JobStore) -> Self {
        JobRunner { store, cache: None }
    }

    /// Consult (and populate) `cache` for task results.
    pub fn with_cache(mut self, cache: &'a ArtifactCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The underlying store (e.g. to inspect records in tests).
    pub fn store(&self) -> &JobStore {
        &self.store
    }

    /// Releases the underlying store.
    pub fn into_store(self) -> JobStore {
        self.store
    }

    /// Runs the job to completion and commits the artifact.
    pub fn run(&mut self, source: &dyn JobSource) -> Result<JobReport, JobError> {
        self.run_bounded(source, usize::MAX)
    }

    /// Runs the job, computing at most `max_new_tasks` previously
    /// unrecorded tasks in this call.  Returns a report with
    /// `artifact: None` when the budget ran out before the job finished —
    /// every computed task is durably recorded, so a later call (or
    /// process) picks up exactly where this one stopped.
    pub fn run_bounded(
        &mut self,
        source: &dyn JobSource,
        max_new_tasks: usize,
    ) -> Result<JobReport, JobError> {
        let spec = self.store.spec().clone();
        let mut job_span = noc_telemetry::span("jobs", "run_job");
        job_span
            .arg("figure", spec.figure.as_str())
            .arg("id", spec.id.as_str());
        if spec.figure != source.figure() {
            return Err(JobError::Spec(format!(
                "source evaluates {:?} but the job requests {:?}",
                source.figure(),
                spec.figure
            )));
        }
        let total = source.task_count();
        self.store.forget_beyond(total);

        // A previously committed artifact ends the job immediately: the
        // tasks all have records, the text is already assembled.
        if let Some(text) = self.store.committed_artifact() {
            if ParsedArtifact::parse(&text).is_ok() && self.store.records().len() == total {
                return Ok(JobReport {
                    stats: RunStats {
                        total,
                        resumed: total,
                        task_ms_total: self.task_ms(),
                        ..RunStats::default()
                    },
                    artifact: Some(JobArtifact {
                        path: self.store.artifact_path(),
                        text,
                    }),
                });
            }
        }

        let resumed = self.store.records().len();
        let mut cache_hits = 0usize;

        // Satisfy missing tasks from the cache first — a hit becomes a
        // durable record like any computed result, so later resumes no
        // longer depend on the cache.
        let mut missing: Vec<usize> = Vec::new();
        for index in 0..total {
            if self.store.records().contains_key(&index) {
                continue;
            }
            let digest = task_digest(&spec, index);
            match self.cache.and_then(|cache| cache.lookup(&digest)) {
                Some(result) => {
                    self.store.record(index, 0, result)?;
                    cache_hits += 1;
                    noc_telemetry::counter("jobs.cache_hits", 1);
                }
                None => {
                    if self.cache.is_some() {
                        noc_telemetry::counter("jobs.cache_misses", 1);
                    }
                    missing.push(index);
                }
            }
        }

        // Compute what remains, up to the budget, streaming each result
        // into the completion log the moment it lands.
        let truncated = missing.len() > max_new_tasks;
        missing.truncate(max_new_tasks);
        let computed = missing.len();
        let mut record_error: Option<JobError> = None;
        let results = parallel_map_streaming(
            &missing,
            spec.threads,
            |_, &index| {
                let mut task_span = noc_telemetry::span("jobs", "task");
                task_span
                    .arg("figure", spec.figure.as_str())
                    .arg("index", index);
                let started = std::time::Instant::now();
                let result = source.run_task(index);
                let elapsed_ms = started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
                (index, elapsed_ms, result)
            },
            |_, (index, elapsed_ms, result)| {
                if record_error.is_some() {
                    return;
                }
                if let Ok(result) = result {
                    if let Err(e) = self.store.record(*index, *elapsed_ms, result.clone()) {
                        record_error = Some(e);
                        return;
                    }
                    if let Some(cache) = self.cache {
                        cache.store(
                            &task_digest(&spec, *index),
                            &task_key(&spec, *index),
                            result,
                        );
                    }
                }
            },
        );
        if let Some(e) = record_error {
            return Err(e);
        }
        // Task failures surface after every in-flight success is durably
        // recorded; the earliest task index wins, like the sweep executor.
        // The winner is wrapped with its task index so consumers (e.g.
        // `noc_serve`'s error.json) can point at the failing unit of work.
        if let Some((index, _, Err(e))) = results.into_iter().find(|(_, _, r)| r.is_err()) {
            return Err(JobError::Task {
                index,
                source: Box::new(e),
            });
        }

        noc_telemetry::counter("jobs.tasks_computed", computed as u64);
        noc_telemetry::counter("jobs.tasks_resumed", resumed as u64);
        let stats = RunStats {
            total,
            computed,
            resumed,
            cache_hits,
            task_ms_total: self.task_ms(),
        };
        if truncated {
            return Ok(JobReport {
                stats,
                artifact: None,
            });
        }

        let ordered: Vec<String> = self
            .store
            .records()
            .values()
            .map(|record| record.result.clone())
            .collect();
        debug_assert_eq!(ordered.len(), total);
        let text = source.assemble(&AssembleContext {
            figure: &spec.figure,
            results: &ordered,
            task_ms_total: stats.task_ms_total,
        })?;
        // Self-validate before committing — a splice bug must fail the
        // run, never publish an unreadable artifact.
        ParsedArtifact::parse(&text)?;
        self.store.commit_artifact(&text)?;
        Ok(JobReport {
            stats,
            artifact: Some(JobArtifact {
                path: self.store.artifact_path(),
                text,
            }),
        })
    }

    fn task_ms(&self) -> u64 {
        self.store
            .records()
            .values()
            .map(|record| record.elapsed_ms)
            .sum()
    }
}
