//! Whole-network area and power estimation.

use crate::params::TechParams;
use crate::switch::{estimate_switch, SwitchEstimate, SwitchGeometry};
use noc_routing::RouteSet;
use noc_topology::{CommGraph, SwitchId, Topology};

/// Aggregate estimate for a routed NoC design.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkEstimate {
    /// Per-switch estimates, indexed by switch index.
    pub switches: Vec<SwitchEstimate>,
    /// Link (wire) dynamic power in mW.
    pub link_power_mw: f64,
    /// Total switch + link power in mW.
    pub total_power_mw: f64,
    /// Total switch area in µm².
    pub total_area_um2: f64,
}

impl NetworkEstimate {
    /// Power of one switch in mW.
    pub fn switch_power_mw(&self, switch: SwitchId) -> Option<f64> {
        self.switches
            .get(switch.index())
            .map(SwitchEstimate::total_power_mw)
    }
}

/// ORION-style network-level power and area model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkPowerModel {
    params: TechParams,
}

impl NetworkPowerModel {
    /// Creates a model with the given technology parameters.
    pub fn new(params: TechParams) -> Self {
        NetworkPowerModel { params }
    }

    /// The technology parameters of this model.
    pub fn params(&self) -> &TechParams {
        &self.params
    }

    /// Estimates area and power of `topology` carrying `routes` for the flow
    /// bandwidths of `comm`.
    ///
    /// Traffic load: a flow of bandwidth `B` MB/s at `flit_width` bits per
    /// flit and frequency `f` MHz injects `B·8 / (flit_width · f)` flits per
    /// cycle; that load is charged to every switch its route traverses (the
    /// switch driven by each channel's link) and to every link it crosses.
    pub fn estimate(
        &self,
        topology: &Topology,
        comm: &CommGraph,
        routes: &RouteSet,
    ) -> NetworkEstimate {
        let p = &self.params;
        let flits_per_cycle = |bandwidth_mb_s: f64| {
            (bandwidth_mb_s * 8.0) / (p.flit_width_bits as f64 * p.frequency_mhz)
        };

        // Aggregate per-switch load (flits/cycle) and total link traversals.
        let mut switch_load = vec![0.0f64; topology.switch_count()];
        let mut link_flits_per_cycle = 0.0f64;
        for (flow_id, flow) in comm.flows() {
            let Some(route) = routes.route(flow_id) else {
                continue;
            };
            let load = flits_per_cycle(flow.bandwidth);
            for link_id in route.links() {
                if let Some(link) = topology.link(link_id) {
                    // The switch that drives this link pays buffering,
                    // arbitration and crossbar energy for the flow.
                    switch_load[link.source.index()] += load;
                    link_flits_per_cycle += load;
                }
            }
            // The final switch ejects the flow to its local port.
            if let Some(last) = route.channels().last() {
                if let Some(link) = topology.link(last.link) {
                    switch_load[link.target.index()] += load;
                }
            }
        }

        let mut switches = Vec::with_capacity(topology.switch_count());
        let mut total_area = 0.0;
        let mut total_power = 0.0;
        for (switch_id, _) in topology.switches() {
            let geometry = SwitchGeometry {
                in_links: topology.links_to(switch_id).count(),
                out_links: topology.links_from(switch_id).count(),
                input_buffers: topology.switch_input_buffers(switch_id),
            };
            let estimate = estimate_switch(geometry, switch_load[switch_id.index()], p);
            total_area += estimate.total_area_um2();
            total_power += estimate.total_power_mw();
            switches.push(estimate);
        }

        let link_power_mw = link_flits_per_cycle
            * p.frequency_mhz
            * 1.0e6
            * p.flit_width_bits as f64
            * p.link_energy_pj_per_bit
            * 1.0e-9;
        total_power += link_power_mw;

        NetworkEstimate {
            switches,
            link_power_mw,
            total_power_mw: total_power,
            total_area_um2: total_area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::shortest::route_all_shortest;
    use noc_topology::{generators, CommGraph, CoreMap};

    fn ring_design(extra_vcs_on_link0: usize) -> (Topology, CommGraph, RouteSet) {
        let generated = generators::unidirectional_ring(4, 1000.0);
        let mut topo = generated.topology;
        for _ in 0..extra_vcs_on_link0 {
            topo.add_vc(noc_topology::LinkId::from_index(0)).unwrap();
        }
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..4 {
            comm.add_flow(cores[i], cores[(i + 2) % 4], 100.0);
        }
        let mut map = CoreMap::new(4);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let routes = route_all_shortest(&topo, &comm, &map).unwrap();
        (topo, comm, routes)
    }

    #[test]
    fn estimate_is_positive_and_consistent() {
        let (topo, comm, routes) = ring_design(0);
        let model = NetworkPowerModel::new(TechParams::default());
        let e = model.estimate(&topo, &comm, &routes);
        assert_eq!(e.switches.len(), 4);
        assert!(e.total_power_mw > 0.0);
        assert!(e.total_area_um2 > 0.0);
        assert!(e.link_power_mw > 0.0);
        let switch_sum: f64 = e.switches.iter().map(|s| s.total_power_mw()).sum();
        assert!((switch_sum + e.link_power_mw - e.total_power_mw).abs() < 1e-9);
        assert!(
            e.switch_power_mw(noc_topology::SwitchId::from_index(0))
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn extra_vcs_increase_area_and_power() {
        let model = NetworkPowerModel::new(TechParams::default());
        let (t0, c0, r0) = ring_design(0);
        let (t4, c4, r4) = ring_design(4);
        let base = model.estimate(&t0, &c0, &r0);
        let padded = model.estimate(&t4, &c4, &r4);
        assert!(padded.total_area_um2 > base.total_area_um2);
        assert!(padded.total_power_mw > base.total_power_mw);
    }

    #[test]
    fn more_traffic_means_more_dynamic_power() {
        let model = NetworkPowerModel::new(TechParams::default());
        let (topo, mut comm, routes) = ring_design(0);
        let low = model.estimate(&topo, &comm, &routes);
        // Double the traffic by adding the same flows again.
        let cores: Vec<_> = comm.cores().map(|(id, _)| id).collect();
        for i in 0..4 {
            comm.add_flow(cores[i], cores[(i + 2) % 4], 100.0);
        }
        // Routes for the new flows: reuse the routing pass.
        let mut map = CoreMap::new(4);
        let generated = generators::unidirectional_ring(4, 1000.0);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let routes2 = route_all_shortest(&topo, &comm, &map).unwrap();
        let high = model.estimate(&topo, &comm, &routes2);
        assert!(high.total_power_mw > low.total_power_mw);
        // Area unchanged: traffic does not change the hardware.
        assert!((high.total_area_um2 - low.total_area_um2).abs() < 1e-9);
    }

    #[test]
    fn flows_without_routes_are_ignored() {
        let (topo, comm, _) = ring_design(0);
        let empty = RouteSet::new(comm.flow_count());
        let model = NetworkPowerModel::new(TechParams::default());
        let e = model.estimate(&topo, &comm, &empty);
        assert_eq!(e.link_power_mw, 0.0);
        assert!(e.total_power_mw > 0.0, "leakage remains");
        assert!(e.switches.iter().all(|s| s.dynamic_power_mw == 0.0));
    }
}
