//! Fault-storm property suite for the cycle-safe live-reconfiguration
//! protocol: over seeded random designs and seeded fault plans,
//!
//! * (a) no epoch ever commits with a cyclic combined dependency /
//!   wait-for graph (`cyclic_commits == 0`, per-event
//!   `committed_cyclic == false`),
//! * (b) when the surviving fabric stays connected every packet is
//!   delivered, and flows the post-fault connectivity disconnects are
//!   exactly the typed `unreachable_flows` of the outcome, and
//! * (c) a simulator armed with [`FaultPlan::none`] is byte-identical to
//!   an unarmed run of the same workload.
//!
//! The crates.io `proptest` crate is unavailable in the offline build
//! environment, so the properties are checked over deterministic seeded
//! grids, mirroring the crate's other property suites.

use noc_deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_deadlock::vcmap::VcMap;
use noc_deadlock::verify::check_deadlock_free;
use noc_rng::SmallRng;
use noc_routing::shortest::route_all_shortest;
use noc_routing::RouteSet;
use noc_sim::{
    AssignedVc, FaultEvent, FaultKind, FaultPlan, StormConfig, TrafficConfig, VcSimConfig,
    VcSimulator,
};
use noc_topology::{generators, CommGraph, CoreMap, FaultSet, FlowId, Topology};
use std::collections::HashSet;

/// A repaired (deadlock-free) design over `gen` with one core per switch
/// and `flows` seeded random communication pairs.
fn seeded_design(
    gen: generators::Generated,
    flows: usize,
    seed: u64,
) -> (Topology, CommGraph, CoreMap, RouteSet) {
    let n = gen.switches.len();
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut picked: HashSet<(usize, usize)> = HashSet::new();
    while picked.len() < flows {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        if src != dst && picked.insert((src, dst)) {
            comm.add_flow(cores[src], cores[dst], 100.0);
        }
    }
    let mut map = CoreMap::new(n);
    for (i, &c) in cores.iter().enumerate() {
        map.assign(c, gen.switches[i]).unwrap();
    }
    let mut topo = gen.topology;
    let mut routes = route_all_shortest(&topo, &comm, &map).unwrap();
    remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
    assert!(
        check_deadlock_free(&topo, &routes).is_ok(),
        "repaired design must be deadlock-free before faults"
    );
    (topo, comm, map, routes)
}

/// Replays `plan` into a [`FaultSet`] with the simulator's cable-fault
/// (pair) semantics and returns the flows each cumulative prefix leaves
/// disconnected, as (union over prefixes, final state).
fn replayed_disconnections(
    topo: &Topology,
    comm: &CommGraph,
    map: &CoreMap,
    plan: &FaultPlan,
) -> (Vec<FlowId>, Vec<FlowId>) {
    let mut down = FaultSet::new(topo);
    let mut transient: HashSet<FlowId> = HashSet::new();
    let mut fin = Vec::new();
    for event in plan.events() {
        match event.kind {
            FaultKind::LinkDown(link) => down.fail_link_pair(topo, link),
            FaultKind::LinkUp(link) => down.repair_link_pair(topo, link),
            FaultKind::SwitchDown(switch) => down.fail_switch(switch),
            FaultKind::SwitchUp(switch) => down.repair_switch(switch),
        }
        fin = topo.connectivity_after(&down).disconnected_flows(comm, map);
        transient.extend(fin.iter().copied());
    }
    let mut union: Vec<FlowId> = transient.into_iter().collect();
    union.sort();
    (union, fin)
}

fn storm_traffic(seed: u64) -> TrafficConfig {
    TrafficConfig {
        packets_per_flow: 60,
        packet_length: 4,
        mean_gap_cycles: 10,
        seed,
        ..TrafficConfig::default()
    }
}

/// (a) + (b) over seeded storms on repaired meshes, tori, and rings:
/// every epoch commits acyclic, and with the fabric connected through the
/// whole storm the full workload is delivered.
#[test]
fn storms_on_connected_fabrics_commit_acyclic_and_deliver_everything() {
    let cases: Vec<(&str, generators::Generated, usize, u64, StormConfig)> = vec![
        (
            "mesh3x3",
            generators::mesh2d(3, 3, 1.0),
            10,
            21,
            StormConfig {
                faults: 3,
                first_cycle: 80,
                spacing: 150,
                seed: 0xA1,
                repair_after: None,
                avoid_partition: true,
            },
        ),
        (
            "mesh4x3-repaired-links",
            generators::mesh2d(4, 3, 1.0),
            12,
            22,
            StormConfig {
                faults: 3,
                first_cycle: 80,
                spacing: 150,
                seed: 0xB7,
                repair_after: Some(123),
                avoid_partition: true,
            },
        ),
        (
            "torus3x3",
            generators::torus2d(3, 3, 1.0),
            10,
            23,
            StormConfig {
                faults: 4,
                first_cycle: 60,
                spacing: 110,
                seed: 0xC9,
                repair_after: None,
                avoid_partition: true,
            },
        ),
        (
            "ring6-single-fault",
            generators::bidirectional_ring(6, 1.0),
            8,
            24,
            StormConfig {
                faults: 1,
                first_cycle: 90,
                spacing: 100,
                seed: 0xD3,
                repair_after: None,
                avoid_partition: true,
            },
        ),
    ];
    for (name, gen, flows, design_seed, storm) in cases {
        let (topo, comm, map, routes) = seeded_design(gen, flows, design_seed);
        let plan = FaultPlan::storm(&topo, &storm);
        assert!(!plan.is_empty(), "{name}: the storm schedules faults");
        let (transient, fin) = replayed_disconnections(&topo, &comm, &map, &plan);
        assert!(
            transient.is_empty(),
            "{name}: avoid_partition keeps every flow connected"
        );
        let vc_map = VcMap::from_design(&topo, &routes);
        let outcome = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig::default(),
        )
        .with_faults(&topo, &map, plan)
        .run(&storm_traffic(design_seed));

        // (a) Every epoch committed an acyclic combined graph.
        assert!(!outcome.reconfig.events.is_empty(), "{name}");
        assert_eq!(
            outcome.reconfig.epochs_committed,
            outcome.reconfig.events.len(),
            "{name}"
        );
        for event in &outcome.reconfig.events {
            assert!(
                !event.committed_cyclic,
                "{name}: epoch at cycle {} committed cyclic",
                event.cycle
            );
        }
        assert_eq!(outcome.reconfig.cyclic_commits, 0, "{name}");

        // (b) Connected end to end → everything injected is delivered.
        assert_eq!(outcome.unreachable_flows, fin, "{name}");
        assert!(!outcome.deadlocked, "{name}");
        assert_eq!(outcome.stranded_packets, 0, "{name}");
        assert_eq!(outcome.unreachable_packets, 0, "{name}");
        assert_eq!(
            outcome.stats.delivered_packets, outcome.stats.injected_packets,
            "{name}"
        );
    }
}

/// (b) on a deliberately partitioning plan: isolating a mesh corner turns
/// exactly the connectivity-derived disconnected flows into the typed
/// `unreachable_flows` outcome — no deadlock, no stranded worms, and the
/// packet accounting identity holds.
#[test]
fn a_partitioning_plan_yields_the_typed_unreachable_outcome() {
    let gen = generators::mesh2d(3, 3, 1.0);
    let n = gen.switches.len();
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
    // All-to-root gather plus the reverse of the corner flow, so the
    // isolated corner switch hosts traffic in both directions.
    for i in 1..n {
        comm.add_flow(cores[i], cores[0], 100.0);
    }
    comm.add_flow(cores[0], cores[n - 1], 100.0);
    let mut map = CoreMap::new(n);
    for (i, &c) in cores.iter().enumerate() {
        map.assign(c, gen.switches[i]).unwrap();
    }
    let mut topo = gen.topology;
    let mut routes = route_all_shortest(&topo, &comm, &map).unwrap();
    remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
    let corner = gen.switches[n - 1];
    let east = topo.find_link(corner, gen.switches[n - 2]).unwrap();
    let north = topo.find_link(corner, gen.switches[n - 1 - 3]).unwrap();
    let plan = FaultPlan::new(vec![
        FaultEvent {
            cycle: 100,
            kind: FaultKind::LinkDown(east),
        },
        FaultEvent {
            cycle: 160,
            kind: FaultKind::LinkDown(north),
        },
    ]);
    let (_, fin) = replayed_disconnections(&topo, &comm, &map, &plan);
    assert!(
        fin.len() >= 2,
        "isolating the corner disconnects its flows in both directions"
    );
    let vc_map = VcMap::from_design(&topo, &routes);
    let outcome = VcSimulator::new(
        &comm,
        &routes,
        &vc_map,
        &AssignedVc,
        &VcSimConfig::default(),
    )
    .with_faults(&topo, &map, plan)
    .run(&storm_traffic(5));
    assert!(!outcome.deadlocked, "partition is typed, not a deadlock");
    assert_eq!(outcome.stranded_packets, 0);
    assert_eq!(outcome.unreachable_flows, fin);
    assert!(outcome.unreachable_packets >= 1);
    assert!(outcome.stats.delivered_packets >= 1);
    assert_eq!(
        outcome.stats.delivered_packets as usize + outcome.unreachable_packets,
        outcome.stats.injected_packets as usize
    );
    assert_eq!(outcome.reconfig.cyclic_commits, 0);
}

/// (c) Arming the simulator with an empty fault plan changes nothing: the
/// outcome — stats, latencies, drain log, everything — is byte-identical
/// to an unarmed run, across designs and seeds.
#[test]
fn an_empty_fault_plan_is_byte_identical_to_an_unarmed_run() {
    let cases: Vec<(&str, generators::Generated, usize, u64)> = vec![
        ("mesh3x3", generators::mesh2d(3, 3, 1.0), 10, 31),
        ("torus3x3", generators::torus2d(3, 3, 1.0), 12, 32),
        ("ring8", generators::bidirectional_ring(8, 1.0), 8, 33),
    ];
    for (name, gen, flows, seed) in cases {
        let (topo, comm, map, routes) = seeded_design(gen, flows, seed);
        let vc_map = VcMap::from_design(&topo, &routes);
        let config = VcSimConfig::default();
        let traffic = storm_traffic(seed);
        let plain = VcSimulator::new(&comm, &routes, &vc_map, &AssignedVc, &config).run(&traffic);
        let armed = VcSimulator::new(&comm, &routes, &vc_map, &AssignedVc, &config)
            .with_faults(&topo, &map, FaultPlan::none())
            .run(&traffic);
        assert_eq!(plain, armed, "{name}");
        assert_eq!(
            armed.reconfig,
            noc_deadlock::report::ReconfigStats::default(),
            "{name}"
        );
    }
}
