//! Dynamic validation (beyond the paper's analytical argument): simulate
//! each benchmark design before and after deadlock removal under a
//! high-pressure wormhole workload and report whether deadlocks occur.

use noc_bench::simulate_before_after;
use noc_topology::benchmarks::Benchmark;

fn main() {
    println!("# Wormhole simulation: deadlock behaviour before/after removal (10-switch designs)");
    println!(
        "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16}",
        "benchmark",
        "cdg_cyclic",
        "original_deadlock",
        "fixed_deadlock",
        "fixed_delivered",
        "fixed_latency"
    );
    for benchmark in Benchmark::ALL {
        let v = simulate_before_after(benchmark, 10);
        println!(
            "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16.1}",
            v.benchmark,
            v.original_cdg_cyclic,
            v.original_deadlocked,
            v.fixed_deadlocked,
            v.fixed_delivered,
            v.fixed_mean_latency
        );
    }
}
