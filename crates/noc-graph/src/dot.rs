//! Graphviz (DOT) export for debugging topologies and CDGs.

use crate::digraph::{DiGraph, EdgeId, NodeId};
use std::fmt::Display;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax using `Display` on the payloads
/// for labels.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, dot};
///
/// let mut g: DiGraph<&str, u32> = DiGraph::new();
/// let a = g.add_node("SW1");
/// let b = g.add_node("SW2");
/// g.add_edge(a, b, 7);
/// let text = dot::to_dot(&g, "topology");
/// assert!(text.contains("digraph topology"));
/// assert!(text.contains("SW1"));
/// ```
pub fn to_dot<N: Display, E: Display>(graph: &DiGraph<N, E>, name: &str) -> String {
    to_dot_with(graph, name, |_, w| w.to_string(), |_, w| w.to_string())
}

/// Renders the graph in DOT syntax with caller-provided label functions.
pub fn to_dot_with<N, E>(
    graph: &DiGraph<N, E>,
    name: &str,
    mut node_label: impl FnMut(NodeId, &N) -> String,
    mut edge_label: impl FnMut(EdgeId, &E) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    for (id, weight) in graph.nodes() {
        let label = escape(&node_label(id, weight));
        let _ = writeln!(out, "    {} [label=\"{}\"];", id.index(), label);
    }
    for edge in graph.edges() {
        let label = escape(&edge_label(edge.id, edge.weight));
        let _ = writeln!(
            out,
            "    {} -> {} [label=\"{}\"];",
            edge.source.index(),
            edge.target.index(),
            label
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g: DiGraph<&str, u32> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, 42);
        let text = to_dot(&g, "g");
        assert!(text.starts_with("digraph g {"));
        assert!(text.contains("0 [label=\"a\"]"));
        assert!(text.contains("1 [label=\"b\"]"));
        assert!(text.contains("0 -> 1 [label=\"42\"]"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn removed_edges_are_not_exported() {
        let mut g: DiGraph<&str, u32> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, 1);
        g.remove_edge(e);
        let text = to_dot(&g, "g");
        assert!(!text.contains("->"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g: DiGraph<String, u32> = DiGraph::new();
        g.add_node("say \"hi\"".to_string());
        let text = to_dot(&g, "g");
        assert!(text.contains("say \\\"hi\\\""));
    }
}
