//! The topology graph `TG(S, L)`: switches, directed physical links and the
//! virtual channels carried by each link.

use crate::error::TopologyError;
use crate::ids::{Channel, LinkId, SwitchId};
use noc_graph::{DiGraph, NodeId};

/// A switch (router) of the NoC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Switch {
    /// Human-readable name, e.g. `"SW3"` or `"sw_media_0"`.
    pub name: String,
}

/// A directed physical link between two switches.
///
/// Every link starts with a single virtual channel (VC 0).  The
/// deadlock-removal algorithm and the resource-ordering baseline add VCs by
/// calling [`Topology::add_vc`]; the number of *extra* VCs
/// ([`Topology::extra_vc_count`]) is the headline cost metric of the paper
/// (Figures 8 and 9).
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Switch the link leaves from.
    pub source: SwitchId,
    /// Switch the link arrives at.
    pub target: SwitchId,
    /// Number of virtual channels multiplexed on the link (≥ 1).
    pub vcs: usize,
    /// Usable bandwidth of the link in abstract MB/s units; only relative
    /// magnitudes matter (used by synthesis and the power model).
    pub bandwidth: f64,
}

/// The topology graph `TG(S, L)` of Definition 1.
///
/// # Example
///
/// ```
/// use noc_topology::Topology;
///
/// let mut topo = Topology::new();
/// let a = topo.add_switch("a");
/// let b = topo.add_switch("b");
/// let l = topo.add_link(a, b, 1.0);
/// assert_eq!(topo.link(l).unwrap().vcs, 1);
/// let extra = topo.add_vc(l).unwrap();
/// assert_eq!(extra.vc, 1);
/// assert_eq!(topo.extra_vc_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Topology {
    switches: Vec<Switch>,
    links: Vec<Link>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a switch and returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>) -> SwitchId {
        let id = SwitchId::from_index(self.switches.len());
        self.switches.push(Switch { name: name.into() });
        id
    }

    /// Adds a directed physical link with a single VC and the given bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint switch does not exist.
    pub fn add_link(&mut self, source: SwitchId, target: SwitchId, bandwidth: f64) -> LinkId {
        assert!(
            source.index() < self.switches.len(),
            "source switch out of bounds"
        );
        assert!(
            target.index() < self.switches.len(),
            "target switch out of bounds"
        );
        let id = LinkId::from_index(self.links.len());
        self.links.push(Link {
            source,
            target,
            vcs: 1,
            bandwidth,
        });
        id
    }

    /// Adds a pair of opposite links between `a` and `b` and returns them as
    /// `(a_to_b, b_to_a)`.
    pub fn add_bidirectional_link(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        bandwidth: f64,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, bandwidth);
        let ba = self.add_link(b, a, bandwidth);
        (ab, ba)
    }

    /// Adds one virtual channel to `link` and returns the new [`Channel`].
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownLink`] if the link does not exist.
    pub fn add_vc(&mut self, link: LinkId) -> Result<Channel, TopologyError> {
        let data = self
            .links
            .get_mut(link.index())
            .ok_or(TopologyError::UnknownLink(link))?;
        let vc = data.vcs;
        data.vcs += 1;
        Ok(Channel::new(link, vc))
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of directed physical links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Total number of channels (sum of VCs over all links).
    pub fn channel_count(&self) -> usize {
        self.links.iter().map(|l| l.vcs).sum()
    }

    /// Number of *extra* VCs beyond the first on every link.  This is the
    /// quantity plotted on the y-axis of Figures 8 and 9 of the paper.
    pub fn extra_vc_count(&self) -> usize {
        self.links.iter().map(|l| l.vcs - 1).sum()
    }

    /// Returns the switch payload, if the id is valid.
    pub fn switch(&self, id: SwitchId) -> Option<&Switch> {
        self.switches.get(id.index())
    }

    /// Returns the link payload, if the id is valid.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.index())
    }

    /// Iterates over `(SwitchId, &Switch)`.
    pub fn switches(&self) -> impl Iterator<Item = (SwitchId, &Switch)> + '_ {
        self.switches
            .iter()
            .enumerate()
            .map(|(i, s)| (SwitchId::from_index(i), s))
    }

    /// Iterates over `(LinkId, &Link)`.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId::from_index(i), l))
    }

    /// Iterates over every channel of the topology in `(link, vc)` order.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        self.links()
            .flat_map(|(id, link)| (0..link.vcs).map(move |vc| Channel::new(id, vc)))
    }

    /// Iterates over the links leaving `switch`.
    pub fn links_from(&self, switch: SwitchId) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links().filter(move |(_, l)| l.source == switch)
    }

    /// Iterates over the links arriving at `switch`.
    pub fn links_to(&self, switch: SwitchId) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links().filter(move |(_, l)| l.target == switch)
    }

    /// Returns the first link `source -> target`, if one exists.
    pub fn find_link(&self, source: SwitchId, target: SwitchId) -> Option<LinkId> {
        self.links()
            .find(|(_, l)| l.source == source && l.target == target)
            .map(|(id, _)| id)
    }

    /// In-degree + out-degree of a switch in physical links, plus the extra
    /// VC channels.  This approximates the router port/buffer count used by
    /// the power and area models.
    pub fn switch_degree(&self, switch: SwitchId) -> usize {
        self.links_from(switch).count() + self.links_to(switch).count()
    }

    /// Number of input buffers the switch needs: one per VC of every
    /// incoming link.
    pub fn switch_input_buffers(&self, switch: SwitchId) -> usize {
        self.links_to(switch).map(|(_, l)| l.vcs).sum()
    }

    /// Builds the switch-level connectivity graph (one node per switch, one
    /// edge per physical link, edge payload = [`LinkId`]), used by routing
    /// and synthesis.
    pub fn to_switch_graph(&self) -> DiGraph<SwitchId, LinkId> {
        let mut g = DiGraph::with_capacity(self.switch_count(), self.link_count());
        for (id, _) in self.switches() {
            let node = g.add_node(id);
            debug_assert_eq!(node.index(), id.index());
        }
        for (id, link) in self.links() {
            g.add_edge(
                NodeId::from_index(link.source.index()),
                NodeId::from_index(link.target.index()),
                id,
            );
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring4() -> (Topology, Vec<SwitchId>, Vec<LinkId>) {
        let mut t = Topology::new();
        let sw: Vec<_> = (1..=4).map(|i| t.add_switch(format!("SW{i}"))).collect();
        let links: Vec<_> = (0..4)
            .map(|i| t.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        (t, sw, links)
    }

    #[test]
    fn counts_for_the_paper_ring() {
        let (t, _, _) = ring4();
        assert_eq!(t.switch_count(), 4);
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.channel_count(), 4);
        assert_eq!(t.extra_vc_count(), 0);
    }

    #[test]
    fn adding_a_vc_creates_the_paper_l1_prime_channel() {
        let (mut t, _, links) = ring4();
        let c = t.add_vc(links[0]).unwrap();
        assert_eq!(c, Channel::new(links[0], 1));
        assert_eq!(c.to_string(), "L0'1");
        assert_eq!(t.channel_count(), 5);
        assert_eq!(t.extra_vc_count(), 1);
        assert_eq!(t.link(links[0]).unwrap().vcs, 2);
    }

    #[test]
    fn add_vc_on_unknown_link_errors() {
        let (mut t, _, _) = ring4();
        let err = t.add_vc(LinkId::from_index(99)).unwrap_err();
        assert_eq!(err, TopologyError::UnknownLink(LinkId::from_index(99)));
    }

    #[test]
    fn link_lookup_and_iteration() {
        let (t, sw, links) = ring4();
        assert_eq!(t.find_link(sw[0], sw[1]), Some(links[0]));
        assert_eq!(t.find_link(sw[1], sw[0]), None);
        assert_eq!(t.links_from(sw[0]).count(), 1);
        assert_eq!(t.links_to(sw[0]).count(), 1);
        assert_eq!(t.switch_degree(sw[0]), 2);
        assert_eq!(t.channels().count(), 4);
        assert_eq!(t.switches().count(), 4);
    }

    #[test]
    fn bidirectional_links_create_both_directions() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let (ab, ba) = t.add_bidirectional_link(a, b, 2.0);
        assert_eq!(t.link(ab).unwrap().source, a);
        assert_eq!(t.link(ba).unwrap().source, b);
        assert_eq!(t.link_count(), 2);
    }

    #[test]
    fn switch_graph_mirrors_topology() {
        let (t, _, _) = ring4();
        let g = t.to_switch_graph();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        // The ring in the switch graph is a cycle.
        assert!(noc_graph::scc::has_cycle(&g));
    }

    #[test]
    fn input_buffers_count_vcs() {
        let (mut t, sw, links) = ring4();
        assert_eq!(t.switch_input_buffers(sw[1]), 1);
        t.add_vc(links[0]).unwrap(); // link 0 enters switch 1
        assert_eq!(t.switch_input_buffers(sw[1]), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_link_with_unknown_switch_panics() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        t.add_link(a, SwitchId::from_index(3), 1.0);
    }
}
