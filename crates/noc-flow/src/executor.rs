//! Sharded execution of [`FlowSweep`] grids on scoped worker threads.
//!
//! The paper's evaluation (Figures 8–10) is a grid of fully independent
//! (benchmark × switch-count) design points, so the sweep parallelizes
//! trivially: workers claim grid indices from a shared atomic counter,
//! compute their point, and send `(index, point)` back over a channel.  The
//! coordinating thread streams completions to an observer as they arrive and
//! slots each point into its grid position, so the returned vector is in
//! deterministic grid order no matter how the workers interleave.
//!
//! Built on `std::thread::scope` + `std::sync::mpsc` only — the offline
//! build environment has no external dependencies (no rayon/crossbeam).

use crate::error::FlowError;
use crate::router::Router;
use crate::strategy::DeadlockStrategy;
use crate::sweep::{FlowSweep, SweepPoint};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// A progress notification handed to the observer of
/// [`FlowSweep::run_streaming`] each time a worker finishes a grid point.
#[derive(Debug)]
pub struct SweepProgress<'a> {
    /// Position of the point in the deterministic grid order (the index it
    /// will occupy in the returned vector).
    pub index: usize,
    /// Number of points completed so far, this one included.  Completion
    /// order is not grid order: a sweep is done when `completed == total`,
    /// not when `index == total - 1`.
    pub completed: usize,
    /// Total number of feasible grid points in the sweep.
    pub total: usize,
    /// The point that just completed.
    pub point: &'a SweepPoint,
}

/// Runs the sweep grid across scoped worker threads and streams completions
/// through `observer`; returns the points in grid order.
///
/// The worker count is the sweep's
/// [`worker_threads`](FlowSweep::worker_threads) setting, auto-sized to the
/// machine's available parallelism when unset and never larger than the
/// grid.  When a point fails, remaining work is abandoned (claimed points
/// still finish) and the error of the failed point earliest in grid order
/// is returned.
pub(crate) fn run_sharded(
    sweep: &FlowSweep,
    router: Option<&dyn Router>,
    strategies: &[&dyn DeadlockStrategy],
    mut observer: impl FnMut(SweepProgress<'_>),
) -> Result<Vec<SweepPoint>, FlowError> {
    let grid = sweep.grid();
    let total = grid.len();
    let workers = worker_count(sweep.requested_threads(), total);

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, Result<SweepPoint, FlowError>)>();

    let mut slots: Vec<Option<SweepPoint>> = Vec::new();
    slots.resize_with(total, || None);
    // Errors are kept with their grid index: if several in-flight points
    // fail, the one earliest in grid order wins, matching what the serial
    // run would have reported.
    let mut first_error: Option<(usize, FlowError)> = None;
    let mut completed = 0usize;

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let abort = &abort;
            let grid = &grid;
            scope.spawn(move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(benchmark, switch_count)) = grid.get(index) else {
                    break;
                };
                let result = sweep.compute_point(benchmark, switch_count, router, strategies);
                if result.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                if tx.send((index, result)).is_err() {
                    break;
                }
            });
        }
        // The workers hold the only remaining senders: the loop below ends
        // once every worker has exited.
        drop(tx);

        for (index, result) in rx {
            match result {
                Ok(point) => {
                    completed += 1;
                    observer(SweepProgress {
                        index,
                        completed,
                        total,
                        point: &point,
                    });
                    slots[index] = Some(point);
                }
                Err(error) => {
                    if first_error.as_ref().is_none_or(|(i, _)| index < *i) {
                        first_error = Some((index, error));
                    }
                }
            }
        }
    });

    if let Some((_, error)) = first_error {
        return Err(error);
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every grid index was computed exactly once"))
        .collect())
}

/// Maps every item through `f` on a pool of scoped worker threads (atomic
/// index claiming, like the sweep executor) and returns the results in
/// input order.  `threads == 0` auto-sizes to the machine's available
/// parallelism; the pool never exceeds the item count.
///
/// This is the shared scatter/gather primitive behind the `--threads` knob
/// of harness entry points that are not `FlowSweep` grids (per-benchmark
/// simulation sharding, timed-design preparation, equivalence-test grids).
/// A panic in `f` propagates when the scope joins its workers.
///
/// # Example
///
/// ```
/// let squares = noc_flow::executor::parallel_map_ordered(&[1, 2, 3], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9]);
/// ```
pub fn parallel_map_ordered<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = worker_count(threads, items.len());
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(index) else {
                    break;
                };
                if tx.send((index, f(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            slots[index] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every item was mapped exactly once"))
        .collect()
}

/// Resolves the configured thread count: `0` auto-sizes to the machine's
/// available parallelism; the pool never exceeds the grid size and is at
/// least one thread.
fn worker_count(requested: usize, grid_len: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, grid_len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_auto_sizes_and_clamps() {
        assert_eq!(worker_count(4, 2), 2, "never more workers than points");
        assert_eq!(worker_count(4, 100), 4);
        assert_eq!(worker_count(1, 0), 1, "empty grids still get one worker");
        assert!(worker_count(0, 100) >= 1, "auto mode is at least one");
    }
}
