//! ORION-style analytical area and power models for NoC switches and links.
//!
//! The paper estimates switch power and area with ORION 2.0 (its ref. \[20\]).
//! ORION itself is a C++ tool that is not vendored here, so this crate
//! provides an analytical substitute with the same structure: per-component
//! (input buffers, crossbar, arbiter, output links) area and energy terms,
//! parameterised by port count, VC count, buffer depth, flit width,
//! frequency and traffic load.  Absolute numbers are calibrated to a
//! 65 nm-like operating point; the paper's Figure 10 only uses *normalised*
//! power, for which the dominant effect — extra VCs mean extra input
//! buffers, which mean extra area, leakage and buffering energy — is
//! captured faithfully.
//!
//! # Example
//!
//! ```
//! use noc_power::{NetworkPowerModel, TechParams};
//! use noc_topology::{Topology, CommGraph, CoreMap};
//! use noc_routing::shortest::route_all_shortest;
//!
//! let mut topo = Topology::new();
//! let a = topo.add_switch("a");
//! let b = topo.add_switch("b");
//! topo.add_bidirectional_link(a, b, 1000.0);
//! let mut comm = CommGraph::new();
//! let c0 = comm.add_core("c0");
//! let c1 = comm.add_core("c1");
//! comm.add_flow(c0, c1, 200.0);
//! let mut map = CoreMap::new(2);
//! map.assign(c0, a)?;
//! map.assign(c1, b)?;
//! let routes = route_all_shortest(&topo, &comm, &map)?;
//!
//! let model = NetworkPowerModel::new(TechParams::default());
//! let estimate = model.estimate(&topo, &comm, &routes);
//! assert!(estimate.total_power_mw > 0.0);
//! assert!(estimate.total_area_um2 > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod params;
pub mod switch;

pub use estimate::{NetworkEstimate, NetworkPowerModel};
pub use params::TechParams;
pub use switch::{SwitchEstimate, SwitchGeometry};
