//! A compact directed multigraph with stable node and edge identifiers.
//!
//! Nodes and edges carry arbitrary payloads.  Identifiers are small
//! newtype-wrapped indices ([`NodeId`], [`EdgeId`]) so that higher layers
//! (topology, CDG) can build dense side tables keyed by `index()`.

use std::fmt;

/// Identifier of a node inside a [`DiGraph`].
///
/// Node ids are dense indices assigned in insertion order and remain valid
/// for the lifetime of the graph (nodes are never removed; higher layers
/// mark nodes unused instead, which mirrors how channels are only ever
/// *added* by the deadlock-removal algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw dense index.
    ///
    /// Only meaningful for indices previously produced by the same graph.
    pub fn from_index(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge inside a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Creates an edge id from a raw dense index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(index)
    }

    /// Returns the dense index of this edge.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A borrowed view of one edge: its id, endpoints and payload.
#[derive(Debug, PartialEq, Eq)]
pub struct EdgeRef<'a, E> {
    /// Edge identifier.
    pub id: EdgeId,
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// Borrowed edge payload.
    pub weight: &'a E,
}

impl<'a, E> Clone for EdgeRef<'a, E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'a, E> Copy for EdgeRef<'a, E> {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct EdgeData<E> {
    source: NodeId,
    target: NodeId,
    weight: E,
    /// Removed edges stay in the arena but are skipped by all iterators.
    removed: bool,
}

/// A directed multigraph with payloads on nodes and edges.
///
/// Parallel edges and self-loops are allowed (a CDG never contains
/// self-loops because a route never uses the same channel twice in a row,
/// but the graph layer does not enforce domain rules).
///
/// # Example
///
/// ```
/// use noc_graph::DiGraph;
///
/// let mut g: DiGraph<&str, u32> = DiGraph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let e = g.add_edge(a, b, 7);
/// assert_eq!(g.edge_weight(e), Some(&7));
/// assert_eq!(g.out_degree(a), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeData<E>>,
    out_edges: Vec<Vec<EdgeId>>,
    in_edges: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// Creates an empty graph with pre-allocated capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(nodes),
            in_edges: Vec::with_capacity(nodes),
        }
    }

    /// Reserves capacity for at least `additional_nodes` more nodes and
    /// `additional_edges` more edges, so bulk builders (CDG construction,
    /// topology generators) can size the arenas up front and avoid
    /// reallocation during the hot build loop.
    pub fn reserve(&mut self, additional_nodes: usize, additional_edges: usize) {
        self.nodes.reserve(additional_nodes);
        self.out_edges.reserve(additional_nodes);
        self.in_edges.reserve(additional_nodes);
        self.edges.reserve(additional_edges);
    }

    /// Freezes the live edges into a cache-friendly CSR view; see
    /// [`CsrGraph`](crate::csr::CsrGraph) for the shared-id and
    /// iteration-order guarantees.
    pub fn freeze(&self) -> crate::csr::CsrGraph {
        crate::csr::CsrGraph::freeze(self)
    }

    /// Adds a node with the given payload and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(weight);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Adds a directed edge `source -> target` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not belong to this graph.
    pub fn add_edge(&mut self, source: NodeId, target: NodeId, weight: E) -> EdgeId {
        assert!(source.0 < self.nodes.len(), "source node out of bounds");
        assert!(target.0 < self.nodes.len(), "target node out of bounds");
        let id = EdgeId(self.edges.len());
        self.edges.push(EdgeData {
            source,
            target,
            weight,
            removed: false,
        });
        self.out_edges[source.0].push(id);
        self.in_edges[target.0].push(id);
        id
    }

    /// Marks an edge as removed.  Returns `true` if the edge existed and was
    /// live before the call.
    ///
    /// Removal is *logical*: the edge id stays allocated so other ids remain
    /// stable, but the edge no longer appears in any iteration, degree count
    /// or traversal.  This matches the paper's CDG surgery where breaking a
    /// cycle removes dependency edges while new channel vertices are added.
    pub fn remove_edge(&mut self, edge: EdgeId) -> bool {
        match self.edges.get_mut(edge.0) {
            Some(data) if !data.removed => {
                data.removed = true;
                true
            }
            _ => false,
        }
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (non-removed) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.removed).count()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns a reference to the payload of `node`, if it exists.
    pub fn node_weight(&self, node: NodeId) -> Option<&N> {
        self.nodes.get(node.0)
    }

    /// Returns a mutable reference to the payload of `node`, if it exists.
    pub fn node_weight_mut(&mut self, node: NodeId) -> Option<&mut N> {
        self.nodes.get_mut(node.0)
    }

    /// Returns a reference to the payload of `edge` if it exists and is live.
    pub fn edge_weight(&self, edge: EdgeId) -> Option<&E> {
        self.edges
            .get(edge.0)
            .filter(|e| !e.removed)
            .map(|e| &e.weight)
    }

    /// Returns a mutable reference to the payload of `edge` if it is live.
    pub fn edge_weight_mut(&mut self, edge: EdgeId) -> Option<&mut E> {
        self.edges
            .get_mut(edge.0)
            .filter(|e| !e.removed)
            .map(|e| &mut e.weight)
    }

    /// Returns the `(source, target)` endpoints of a live edge.
    pub fn edge_endpoints(&self, edge: EdgeId) -> Option<(NodeId, NodeId)> {
        self.edges
            .get(edge.0)
            .filter(|e| !e.removed)
            .map(|e| (e.source, e.target))
    }

    /// Returns `true` if `node` is a valid id for this graph.
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.0 < self.nodes.len()
    }

    /// Returns the first live edge `source -> target`, if any.
    pub fn find_edge(&self, source: NodeId, target: NodeId) -> Option<EdgeId> {
        self.out_edges.get(source.0)?.iter().copied().find(|&e| {
            let d = &self.edges[e.0];
            !d.removed && d.target == target
        })
    }

    /// Returns `true` if there is at least one live edge `source -> target`.
    pub fn has_edge(&self, source: NodeId, target: NodeId) -> bool {
        self.find_edge(source, target).is_some()
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over `(NodeId, &N)` pairs in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes.iter().enumerate().map(|(i, w)| (NodeId(i), w))
    }

    /// Iterates over all live edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.removed)
            .map(|(i, e)| EdgeRef {
                id: EdgeId(i),
                source: e.source,
                target: e.target,
                weight: &e.weight,
            })
    }

    /// Iterates over the live outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.out_edges
            .get(node.0)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter(|e| !self.edges[e.0].removed)
            .map(move |&id| {
                let e = &self.edges[id.0];
                EdgeRef {
                    id,
                    source: e.source,
                    target: e.target,
                    weight: &e.weight,
                }
            })
    }

    /// Iterates over the live incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> + '_ {
        self.in_edges
            .get(node.0)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter(|e| !self.edges[e.0].removed)
            .map(move |&id| {
                let e = &self.edges[id.0];
                EdgeRef {
                    id,
                    source: e.source,
                    target: e.target,
                    weight: &e.weight,
                }
            })
    }

    /// Iterates over the successor nodes of `node` (one entry per live edge,
    /// so parallel edges yield duplicates).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).map(|e| e.target)
    }

    /// Iterates over the predecessor nodes of `node`.
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).map(|e| e.source)
    }

    /// Number of live outgoing edges of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges(node).count()
    }

    /// Number of live incoming edges of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges(node).count()
    }

    /// Maps node and edge payloads into a new graph with the same shape.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, w)| node_map(NodeId(i), w))
            .collect();
        let edges = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| EdgeData {
                source: e.source,
                target: e.target,
                weight: edge_map(EdgeId(i), &e.weight),
                removed: e.removed,
            })
            .collect();
        DiGraph {
            nodes,
            edges,
            out_edges: self.out_edges.clone(),
            in_edges: self.in_edges.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DiGraph<&'static str, u32>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let nodes = vec![g.add_node("a"), g.add_node("b"), g.add_node("c")];
        g.add_edge(nodes[0], nodes[1], 1);
        g.add_edge(nodes[1], nodes[2], 2);
        g.add_edge(nodes[2], nodes[0], 3);
        (g, nodes)
    }

    #[test]
    fn add_and_count() {
        let (g, _) = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn empty_graph_defaults() {
        let g: DiGraph<(), ()> = DiGraph::default();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn node_and_edge_weights() {
        let (mut g, n) = sample();
        assert_eq!(g.node_weight(n[1]), Some(&"b"));
        *g.node_weight_mut(n[1]).unwrap() = "B";
        assert_eq!(g.node_weight(n[1]), Some(&"B"));

        let e = g.find_edge(n[0], n[1]).unwrap();
        assert_eq!(g.edge_weight(e), Some(&1));
        *g.edge_weight_mut(e).unwrap() = 10;
        assert_eq!(g.edge_weight(e), Some(&10));
    }

    #[test]
    fn endpoints_and_degrees() {
        let (g, n) = sample();
        let e = g.find_edge(n[2], n[0]).unwrap();
        assert_eq!(g.edge_endpoints(e), Some((n[2], n[0])));
        assert_eq!(g.out_degree(n[0]), 1);
        assert_eq!(g.in_degree(n[0]), 1);
        assert_eq!(g.successors(n[0]).collect::<Vec<_>>(), vec![n[1]]);
        assert_eq!(g.predecessors(n[0]).collect::<Vec<_>>(), vec![n[2]]);
    }

    #[test]
    fn remove_edge_is_logical() {
        let (mut g, n) = sample();
        let e = g.find_edge(n[0], n[1]).unwrap();
        assert!(g.remove_edge(e));
        assert!(!g.remove_edge(e), "double removal reports false");
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(e), None);
        assert_eq!(g.edge_endpoints(e), None);
        assert!(!g.has_edge(n[0], n[1]));
        assert_eq!(g.out_degree(n[0]), 0);
        // Other edges unaffected.
        assert!(g.has_edge(n[1], n[2]));
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.successors(a).count(), 2);
    }

    #[test]
    fn find_edge_skips_removed_parallel_edge() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(a, b, 2);
        g.remove_edge(e1);
        assert_eq!(g.find_edge(a, b), Some(e2));
    }

    #[test]
    fn map_preserves_shape() {
        let (g, n) = sample();
        let mapped = g.map(|id, s| format!("{id}:{s}"), |_, w| *w as u64 * 2);
        assert_eq!(mapped.node_count(), 3);
        assert_eq!(mapped.edge_count(), 3);
        let e = mapped.find_edge(n[0], n[1]).unwrap();
        assert_eq!(mapped.edge_weight(e), Some(&2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_with_foreign_node_panics() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::from_index(5), ());
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::from_index(3).to_string(), "n3");
        assert_eq!(EdgeId::from_index(4).to_string(), "e4");
    }
}
