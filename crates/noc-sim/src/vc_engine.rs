//! The VC-fidelity wormhole simulation engine.
//!
//! The original [`engine`](crate::engine) walks routes channel-by-channel
//! and is faithful enough to *reproduce* deadlocks, but it takes the VC of
//! every hop at face value and detects deadlock with an idle-timeout guess.
//! This engine closes the remaining fidelity gaps:
//!
//! * buffer space is one input buffer per **(physical link × VC)** sized
//!   from the strategy's [`VcMap`], with
//!   explicit credit-based flow control ([`crate::credit`]) instead of
//!   buffer peeking;
//! * which VC a head flit requests is a pluggable [`VcPolicy`]
//!   ([`crate::policy`]): honour the strategy's static assignment, use it
//!   adaptively Duato-style, or deliberately ignore it (the unsafe
//!   single-VC baseline that makes VC budgets measurable);
//! * deadlock is decided **exactly** from the flit wait-for graph
//!   ([`crate::detect`]) — the check runs every
//!   [`detect_period`](VcSimConfig::detect_period) cycles and on every
//!   cycle without movement, so a knot is established within one period of
//!   forming (even while unrelated traffic still moves) and never later
//!   than the idle timeout, which is kept only as a configurable fallback;
//! * optionally, detected deadlocks are *drained* DBR-style: the knotted
//!   packets are pulled back to their sources, their flows are permanently
//!   reconfigured onto a deadlock-free recovery routing function, and the
//!   run continues — the dynamic execution of the `RecoveryReconfig`
//!   strategy.

use crate::credit::CreditBook;
use crate::detect::{ChannelWait, InjectionWait, WaitForSnapshot, WaitTarget};
use crate::fault::{DepGraph, FaultKind, FaultPlan};
use crate::packet::{Flit, FlitKind, Packet, PacketId};
use crate::policy::{VcChoice, VcPolicy};
use crate::stats::SimStats;
use crate::traffic::{generate_workload, TrafficConfig, Workload};
use noc_deadlock::report::{ReconfigEvent, ReconfigStats};
use noc_deadlock::vcmap::VcMap;
use noc_routing::updown::{updown_route_avoiding, UpDownLabels};
use noc_routing::{Route, RouteSet};
use noc_topology::{
    Channel, CommGraph, Connectivity, CoreMap, FaultSet, FlowId, LinkId, SwitchId, Topology,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Parameters of a VC-fidelity simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcSimConfig {
    /// Depth of every per-(link × VC) input buffer, in flits.
    pub buffer_depth: usize,
    /// Cycles a returned credit takes to travel back upstream (0 = the
    /// credit is usable again the next cycle).
    pub credit_return_latency: u64,
    /// Hard cap on simulated cycles.
    pub max_cycles: u64,
    /// Run the exact wait-for-graph detector every `detect_period` cycles
    /// (it additionally runs on every cycle without any flit movement).
    /// 0 disables the exact detector entirely, leaving only the
    /// [`idle_timeout`](Self::idle_timeout) heuristic.
    pub detect_period: u64,
    /// Idle-timeout fallback: declare deadlock after this many consecutive
    /// cycles without movement while flits are in flight.  0 disables the
    /// heuristic entirely (the exact detector subsumes it).
    pub idle_timeout: u64,
    /// Snapshot the committed route table after every fault-reconfiguration
    /// epoch into [`VcSimOutcome::reconfig_routes`] (for external
    /// re-verification of each committed epoch).  Off by default — the
    /// snapshots are only meaningful with a [`FaultPlan`] armed.
    pub record_reconfig_routes: bool,
}

impl Default for VcSimConfig {
    fn default() -> Self {
        VcSimConfig {
            buffer_depth: 2,
            credit_return_latency: 0,
            max_cycles: 2_000_000,
            detect_period: 64,
            idle_timeout: 1_024,
            record_reconfig_routes: false,
        }
    }
}

/// How a deadlock was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionKind {
    /// The exact flit wait-for-graph detector found a knot.
    WaitForGraph,
    /// The idle-timeout fallback tripped.
    IdleTimeout,
}

impl DetectionKind {
    /// Stable kebab-case name for artifacts.
    pub const fn name(self) -> &'static str {
        match self {
            DetectionKind::WaitForGraph => "wait-for-graph",
            DetectionKind::IdleTimeout => "idle-timeout",
        }
    }
}

/// The first deadlock detection of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockEvent {
    /// Cycle at which the deadlock was established.
    pub cycle: u64,
    /// Detector that established it.
    pub kind: DetectionKind,
    /// Packets in the deadlocked set (0 for the timeout heuristic, which
    /// cannot attribute the deadlock).
    pub packets: usize,
}

/// Aggregate statistics of the DBR-style dynamic drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainStats {
    /// Deadlock-drain events executed.
    pub events: usize,
    /// Packets pulled back to their source across all events (a packet
    /// drained twice counts twice).
    pub packets_drained: usize,
    /// Flows permanently switched onto the recovery routing function.
    pub flows_reconfigured: usize,
}

/// Result of a VC-fidelity simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct VcSimOutcome {
    /// Latency / throughput statistics.
    pub stats: SimStats,
    /// `true` if the run ended in an unrecovered deadlock.
    pub deadlocked: bool,
    /// Packets still undelivered when the run ended.
    pub stranded_packets: usize,
    /// The first deadlock detection, if any (also set when every deadlock
    /// was drained successfully).
    pub detection: Option<DeadlockEvent>,
    /// Dynamic-drain statistics (all zero when no recovery routes are
    /// configured or no deadlock formed).
    pub drain: DrainStats,
    /// Name of the [`VcPolicy`] the run used.
    pub policy: String,
    /// The flows of the deadlocked packets at the *first* wait-for-graph
    /// detection (sorted, deduplicated; empty for idle-timeout detections
    /// and deadlock-free runs).  Lets a static trap witness be compared
    /// against the traffic the exact detector actually condemned.
    pub deadlock_flows: Vec<FlowId>,
    /// The `(link, vc)` channels the deadlocked packets had claimed at the
    /// first wait-for-graph detection — the runtime counterpart of the
    /// witness footprints (sorted, deduplicated).
    pub deadlock_channels: Vec<(LinkId, usize)>,
    /// Fault-reconfiguration statistics (all zero/empty when no
    /// [`FaultPlan`] is armed or no event fired).
    pub reconfig: ReconfigStats,
    /// Flows stranded by a topology partition when the run ended (sorted) —
    /// the typed `Unreachable` outcome, distinct from a deadlock or an
    /// idle-timeout.
    pub unreachable_flows: Vec<FlowId>,
    /// Packets dropped because their flow was unreachable: purged from the
    /// network when the partition struck, or refused at injection time
    /// afterwards.  `delivered + stranded + unreachable` accounts for every
    /// injected packet.
    pub unreachable_packets: usize,
    /// Committed route table after each reconfiguration epoch, recorded only
    /// when [`VcSimConfig::record_reconfig_routes`] is set (unreachable
    /// flows carry an empty route).
    pub reconfig_routes: Vec<RouteSet>,
}

/// Per-packet bookkeeping.
#[derive(Debug, Clone)]
struct PacketState {
    packet: Packet,
    /// Physical links of the packet's (current) route.
    links: Vec<LinkId>,
    /// The VC the strategy assigned at each hop.
    assigned: Vec<usize>,
    /// Dense channel index the head flit actually claimed at each hop so
    /// far (`taken.len() - 1` is the head's frontier hop).
    taken: Vec<usize>,
    /// Flits not yet injected, front first.
    to_inject: VecDeque<Flit>,
    /// Number of flits already ejected at the destination.
    ejected: usize,
}

/// A buffered flit: the flit plus the hop of its packet's route it sits at.
#[derive(Debug, Clone, Copy)]
struct BufFlit {
    flit: Flit,
    hop: usize,
}

/// One decided flit movement, applied in the second phase of a cycle.
#[derive(Debug, Clone, Copy)]
enum Move {
    /// Inject the next flit of a packet into channel `to`; `claim` marks a
    /// head flit acquiring the channel.
    Inject {
        packet: PacketId,
        to: usize,
        claim: bool,
    },
    /// Advance the head-of-line flit of channel `from` into channel `to`.
    Advance { from: usize, to: usize, claim: bool },
    /// Eject the head-of-line flit of channel `from` at the destination.
    Eject { from: usize },
}

/// Runtime state of the fault seam, armed via
/// [`VcSimulator::with_faults`].
struct FaultContext<'a> {
    topology: &'a Topology,
    map: &'a CoreMap,
    plan: FaultPlan,
    /// Next plan event to apply.
    cursor: usize,
    /// Cumulative failed links and switches.
    down: FaultSet,
    /// Committed live route per reconfigured flow — overrides both the
    /// static routes and the DBR recovery function.
    live_routes: HashMap<FlowId, Vec<(LinkId, usize)>>,
    /// Flows currently stranded by a partition (gated at injection).
    unreachable: BTreeSet<FlowId>,
    stats: ReconfigStats,
    unreachable_packets: usize,
    route_log: Vec<RouteSet>,
}

/// The VC-fidelity wormhole simulator.  Borrows the design it simulates.
pub struct VcSimulator<'a> {
    comm: &'a CommGraph,
    routes: &'a RouteSet,
    vc_map: &'a VcMap,
    policy: &'a dyn VcPolicy,
    config: VcSimConfig,
    /// Recovery routing function for the dynamic drain (`None` = detected
    /// deadlocks end the run).
    recovery: Option<RouteSet>,
    /// Dense channel indexing: `offsets[link] + vc`.
    offsets: Vec<usize>,
    channel_count: usize,
    /// Input buffer of each channel (at the link's downstream switch).
    buffers: Vec<VecDeque<BufFlit>>,
    /// Which packet currently owns each channel (wormhole VC allocation).
    owner: Vec<Option<PacketId>>,
    credits: CreditBook,
    packets: HashMap<PacketId, PacketState>,
    /// Flows permanently switched onto the recovery routing function.
    reconfigured: HashSet<FlowId>,
    /// Fault-injection seam (`None` = fault-free run, byte-identical to a
    /// simulator built without [`with_faults`](Self::with_faults)).
    faults: Option<FaultContext<'a>>,
}

impl<'a> std::fmt::Debug for VcSimulator<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcSimulator")
            .field("policy", &self.policy.name())
            .field("channels", &self.channel_count)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<'a> VcSimulator<'a> {
    /// Creates a simulator for the given design.  `vc_map` defines the
    /// buffer space (one buffer per link × VC) and the per-hop VC
    /// assignments the [`VcPolicy`] interprets.
    ///
    /// # Panics
    ///
    /// Panics if a route references a link or VC outside the `vc_map` —
    /// build the map with
    /// [`VcMap::from_design`](noc_deadlock::vcmap::VcMap::from_design) on
    /// the same design the routes belong to.
    pub fn new(
        comm: &'a CommGraph,
        routes: &'a RouteSet,
        vc_map: &'a VcMap,
        policy: &'a dyn VcPolicy,
        config: &VcSimConfig,
    ) -> Self {
        validate_routes(routes, vc_map, "route");
        let mut offsets = Vec::with_capacity(vc_map.link_count());
        let mut channel_count = 0usize;
        for link in 0..vc_map.link_count() {
            offsets.push(channel_count);
            channel_count += vc_map.link_vcs(LinkId::from_index(link));
        }
        VcSimulator {
            comm,
            routes,
            vc_map,
            policy,
            config: config.clone(),
            recovery: None,
            offsets,
            channel_count,
            buffers: vec![VecDeque::new(); channel_count],
            owner: vec![None; channel_count],
            credits: CreditBook::new(
                channel_count,
                config.buffer_depth,
                config.credit_return_latency,
            ),
            packets: HashMap::new(),
            reconfigured: HashSet::new(),
            faults: None,
        }
    }

    /// Enables the DBR-style dynamic drain: when the exact detector finds a
    /// deadlock, the knotted packets are pulled back to their sources and
    /// their flows permanently reconfigured onto `recovery_routes` (a
    /// deadlock-free routing function, e.g. up*/down* routes).
    ///
    /// # Panics
    ///
    /// Panics if a recovery route references a link or VC outside the
    /// simulator's [`VcMap`].
    pub fn with_recovery(mut self, recovery_routes: RouteSet) -> Self {
        validate_routes(&recovery_routes, self.vc_map, "recovery route");
        self.recovery = Some(recovery_routes);
        self
    }

    /// Arms the fault seam: the events of `plan` are applied at their
    /// scheduled cycles, and on each event the simulator reroutes the
    /// affected flows onto the surviving up*/down* subgraph with an
    /// epoch-commit protocol that never commits while the combined
    /// (committed + in-flight residue) dependency graph is cyclic — a
    /// scoped drain pulls offending worms back to their sources instead.
    /// Flows stranded by a partition become a typed `Unreachable` outcome
    /// ([`VcSimOutcome::unreachable_flows`]) rather than an idle-timeout.
    ///
    /// `topology` and `map` must be the design the routes were built on.
    /// An empty plan ([`FaultPlan::none`]) leaves the run byte-identical to
    /// an unarmed simulator.
    pub fn with_faults(
        mut self,
        topology: &'a Topology,
        map: &'a CoreMap,
        plan: FaultPlan,
    ) -> Self {
        let down = FaultSet::new(topology);
        self.faults = Some(FaultContext {
            topology,
            map,
            plan,
            cursor: 0,
            down,
            live_routes: HashMap::new(),
            unreachable: BTreeSet::new(),
            stats: ReconfigStats::default(),
            unreachable_packets: 0,
            route_log: Vec::new(),
        });
        self
    }

    fn channel_index(&self, link: LinkId, vc: usize) -> usize {
        debug_assert!(vc < self.vc_map.link_vcs(link));
        self.offsets[link.index()] + vc
    }

    /// Generates a workload from the design's communication graph and runs
    /// it to completion, deadlock or the cycle cap.
    pub fn run(&mut self, traffic: &TrafficConfig) -> VcSimOutcome {
        let workload = generate_workload(self.comm, traffic);
        self.run_workload(&workload)
    }

    /// Runs an explicit workload.
    pub fn run_workload(&mut self, workload: &Workload) -> VcSimOutcome {
        let mut run_span = noc_telemetry::span("sim", "vc_run");
        run_span
            .arg("policy", self.policy.name())
            .arg("packets", workload.packets.len());
        self.reset();
        let mut stats = SimStats::default();
        let mut drain = DrainStats::default();
        let mut detection: Option<DeadlockEvent> = None;
        let mut deadlock_flows: Vec<FlowId> = Vec::new();
        let mut deadlock_channels: Vec<(LinkId, usize)> = Vec::new();
        let mut pending: VecDeque<Packet> = workload.packets.iter().cloned().collect();
        // BTreeMap so decide/detect iterate flows in id order without a
        // per-cycle sort.
        let mut flow_queues: BTreeMap<FlowId, VecDeque<PacketId>> = BTreeMap::new();
        let mut idle_cycles = 0u64;
        let mut deadlocked = false;
        // Packets admitted to the network but not yet fully ejected,
        // maintained incrementally so the per-cycle liveness check does not
        // scan the whole packet map.
        let mut in_flight_packets = 0usize;

        let mut cycle = 0u64;
        while cycle < self.config.max_cycles {
            // Scheduled fault events fire first: the epoch protocol
            // reconfigures routes before anything moves this cycle.
            if self.faults.is_some()
                && self.process_faults(cycle, &mut flow_queues, &mut in_flight_packets)
            {
                idle_cycles = 0;
            }
            self.credits.collect_returns(cycle);

            // Admit newly created packets into their flow queue.
            while pending.front().is_some_and(|p| p.created_at <= cycle) {
                let packet = pending.pop_front().expect("checked non-empty");
                stats.injected_packets += 1;
                if self
                    .faults
                    .as_ref()
                    .is_some_and(|ctx| ctx.unreachable.contains(&packet.flow))
                {
                    // Typed Unreachable: the flow is stranded by a
                    // partition; the packet is refused, not deadlocked.
                    let ctx = self.faults.as_mut().expect("checked armed");
                    ctx.unreachable_packets += 1;
                    continue;
                }
                let route = self.current_route(packet.flow);
                if route.is_empty() {
                    // Same-switch flow: delivered immediately.
                    stats.delivered_packets += 1;
                    stats.delivered_flits += packet.length;
                    stats.record_latency(cycle.saturating_sub(packet.created_at));
                    continue;
                }
                let state = PacketState {
                    to_inject: packet.flits().into(),
                    links: route.iter().map(|&(link, _)| link).collect(),
                    assigned: route.iter().map(|&(_, vc)| vc).collect(),
                    taken: Vec::new(),
                    ejected: 0,
                    packet: packet.clone(),
                };
                flow_queues
                    .entry(packet.flow)
                    .or_default()
                    .push_back(packet.id);
                self.packets.insert(packet.id, state);
                in_flight_packets += 1;
            }

            let moves = self.decide_moves(&flow_queues);
            let progressed = !moves.is_empty();
            let completed = self.apply_moves(&moves, cycle, &mut stats, &mut flow_queues);
            in_flight_packets -= completed;

            let in_flight = in_flight_packets > 0;
            if !in_flight && pending.is_empty() {
                cycle += 1;
                break;
            }
            if progressed || !in_flight {
                idle_cycles = 0;
            } else {
                idle_cycles += 1;
                noc_telemetry::counter("vc.stall_cycles", 1);
            }

            // Exact detection: periodically, and on every idle cycle.
            let exact_enabled = self.config.detect_period > 0;
            let periodic = exact_enabled && (cycle + 1).is_multiple_of(self.config.detect_period);
            if in_flight && exact_enabled && (periodic || !progressed) {
                noc_telemetry::counter("vc.detector_invocations", 1);
                let snapshot = self.wait_snapshot(&flow_queues);
                let dead = snapshot.deadlocked_packets();
                if !dead.is_empty() {
                    if std::env::var_os("NOC_SIM_DEBUG_DETECT").is_some() {
                        eprintln!("--- detection at cycle {cycle}: dead {dead:?}");
                        for &p in &dead {
                            let st = &self.packets[&p];
                            eprintln!(
                                "  {p}: flow {} links {:?} taken {:?} to_inject {} ejected {}",
                                st.packet.flow,
                                st.links,
                                st.taken,
                                st.to_inject.len(),
                                st.ejected
                            );
                        }
                        for (c, w) in snapshot.channels.iter().enumerate() {
                            if let Some(w) = w {
                                eprintln!(
                                    "  ch{c} owner {:?} buf {:?}: hol {} can_move {} waits {:?}",
                                    self.owner[c],
                                    self.buffers[c]
                                        .iter()
                                        .map(|b| (b.flit.packet, b.flit.sequence, b.hop))
                                        .collect::<Vec<_>>(),
                                    w.packet,
                                    w.can_move,
                                    w.waits
                                );
                            }
                        }
                        for i in &snapshot.injections {
                            eprintln!(
                                "  inj {}: can_move {} waits {:?}",
                                i.packet, i.can_move, i.waits
                            );
                        }
                    }
                    if detection.is_none() {
                        // Attribute the first detection: the condemned flows
                        // and the channels their worms had claimed, for
                        // comparison against static trap witnesses.
                        deadlock_flows =
                            dead.iter().map(|id| self.packets[id].packet.flow).collect();
                        deadlock_flows.sort();
                        deadlock_flows.dedup();
                        deadlock_channels = dead
                            .iter()
                            .flat_map(|id| {
                                let state = &self.packets[id];
                                state.taken.iter().zip(&state.links).map(|(&dense, &link)| {
                                    (link, dense - self.offsets[link.index()])
                                })
                            })
                            .collect();
                        deadlock_channels.sort_by_key(|&(link, vc)| (link.index(), vc));
                        deadlock_channels.dedup();
                    }
                    detection.get_or_insert(DeadlockEvent {
                        cycle,
                        kind: DetectionKind::WaitForGraph,
                        packets: dead.len(),
                    });
                    if self.recovery.is_some() {
                        self.drain_deadlocked(&dead, &mut flow_queues, &mut drain);
                        idle_cycles = 0;
                    } else {
                        deadlocked = true;
                        cycle += 1;
                        break;
                    }
                }
            }

            // Idle-timeout fallback (the exact detector normally fires long
            // before this trips).
            if self.config.idle_timeout > 0 && idle_cycles >= self.config.idle_timeout {
                detection.get_or_insert(DeadlockEvent {
                    cycle,
                    kind: DetectionKind::IdleTimeout,
                    packets: 0,
                });
                deadlocked = true;
                cycle += 1;
                break;
            }
            cycle += 1;
        }

        stats.cycles = cycle;
        noc_telemetry::counter("vc.injected_packets", stats.injected_packets as u64);
        noc_telemetry::counter("vc.delivered_packets", stats.delivered_packets as u64);
        noc_telemetry::counter("vc.cycles", stats.cycles);
        run_span
            .arg("cycles", stats.cycles)
            .arg("delivered", stats.delivered_packets);
        drain.flows_reconfigured = self.reconfigured.len();
        let stranded_packets = in_flight_packets;
        debug_assert_eq!(
            stranded_packets,
            self.packets
                .values()
                .filter(|p| p.ejected < p.packet.length)
                .count(),
            "in-flight counter drifted from the packet map"
        );
        let (reconfig, unreachable_flows, unreachable_packets, reconfig_routes) = match &self.faults
        {
            Some(ctx) => (
                ctx.stats.clone(),
                ctx.unreachable.iter().copied().collect(),
                ctx.unreachable_packets,
                ctx.route_log.clone(),
            ),
            None => (ReconfigStats::default(), Vec::new(), 0, Vec::new()),
        };
        VcSimOutcome {
            stats,
            deadlocked,
            stranded_packets,
            detection,
            drain,
            policy: self.policy.name().to_string(),
            deadlock_flows,
            deadlock_channels,
            reconfig,
            unreachable_flows,
            unreachable_packets,
            reconfig_routes,
        }
    }

    fn reset(&mut self) {
        for buffer in &mut self.buffers {
            buffer.clear();
        }
        for owner in &mut self.owner {
            *owner = None;
        }
        self.credits = CreditBook::new(
            self.channel_count,
            self.config.buffer_depth,
            self.config.credit_return_latency,
        );
        self.packets.clear();
        self.reconfigured.clear();
        if let Some(ctx) = self.faults.as_mut() {
            ctx.cursor = 0;
            ctx.down = FaultSet::new(ctx.topology);
            ctx.live_routes.clear();
            ctx.unreachable.clear();
            ctx.stats = ReconfigStats::default();
            ctx.unreachable_packets = 0;
            ctx.route_log.clear();
        }
    }

    /// The `(link, assigned vc)` hops the given flow currently routes over:
    /// the fault-reconfiguration route when one is committed, otherwise the
    /// [base route](Self::base_route).
    fn current_route(&self, flow: FlowId) -> Vec<(LinkId, usize)> {
        if let Some(ctx) = &self.faults {
            if let Some(route) = ctx.live_routes.get(&flow) {
                return route.clone();
            }
        }
        self.base_route(flow)
    }

    /// The committed route ignoring fault reconfigurations: the static
    /// route, or the recovery route once the flow was DBR-reconfigured.
    fn base_route(&self, flow: FlowId) -> Vec<(LinkId, usize)> {
        let routes = if self.reconfigured.contains(&flow) {
            self.recovery
                .as_ref()
                .expect("reconfigured implies recovery")
        } else {
            self.routes
        };
        routes
            .route(flow)
            .map(|r| r.channels().iter().map(|c| (c.link, c.vc)).collect())
            .unwrap_or_default()
    }

    /// The candidate dense channel indices the policy offers a head flit
    /// entering hop `hop` of `state`'s route, in preference order.
    fn head_candidates(&self, state: &PacketState, hop: usize) -> Vec<usize> {
        let link = state.links[hop];
        let mut vcs = Vec::new();
        self.policy.candidates(
            &VcChoice {
                link,
                link_vcs: self.vc_map.link_vcs(link),
                assigned_vc: state.assigned[hop],
                hop,
                flow: state.packet.flow,
            },
            &mut vcs,
        );
        debug_assert!(!vcs.is_empty(), "policies must offer a candidate");
        vcs.into_iter()
            .map(|vc| self.channel_index(link, vc.min(self.vc_map.link_vcs(link) - 1)))
            .collect()
    }

    /// Phase 1: decide all flit movements for this cycle based on the
    /// start-of-cycle state.  At most one flit enters and one flit leaves
    /// each channel per cycle.
    fn decide_moves(&self, flow_queues: &BTreeMap<FlowId, VecDeque<PacketId>>) -> Vec<Move> {
        let mut moves = Vec::new();
        let mut entering = vec![false; self.channel_count];

        // In-network flits first (drain before filling), iterating channels
        // in reverse index order so downstream channels are not starved; the
        // order does not affect correctness.
        for from in (0..self.channel_count).rev() {
            let Some(bf) = self.buffers[from].front() else {
                continue;
            };
            let state = &self.packets[&bf.flit.packet];
            if bf.hop + 1 == state.links.len() {
                // Last hop: eject (destination always sinks flits).
                moves.push(Move::Eject { from });
                continue;
            }
            let extending = state.taken.len() == bf.hop + 1;
            if extending {
                // Head flit claiming the next hop: first candidate that is
                // unowned (or self-owned) with a credit wins.
                for to in self.head_candidates(state, bf.hop + 1) {
                    if entering[to] {
                        continue;
                    }
                    let claimable =
                        self.owner[to].is_none() || self.owner[to] == Some(bf.flit.packet);
                    if claimable && self.credits.can_send(to) {
                        moves.push(Move::Advance {
                            from,
                            to,
                            claim: true,
                        });
                        entering[to] = true;
                        break;
                    }
                }
            } else {
                // Follower flit: the worm's path is established.
                let to = state.taken[bf.hop + 1];
                if !entering[to] {
                    if self.credits.can_send(to) {
                        moves.push(Move::Advance {
                            from,
                            to,
                            claim: false,
                        });
                        entering[to] = true;
                    } else {
                        // Established worm blocked on a credit: the
                        // canonical credit stall (one count per flit-cycle).
                        noc_telemetry::counter("vc.credit_stall_flit_cycles", 1);
                    }
                }
            }
        }

        // Injections: the packet at the front of each flow queue may push
        // its next flit into the first channel of its route.
        for queue in flow_queues.values() {
            let Some(&packet_id) = queue.front() else {
                continue;
            };
            let state = &self.packets[&packet_id];
            if state.to_inject.is_empty() {
                continue;
            }
            if state.taken.is_empty() {
                for to in self.head_candidates(state, 0) {
                    if entering[to] {
                        continue;
                    }
                    let claimable = self.owner[to].is_none() || self.owner[to] == Some(packet_id);
                    if claimable && self.credits.can_send(to) {
                        moves.push(Move::Inject {
                            packet: packet_id,
                            to,
                            claim: true,
                        });
                        entering[to] = true;
                        break;
                    }
                }
            } else {
                let to = state.taken[0];
                if !entering[to] {
                    if self.credits.can_send(to) {
                        moves.push(Move::Inject {
                            packet: packet_id,
                            to,
                            claim: false,
                        });
                        entering[to] = true;
                    } else {
                        noc_telemetry::counter("vc.credit_stall_flit_cycles", 1);
                    }
                }
            }
        }
        moves
    }

    /// Phase 2: apply the decided moves, updating ownership, credits,
    /// ejections and statistics.  Returns the number of packets fully
    /// delivered this cycle.
    fn apply_moves(
        &mut self,
        moves: &[Move],
        cycle: u64,
        stats: &mut SimStats,
        flow_queues: &mut BTreeMap<FlowId, VecDeque<PacketId>>,
    ) -> usize {
        let mut completed = 0usize;
        for &mv in moves {
            match mv {
                Move::Inject { packet, to, claim } => {
                    let state = self.packets.get_mut(&packet).expect("packet exists");
                    let flit = state.to_inject.pop_front().expect("decided with a flit");
                    if claim {
                        self.owner[to] = Some(packet);
                        state.taken.push(to);
                    } else {
                        debug_assert_eq!(self.owner[to], Some(packet));
                    }
                    self.credits.consume(to);
                    self.buffers[to].push_back(BufFlit { flit, hop: 0 });
                    if state.to_inject.is_empty() {
                        // The whole packet has left the source: the next
                        // packet of this flow may start injecting.
                        if let Some(queue) = flow_queues.get_mut(&state.packet.flow) {
                            if queue.front() == Some(&packet) {
                                queue.pop_front();
                            }
                        }
                    }
                }
                Move::Advance { from, to, claim } => {
                    let bf = self.buffers[from].pop_front().expect("decided with a flit");
                    self.credits.give_back(from, cycle);
                    let packet = bf.flit.packet;
                    if claim {
                        self.owner[to] = Some(packet);
                        self.packets
                            .get_mut(&packet)
                            .expect("packet exists")
                            .taken
                            .push(to);
                    }
                    if matches!(bf.flit.kind, FlitKind::Tail | FlitKind::HeadTail)
                        && self.owner[from] == Some(packet)
                    {
                        self.owner[from] = None;
                    }
                    self.credits.consume(to);
                    self.buffers[to].push_back(BufFlit {
                        flit: bf.flit,
                        hop: bf.hop + 1,
                    });
                }
                Move::Eject { from } => {
                    let bf = self.buffers[from].pop_front().expect("decided with a flit");
                    self.credits.give_back(from, cycle);
                    let packet = bf.flit.packet;
                    if matches!(bf.flit.kind, FlitKind::Tail | FlitKind::HeadTail)
                        && self.owner[from] == Some(packet)
                    {
                        self.owner[from] = None;
                    }
                    let state = self.packets.get_mut(&packet).expect("packet exists");
                    state.ejected += 1;
                    stats.delivered_flits += 1;
                    if state.ejected == state.packet.length {
                        stats.delivered_packets += 1;
                        completed += 1;
                        stats.record_latency(cycle.saturating_sub(state.packet.created_at) + 1);
                    }
                }
            }
        }
        completed
    }

    /// Classifies one pending movement (a buffered flit or an injection)
    /// into "can move now" or a list of wait targets, for the detector.
    fn classify_candidates(
        &self,
        packet: PacketId,
        candidates: &[usize],
        established: bool,
    ) -> (bool, Vec<WaitTarget>) {
        let mut waits = Vec::with_capacity(candidates.len());
        for &to in candidates {
            if !established {
                if let Some(q) = self.owner[to] {
                    if q != packet {
                        waits.push(WaitTarget::Packet(q));
                        continue;
                    }
                }
            }
            if self.credits.can_send(to) {
                return (true, Vec::new());
            }
            if self.buffers[to].len() < self.config.buffer_depth {
                // The buffer has room; the credit is still travelling back
                // upstream and will arrive without anyone else moving.
                return (true, Vec::new());
            }
            waits.push(WaitTarget::Channel(to));
        }
        (false, waits)
    }

    /// Builds the detector snapshot for the current state.
    fn wait_snapshot(&self, flow_queues: &BTreeMap<FlowId, VecDeque<PacketId>>) -> WaitForSnapshot {
        let mut channels = Vec::with_capacity(self.channel_count);
        for from in 0..self.channel_count {
            let Some(bf) = self.buffers[from].front() else {
                channels.push(None);
                continue;
            };
            let state = &self.packets[&bf.flit.packet];
            let (can_move, waits) = if bf.hop + 1 == state.links.len() {
                (true, Vec::new()) // ejection is always possible
            } else if state.taken.len() == bf.hop + 1 {
                let candidates = self.head_candidates(state, bf.hop + 1);
                self.classify_candidates(bf.flit.packet, &candidates, false)
            } else {
                self.classify_candidates(bf.flit.packet, &[state.taken[bf.hop + 1]], true)
            };
            channels.push(Some(ChannelWait {
                packet: bf.flit.packet,
                can_move,
                waits,
            }));
        }

        let mut injections = Vec::new();
        for queue in flow_queues.values() {
            let Some(&packet_id) = queue.front() else {
                continue;
            };
            let state = &self.packets[&packet_id];
            if state.to_inject.is_empty() {
                continue;
            }
            let (can_move, waits) = if state.taken.is_empty() {
                let candidates = self.head_candidates(state, 0);
                self.classify_candidates(packet_id, &candidates, false)
            } else {
                self.classify_candidates(packet_id, &[state.taken[0]], true)
            };
            injections.push(InjectionWait {
                packet: packet_id,
                can_move,
                waits,
                holds_channels: !state.taken.is_empty(),
            });
        }

        let mut locations: BTreeMap<PacketId, Vec<usize>> = BTreeMap::new();
        for (channel, buffer) in self.buffers.iter().enumerate() {
            for bf in buffer {
                let entry = locations.entry(bf.flit.packet).or_default();
                if entry.last() != Some(&channel) {
                    entry.push(channel);
                }
            }
        }
        WaitForSnapshot {
            channels,
            injections,
            flit_locations: locations.into_iter().collect(),
        }
    }

    /// Executes one DBR-style drain event: pulls every deadlocked packet's
    /// flits out of the network, releases its channel ownerships, resyncs
    /// the credits, and re-queues the packet at its source on the recovery
    /// route — permanently reconfiguring its flow.
    fn drain_deadlocked(
        &mut self,
        dead: &[PacketId],
        flow_queues: &mut BTreeMap<FlowId, VecDeque<PacketId>>,
        drain: &mut DrainStats,
    ) {
        let dead_set: HashSet<PacketId> = dead.iter().copied().collect();

        // 1. Pull every dead flit out of the buffers (order inside each
        // buffer is preserved for the survivors).
        let mut removed: HashMap<PacketId, Vec<Flit>> = HashMap::new();
        for buffer in &mut self.buffers {
            buffer.retain(|bf| {
                if dead_set.contains(&bf.flit.packet) {
                    removed.entry(bf.flit.packet).or_default().push(bf.flit);
                    false
                } else {
                    true
                }
            });
        }

        // 2. Release the drained packets' wormhole ownerships.
        for owner in &mut self.owner {
            if owner.is_some_and(|p| dead_set.contains(&p)) {
                *owner = None;
            }
        }

        // 3. Resync credits from the post-drain occupancy (the drain is a
        // reconfiguration event; in-flight credit returns are absorbed).
        let occupancy: Vec<usize> = self.buffers.iter().map(VecDeque::len).collect();
        self.credits.reset_from_occupancy(occupancy);

        // 4. Rebuild each drained packet on the recovery route of its flow.
        let mut newly_reconfigured: Vec<FlowId> = Vec::new();
        for &packet_id in dead {
            let state = self
                .packets
                .get_mut(&packet_id)
                .expect("dead packets exist");
            let flow = state.packet.flow;
            let mut flits = removed.remove(&packet_id).unwrap_or_default();
            flits.sort_by_key(|f| f.sequence);
            flits.extend(state.to_inject.drain(..));
            // Rebuild the flit kinds so the re-injected worm has a proper
            // head and tail even when the original head was already ejected.
            let remaining = flits.len();
            debug_assert!(remaining > 0, "deadlocked packets have flits left");
            for (index, flit) in flits.iter_mut().enumerate() {
                flit.kind = if remaining == 1 {
                    FlitKind::HeadTail
                } else if index == 0 {
                    FlitKind::Head
                } else if index + 1 == remaining {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
            }
            state.to_inject = flits.into();
            state.taken.clear();
            // A fault-reconfiguration route, when committed, supersedes the
            // recovery function (it already detours the failed region).
            let live = self
                .faults
                .as_ref()
                .and_then(|ctx| ctx.live_routes.get(&flow))
                .cloned();
            if let Some(route) = live {
                assert!(
                    !route.is_empty(),
                    "flow {flow} deadlocked but its live route is empty"
                );
                state.links = route.iter().map(|&(link, _)| link).collect();
                state.assigned = route.iter().map(|&(_, vc)| vc).collect();
            } else {
                let recovery = self.recovery.as_ref().expect("drain requires recovery");
                let route = recovery
                    .route(flow)
                    .unwrap_or_else(|| panic!("recovery routes must cover flow {flow}"));
                assert!(
                    !route.is_empty(),
                    "flow {flow} deadlocked but its recovery route is empty"
                );
                state.links = route.channels().iter().map(|c| c.link).collect();
                state.assigned = route.channels().iter().map(|c| c.vc).collect();
            }
            if self.reconfigured.insert(flow) {
                newly_reconfigured.push(flow);
            }
        }

        // 5. Packets of reconfigured flows that have not entered the network
        // yet switch to the recovery route as well (in-flight survivors keep
        // the path they already hold).
        for state in self.packets.values_mut() {
            if self.reconfigured.contains(&state.packet.flow)
                && state.taken.is_empty()
                && state.ejected == 0
                && !state.to_inject.is_empty()
                && !dead_set.contains(&state.packet.id)
            {
                let flow = state.packet.flow;
                if let Some(route) = self
                    .faults
                    .as_ref()
                    .and_then(|ctx| ctx.live_routes.get(&flow))
                {
                    state.links = route.iter().map(|&(link, _)| link).collect();
                    state.assigned = route.iter().map(|&(_, vc)| vc).collect();
                } else {
                    let recovery = self.recovery.as_ref().expect("drain requires recovery");
                    if let Some(route) = recovery.route(flow) {
                        state.links = route.channels().iter().map(|c| c.link).collect();
                        state.assigned = route.channels().iter().map(|c| c.vc).collect();
                    }
                }
            }
        }

        // 6. Re-queue the drained packets for injection, oldest first and
        // ahead of packets that have not started injecting — but never
        // ahead of a surviving packet that is mid-injection.  Such a packet
        // owns its claimed channels and can only finish from the queue
        // front; burying it would wedge the flow forever (and hide the
        // worm from the detector, which only sees queue fronts).
        let mut per_flow: BTreeMap<FlowId, Vec<PacketId>> = BTreeMap::new();
        for &packet_id in dead {
            per_flow
                .entry(self.packets[&packet_id].packet.flow)
                .or_default()
                .push(packet_id);
        }
        for (flow, mut ids) in per_flow {
            ids.sort();
            let queue = flow_queues.entry(flow).or_default();
            queue.retain(|id| !dead_set.contains(id));
            let insert_at = match queue.front() {
                Some(front) if !self.packets[front].taken.is_empty() => 1,
                _ => 0,
            };
            for &id in ids.iter().rev() {
                queue.insert(insert_at, id);
            }
        }
        if cfg!(debug_assertions) {
            // Invariant: every surviving mid-injection worm is still at the
            // front of its flow queue.
            for queue in flow_queues.values() {
                for (position, id) in queue.iter().enumerate() {
                    debug_assert!(
                        position == 0 || self.packets[id].taken.is_empty(),
                        "mid-injection packet {id} buried at queue position {position}"
                    );
                }
            }
        }

        drain.events += 1;
        drain.packets_drained += dead.len();
        noc_telemetry::counter("vc.drain_events", 1);
        noc_telemetry::histogram("vc.drained_packets", dead.len() as u64);
    }

    /// Applies every fault event due at `cycle` as one reconfiguration
    /// epoch.  Returns `true` when an epoch was committed.
    fn process_faults(
        &mut self,
        cycle: u64,
        flow_queues: &mut BTreeMap<FlowId, VecDeque<PacketId>>,
        in_flight: &mut usize,
    ) -> bool {
        let due = self.faults.as_ref().is_some_and(|ctx| {
            ctx.plan
                .events()
                .get(ctx.cursor)
                .is_some_and(|e| e.cycle <= cycle)
        });
        if !due {
            return false;
        }
        // Take the context out so the batch can call `&mut self` helpers;
        // every committed-route lookup inside goes through the context.
        let mut ctx = self.faults.take().expect("due implies armed");
        {
            let mut span = noc_telemetry::span("sim", "reconfig_epoch");
            span.arg("cycle", cycle);
            self.apply_fault_batch(&mut ctx, cycle, flow_queues, in_flight);
        }
        noc_telemetry::counter("vc.reconfig_epochs", 1);
        self.faults = Some(ctx);
        true
    }

    /// One reconfiguration epoch: apply the due faults, reroute affected
    /// flows onto the surviving up*/down* subgraph, strand disconnected
    /// flows, and commit only once the combined dependency graph of
    /// committed routes plus in-flight residues is acyclic — pulling worms
    /// back to their sources (a scoped DBR drain) when it is not.
    fn apply_fault_batch(
        &mut self,
        ctx: &mut FaultContext<'a>,
        cycle: u64,
        flow_queues: &mut BTreeMap<FlowId, VecDeque<PacketId>>,
        in_flight: &mut usize,
    ) {
        // 1. Apply every due event atomically (one epoch per batch).
        let mut faults_applied = 0usize;
        let mut any_repair = false;
        while ctx
            .plan
            .events()
            .get(ctx.cursor)
            .is_some_and(|e| e.cycle <= cycle)
        {
            match ctx.plan.events()[ctx.cursor].kind {
                // Link faults are physical cable faults: both directions of
                // a bidirectional pair go down (and come back) together, so
                // the surviving fabric stays symmetric and up*/down*
                // recovery remains complete per connected component.
                FaultKind::LinkDown(link) => ctx.down.fail_link_pair(ctx.topology, link),
                FaultKind::LinkUp(link) => {
                    ctx.down.repair_link_pair(ctx.topology, link);
                    any_repair = true;
                }
                FaultKind::SwitchDown(switch) => ctx.down.fail_switch(switch),
                FaultKind::SwitchUp(switch) => {
                    ctx.down.repair_switch(switch);
                    any_repair = true;
                }
            }
            faults_applied += 1;
            ctx.cursor += 1;
        }

        let flow_count = self.comm.flow_count();

        // 2. Rebuild the committed dependency graph (assigned-VC CDG) from
        // every live flow's committed route.
        let mut dep = DepGraph::new(self.channel_count);
        let mut committed: Vec<Option<Vec<(LinkId, usize)>>> = vec![None; flow_count];
        for (index, slot) in committed.iter_mut().enumerate() {
            let flow = FlowId::from_index(index);
            if ctx.unreachable.contains(&flow) {
                continue;
            }
            let route = self.committed_route_in(ctx, flow);
            dep.add_path(&self.dense_path(&route));
            *slot = Some(route);
        }

        // 3. Flows to re-examine: committed routes crossing a now-unusable
        // link, plus stranded flows retried after a repair.
        let mut candidates: Vec<FlowId> = Vec::new();
        for (index, slot) in committed.iter().enumerate() {
            let flow = FlowId::from_index(index);
            match slot {
                None => {
                    if any_repair {
                        candidates.push(flow);
                    }
                }
                Some(route) => {
                    if route
                        .iter()
                        .any(|&(link, _)| !ctx.down.link_usable(ctx.topology, link))
                    {
                        candidates.push(flow);
                    }
                }
            }
        }

        // 4. Survivor connectivity and per-component up*/down* labels
        // (rooted at each component's lowest-index switch).
        let conn = ctx.topology.connectivity_after(&ctx.down);
        let mut labels: HashMap<usize, UpDownLabels> = HashMap::new();
        for index in 0..ctx.topology.switch_count() {
            let switch = SwitchId::from_index(index);
            if let Some(component) = conn.component_of(switch) {
                labels
                    .entry(component)
                    .or_insert_with(|| UpDownLabels::surviving(ctx.topology, switch, &ctx.down));
            }
        }

        // 5. Reroute or strand each candidate flow.
        let mut flows_rerouted = 0usize;
        let mut newly_unreachable: Vec<FlowId> = Vec::new();
        let mut rerouted_this_event: HashSet<FlowId> = HashSet::new();
        for flow in candidates {
            if let Some(route) = committed[flow.index()].take() {
                dep.remove_path(&self.dense_path(&route));
            }
            match self.surviving_route(ctx, &conn, &labels, flow) {
                Some(route) => {
                    dep.add_path(&self.dense_path(&route));
                    ctx.live_routes.insert(flow, route.clone());
                    ctx.unreachable.remove(&flow);
                    committed[flow.index()] = Some(route);
                    flows_rerouted += 1;
                    rerouted_this_event.insert(flow);
                }
                None => {
                    ctx.live_routes.remove(&flow);
                    if ctx.unreachable.insert(flow) {
                        newly_unreachable.push(flow);
                    }
                }
            }
        }

        // 6. Purge the traffic of newly stranded flows: their packets leave
        // the network and the accounting, so a partition surfaces as the
        // typed Unreachable outcome instead of an idle-timeout.
        if !newly_unreachable.is_empty() {
            ctx.unreachable_packets +=
                self.strand_flows(&newly_unreachable, flow_queues, in_flight);
        }

        // 7. In-flight packets: pull back worms whose remaining path
        // crosses a dead link, swap not-yet-started packets onto the new
        // committed route, and register every worm still travelling a
        // superseded path as a transient residue of the epoch.
        let min_hops = self.min_buffered_hops();
        let mut ids: Vec<PacketId> = self
            .packets
            .iter()
            .filter(|(_, s)| s.ejected < s.packet.length)
            .map(|(&id, _)| id)
            .collect();
        ids.sort();
        let mut pulled: Vec<PacketId> = Vec::new();
        let mut pulled_routes: HashMap<FlowId, Vec<(LinkId, usize)>> = HashMap::new();
        let mut residues: Vec<(PacketId, Vec<usize>)> = Vec::new();
        let mut residue_ids: HashSet<PacketId> = HashSet::new();
        for id in ids {
            let state = &self.packets[&id];
            let flow = state.packet.flow;
            let Some(committed_route) = committed[flow.index()].clone() else {
                continue; // unreachable flows were purged in step 6
            };
            let current: Vec<(LinkId, usize)> = state
                .links
                .iter()
                .zip(&state.assigned)
                .map(|(&link, &vc)| (link, vc))
                .collect();
            let started = !state.taken.is_empty() || min_hops.contains_key(&id);
            if !started {
                if current != committed_route {
                    let state = self.packets.get_mut(&id).expect("packet exists");
                    state.links = committed_route.iter().map(|&(link, _)| link).collect();
                    state.assigned = committed_route.iter().map(|&(_, vc)| vc).collect();
                }
                continue;
            }
            let start = if state.to_inject.is_empty() {
                min_hops.get(&id).copied().unwrap_or(state.links.len())
            } else {
                0
            };
            let broken = state.links[start..]
                .iter()
                .any(|&link| !ctx.down.link_usable(ctx.topology, link));
            if broken {
                pulled.push(id);
                pulled_routes.insert(flow, committed_route);
            } else if current != committed_route {
                residues.push((id, self.residue_path(state, start)));
                residue_ids.insert(id);
            }
        }
        if !pulled.is_empty() {
            self.pull_back_to_source(&pulled, &pulled_routes, flow_queues);
        }
        let mut packets_drained = pulled.len();

        // 8. Epoch check: the combined graph of committed routes plus
        // transient residues must be acyclic before the epoch commits.
        // While it is not, drain residues crossing a cycle back to their
        // sources (scoped DBR fallback); when only committed routes remain
        // cyclic, move the involved flows onto the surviving up*/down*
        // function, whose routes cannot cycle among themselves.
        for (_, path) in &residues {
            dep.add_path(path);
        }
        let mut fallback_drain = false;
        let max_rounds = flow_count + self.packets.len() + 4;
        let mut rounds = 0usize;
        loop {
            let cyclic = dep.cyclic_channels();
            if cyclic.is_empty() {
                break;
            }
            fallback_drain = true;
            rounds += 1;
            assert!(rounds <= max_rounds, "fault epoch failed to converge");
            let cyclic_set: HashSet<usize> = cyclic.into_iter().collect();

            // (a) Drain transient residues crossing the cycle.
            let mut to_drain: Vec<PacketId> = Vec::new();
            residues.retain(|(id, path)| {
                if path.iter().any(|c| cyclic_set.contains(c)) {
                    dep.remove_path(path);
                    to_drain.push(*id);
                    residue_ids.remove(id);
                    false
                } else {
                    true
                }
            });
            if !to_drain.is_empty() {
                let mut drain_routes: HashMap<FlowId, Vec<(LinkId, usize)>> = HashMap::new();
                for &id in &to_drain {
                    let flow = self.packets[&id].packet.flow;
                    let route = committed[flow.index()]
                        .clone()
                        .expect("residues belong to routed flows");
                    drain_routes.insert(flow, route);
                }
                self.pull_back_to_source(&to_drain, &drain_routes, flow_queues);
                packets_drained += to_drain.len();
                continue;
            }

            // (b) The committed routes themselves are cyclic (e.g. an
            // unsafe baseline design at fault time): reroute the involved
            // flows onto the surviving up*/down* function.
            let mut progressed = false;
            for flow in (0..flow_count).map(FlowId::from_index) {
                if rerouted_this_event.contains(&flow) {
                    continue;
                }
                let Some(route) = committed[flow.index()].clone() else {
                    continue;
                };
                let path = self.dense_path(&route);
                if !path.iter().any(|c| cyclic_set.contains(c)) {
                    continue;
                }
                dep.remove_path(&path);
                match self.surviving_route(ctx, &conn, &labels, flow) {
                    Some(new_route) => {
                        dep.add_path(&self.dense_path(&new_route));
                        ctx.live_routes.insert(flow, new_route.clone());
                        committed[flow.index()] = Some(new_route.clone());
                        rerouted_this_event.insert(flow);
                        flows_rerouted += 1;
                        // Worms of the flow still travelling the old path
                        // become transient residues of this epoch.
                        let fresh_hops = self.min_buffered_hops();
                        let mut flow_ids: Vec<PacketId> = self
                            .packets
                            .iter()
                            .filter(|(id, s)| {
                                s.packet.flow == flow
                                    && s.ejected < s.packet.length
                                    && !residue_ids.contains(*id)
                            })
                            .map(|(&id, _)| id)
                            .collect();
                        flow_ids.sort();
                        for id in flow_ids {
                            let state = &self.packets[&id];
                            let started = !state.taken.is_empty() || fresh_hops.contains_key(&id);
                            if !started {
                                let state = self.packets.get_mut(&id).expect("packet exists");
                                state.links = new_route.iter().map(|&(link, _)| link).collect();
                                state.assigned = new_route.iter().map(|&(_, vc)| vc).collect();
                                continue;
                            }
                            let start = if state.to_inject.is_empty() {
                                fresh_hops.get(&id).copied().unwrap_or(state.links.len())
                            } else {
                                0
                            };
                            let residue = self.residue_path(state, start);
                            dep.add_path(&residue);
                            residues.push((id, residue));
                            residue_ids.insert(id);
                        }
                        progressed = true;
                    }
                    None => {
                        // Defensive: the cyclic flow cannot be rerouted on
                        // the surviving fabric — strand it.
                        ctx.live_routes.remove(&flow);
                        committed[flow.index()] = None;
                        if ctx.unreachable.insert(flow) {
                            newly_unreachable.push(flow);
                            ctx.unreachable_packets +=
                                self.strand_flows(&[flow], flow_queues, in_flight);
                        }
                        progressed = true;
                    }
                }
            }
            assert!(
                progressed,
                "cyclic fault epoch with no residue or committed flow to act on"
            );
        }

        // 9. Post-protocol runtime recheck: the exact wait-for detector must
        // agree no knot survives the epoch; any remaining knot (formed
        // before the event, invisible to the assigned-VC model) is drained
        // here rather than committed over.
        let mut wait_rounds = 0usize;
        loop {
            let dead = self.wait_snapshot(flow_queues).deadlocked_packets();
            if dead.is_empty() {
                break;
            }
            fallback_drain = true;
            wait_rounds += 1;
            assert!(
                wait_rounds <= max_rounds,
                "wait-for drain failed to converge"
            );
            let mut victims: Vec<PacketId> = Vec::new();
            let mut drain_routes: HashMap<FlowId, Vec<(LinkId, usize)>> = HashMap::new();
            for &id in &dead {
                let flow = self.packets[&id].packet.flow;
                let Some(route) = committed[flow.index()].clone() else {
                    continue;
                };
                drain_routes.insert(flow, route);
                victims.push(id);
            }
            victims.sort();
            assert!(!victims.is_empty(), "knot without routed flows");
            self.pull_back_to_source(&victims, &drain_routes, flow_queues);
            packets_drained += victims.len();
        }

        // 10. Commit.  `committed_cyclic` is re-derived from the evidence —
        // it must always be false, and the property suite asserts so.
        let committed_cyclic = dep.is_cyclic()
            || !self
                .wait_snapshot(flow_queues)
                .deadlocked_packets()
                .is_empty();
        ctx.stats.record(ReconfigEvent {
            cycle,
            faults_applied,
            flows_rerouted,
            flows_unreachable: newly_unreachable.len(),
            packets_drained,
            fallback_drain,
            committed_cyclic,
        });
        ctx.stats.unreachable_flows = ctx.unreachable.len();
        if self.config.record_reconfig_routes {
            let mut snapshot = RouteSet::new(flow_count);
            for (index, slot) in committed.iter().enumerate() {
                let flow = FlowId::from_index(index);
                let mut route = Route::default();
                if let Some(channels) = slot {
                    route
                        .channels_mut()
                        .extend(channels.iter().map(|&(link, vc)| Channel::new(link, vc)));
                }
                snapshot.set_route(flow, route);
            }
            ctx.route_log.push(snapshot);
        }
    }

    /// The committed route of `flow` as seen by the fault machinery (the
    /// context is detached from `self` while an epoch runs).
    fn committed_route_in(&self, ctx: &FaultContext<'a>, flow: FlowId) -> Vec<(LinkId, usize)> {
        if let Some(route) = ctx.live_routes.get(&flow) {
            return route.clone();
        }
        self.base_route(flow)
    }

    /// Dense channel indices of a `(link, vc)` route.
    fn dense_path(&self, route: &[(LinkId, usize)]) -> Vec<usize> {
        route
            .iter()
            .map(|&(link, vc)| self.offsets[link.index()] + vc)
            .collect()
    }

    /// Dense channel indices a worm still occupies or will request on its
    /// *current* (pre-reconfiguration) path, from hop `start` on: hops the
    /// head already claimed use the channel actually taken, future hops the
    /// assigned VC.
    fn residue_path(&self, state: &PacketState, start: usize) -> Vec<usize> {
        (start..state.links.len())
            .map(|hop| {
                if hop < state.taken.len() {
                    state.taken[hop]
                } else {
                    self.offsets[state.links[hop].index()] + state.assigned[hop]
                }
            })
            .collect()
    }

    /// Earliest route hop each in-flight worm still has a flit buffered at.
    fn min_buffered_hops(&self) -> HashMap<PacketId, usize> {
        let mut min_hops: HashMap<PacketId, usize> = HashMap::new();
        for buffer in &self.buffers {
            for bf in buffer {
                min_hops
                    .entry(bf.flit.packet)
                    .and_modify(|hop| *hop = (*hop).min(bf.hop))
                    .or_insert(bf.hop);
            }
        }
        min_hops
    }

    /// An up*/down* route for `flow` on the surviving fabric (VC 0 on every
    /// hop), or `None` when its endpoints are disconnected.
    fn surviving_route(
        &self,
        ctx: &FaultContext<'a>,
        conn: &Connectivity,
        labels: &HashMap<usize, UpDownLabels>,
        flow: FlowId,
    ) -> Option<Vec<(LinkId, usize)>> {
        let payload = self.comm.flow(flow).expect("flow exists");
        let src = ctx.map.switch_of(payload.source)?;
        let dst = ctx.map.switch_of(payload.destination)?;
        if src == dst {
            return Some(Vec::new());
        }
        let component = conn.component_of(src)?;
        if conn.component_of(dst) != Some(component) {
            return None;
        }
        let labels = labels.get(&component)?;
        let links = updown_route_avoiding(ctx.topology, labels, src, dst, &ctx.down)?;
        Some(links.into_iter().map(|link| (link, 0)).collect())
    }

    /// Pulls the given packets' flits out of the network and re-queues each
    /// packet at its source on its flow's route from `new_routes` — the
    /// drain mechanics of [`drain_deadlocked`](Self::drain_deadlocked)
    /// without the permanent DBR reconfiguration.
    fn pull_back_to_source(
        &mut self,
        victims: &[PacketId],
        new_routes: &HashMap<FlowId, Vec<(LinkId, usize)>>,
        flow_queues: &mut BTreeMap<FlowId, VecDeque<PacketId>>,
    ) {
        let victim_set: HashSet<PacketId> = victims.iter().copied().collect();
        let mut removed: HashMap<PacketId, Vec<Flit>> = HashMap::new();
        for buffer in &mut self.buffers {
            buffer.retain(|bf| {
                if victim_set.contains(&bf.flit.packet) {
                    removed.entry(bf.flit.packet).or_default().push(bf.flit);
                    false
                } else {
                    true
                }
            });
        }
        for owner in &mut self.owner {
            if owner.is_some_and(|p| victim_set.contains(&p)) {
                *owner = None;
            }
        }
        let occupancy: Vec<usize> = self.buffers.iter().map(VecDeque::len).collect();
        self.credits.reset_from_occupancy(occupancy);
        for &packet_id in victims {
            let state = self
                .packets
                .get_mut(&packet_id)
                .expect("pulled packets exist");
            let flow = state.packet.flow;
            let mut flits = removed.remove(&packet_id).unwrap_or_default();
            flits.sort_by_key(|f| f.sequence);
            flits.extend(state.to_inject.drain(..));
            let remaining = flits.len();
            debug_assert!(remaining > 0, "pulled-back packets have flits left");
            for (index, flit) in flits.iter_mut().enumerate() {
                flit.kind = if remaining == 1 {
                    FlitKind::HeadTail
                } else if index == 0 {
                    FlitKind::Head
                } else if index + 1 == remaining {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                };
            }
            state.to_inject = flits.into();
            state.taken.clear();
            let route = new_routes
                .get(&flow)
                .expect("pulled packets have a committed route");
            assert!(
                !route.is_empty(),
                "flow {flow} pulled back onto an empty route"
            );
            state.links = route.iter().map(|&(link, _)| link).collect();
            state.assigned = route.iter().map(|&(_, vc)| vc).collect();
        }
        // Re-queue, oldest first, never burying a surviving mid-injection
        // front (same invariant as the DBR drain).
        let mut per_flow: BTreeMap<FlowId, Vec<PacketId>> = BTreeMap::new();
        for &packet_id in victims {
            per_flow
                .entry(self.packets[&packet_id].packet.flow)
                .or_default()
                .push(packet_id);
        }
        for (flow, mut ids) in per_flow {
            ids.sort();
            let queue = flow_queues.entry(flow).or_default();
            queue.retain(|id| !victim_set.contains(id));
            let insert_at = match queue.front() {
                Some(front) if !self.packets[front].taken.is_empty() => 1,
                _ => 0,
            };
            for &id in ids.iter().rev() {
                queue.insert(insert_at, id);
            }
        }
    }

    /// Removes every undelivered packet of the given flows from the network
    /// and the accounting.  Returns the number of packets purged (each
    /// becomes an unreachable packet, not a stranded one).
    fn strand_flows(
        &mut self,
        flows: &[FlowId],
        flow_queues: &mut BTreeMap<FlowId, VecDeque<PacketId>>,
        in_flight: &mut usize,
    ) -> usize {
        let flow_set: HashSet<FlowId> = flows.iter().copied().collect();
        let mut victims: Vec<PacketId> = self
            .packets
            .iter()
            .filter(|(_, s)| flow_set.contains(&s.packet.flow) && s.ejected < s.packet.length)
            .map(|(&id, _)| id)
            .collect();
        victims.sort();
        if victims.is_empty() {
            return 0;
        }
        let victim_set: HashSet<PacketId> = victims.iter().copied().collect();
        for buffer in &mut self.buffers {
            buffer.retain(|bf| !victim_set.contains(&bf.flit.packet));
        }
        for owner in &mut self.owner {
            if owner.is_some_and(|p| victim_set.contains(&p)) {
                *owner = None;
            }
        }
        let occupancy: Vec<usize> = self.buffers.iter().map(VecDeque::len).collect();
        self.credits.reset_from_occupancy(occupancy);
        for flow in flows {
            if let Some(queue) = flow_queues.get_mut(flow) {
                queue.retain(|id| !victim_set.contains(id));
            }
        }
        for id in &victims {
            self.packets.remove(id);
        }
        *in_flight -= victims.len();
        victims.len()
    }
}

/// Panics when a route references a link or VC outside the VC map.
fn validate_routes(routes: &RouteSet, vc_map: &VcMap, what: &str) {
    for (flow, route) in routes.iter() {
        for channel in route.channels() {
            let vcs = vc_map.link_vcs(channel.link);
            assert!(
                channel.vc < vcs,
                "{what} of {flow} references unknown channel {channel} \
                 (link has {vcs} VCs in the VC map)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdaptiveEscape, AssignedVc, SingleVc};
    use noc_deadlock::vcmap::VcMap;
    use noc_routing::shortest::route_all_shortest;
    use noc_routing::Route;
    use noc_topology::{generators, CoreMap, LinkId, Topology};

    fn line_design() -> (Topology, CommGraph, RouteSet) {
        let generated = generators::chain(3, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        comm.add_flow(a, b, 100.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[2]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        (generated.topology, comm, routes)
    }

    /// The Figure 1 configuration: four flows chasing each other around a
    /// unidirectional ring.
    fn figure_1_ring() -> (Topology, CommGraph, RouteSet) {
        let generated = generators::unidirectional_ring(4, 1.0);
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..4 {
            comm.add_flow(cores[i], cores[(i + 2) % 4], 100.0);
        }
        let links: Vec<LinkId> = (0..4).map(LinkId::from_index).collect();
        let mut routes = RouteSet::new(4);
        for i in 0..4 {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([links[i], links[(i + 1) % 4]]),
            );
        }
        (generated.topology, comm, routes)
    }

    fn pressure_traffic() -> TrafficConfig {
        TrafficConfig {
            packets_per_flow: 20,
            packet_length: 6,
            mean_gap_cycles: 0,
            seed: 1,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn single_flow_delivers_all_packets() {
        let (topo, comm, routes) = line_design();
        let vc_map = VcMap::from_design(&topo, &routes);
        let mut sim = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig::default(),
        );
        let outcome = sim.run(&TrafficConfig {
            packets_per_flow: 10,
            packet_length: 4,
            ..TrafficConfig::default()
        });
        assert!(!outcome.deadlocked);
        assert_eq!(outcome.stats.injected_packets, 10);
        assert_eq!(outcome.stats.delivered_packets, 10);
        assert_eq!(outcome.stats.delivered_flits, 40);
        assert_eq!(outcome.stranded_packets, 0);
        assert!(outcome.detection.is_none());
        assert_eq!(outcome.drain, DrainStats::default());
        assert_eq!(outcome.policy, "assigned-vc");
        assert!(outcome.stats.mean_latency() >= 2.0, "2 hops minimum");
    }

    #[test]
    fn unsafe_ring_deadlocks_and_the_exact_detector_names_the_knot() {
        let (topo, comm, routes) = figure_1_ring();
        let vc_map = VcMap::from_design(&topo, &routes);
        let config = VcSimConfig {
            buffer_depth: 1,
            max_cycles: 100_000,
            ..VcSimConfig::default()
        };
        let mut sim = VcSimulator::new(&comm, &routes, &vc_map, &SingleVc, &config);
        let outcome = sim.run(&pressure_traffic());
        assert!(outcome.deadlocked, "the cyclic ring must deadlock");
        assert!(outcome.stranded_packets > 0);
        let event = outcome.detection.expect("detection recorded");
        assert_eq!(event.kind, DetectionKind::WaitForGraph);
        assert!(event.packets >= 2, "a knot involves several packets");
    }

    #[test]
    fn exact_detection_fires_no_later_than_the_timeout() {
        let (topo, comm, routes) = figure_1_ring();
        let vc_map = VcMap::from_design(&topo, &routes);
        let exact = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &SingleVc,
            &VcSimConfig {
                buffer_depth: 1,
                idle_timeout: 0,
                ..VcSimConfig::default()
            },
        )
        .run(&pressure_traffic());
        let timeout = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &SingleVc,
            &VcSimConfig {
                buffer_depth: 1,
                detect_period: 0, // exact detector disabled
                idle_timeout: 200,
                ..VcSimConfig::default()
            },
        )
        .run(&pressure_traffic());
        let exact_event = exact.detection.expect("exact detection fired");
        let timeout_event = timeout.detection.expect("timeout detection fired");
        assert_eq!(exact_event.kind, DetectionKind::WaitForGraph);
        assert_eq!(timeout_event.kind, DetectionKind::IdleTimeout);
        assert!(exact_event.cycle <= timeout_event.cycle);
    }

    #[test]
    fn assigned_vcs_from_removal_make_the_ring_safe() {
        let (mut topo, comm, routes) = figure_1_ring();
        let mut routes = routes;
        noc_deadlock::removal::remove_deadlocks(
            &mut topo,
            &mut routes,
            &noc_deadlock::removal::RemovalConfig::default(),
        )
        .unwrap();
        let vc_map = VcMap::from_design(&topo, &routes);
        assert!(!vc_map.is_single_vc(), "removal bought at least one VC");
        let config = VcSimConfig {
            buffer_depth: 1,
            ..VcSimConfig::default()
        };
        let mut sim = VcSimulator::new(&comm, &routes, &vc_map, &AssignedVc, &config);
        let outcome = sim.run(&pressure_traffic());
        assert!(!outcome.deadlocked);
        assert!(outcome.detection.is_none());
        assert_eq!(
            outcome.stats.delivered_packets,
            outcome.stats.injected_packets
        );
        assert_eq!(outcome.stranded_packets, 0);

        // The same repaired design simulated VC-obliviously deadlocks
        // again: the VC assignment is what the safety lives in.
        let mut unsafe_sim = VcSimulator::new(&comm, &routes, &vc_map, &SingleVc, &config);
        let unsafe_outcome = unsafe_sim.run(&pressure_traffic());
        assert!(unsafe_outcome.deadlocked);
    }

    #[test]
    fn adaptive_escape_delivers_on_an_escape_design() {
        // Bidirectional ring, all-to-all flows, shortest routes: cyclic
        // CDG; escape channels repair it, and the Duato-adaptive policy
        // must deliver everything on the repaired design.
        let generated = generators::bidirectional_ring(6, 1.0);
        let n = 6;
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    comm.add_flow(cores[i], cores[j], 50.0);
                }
            }
        }
        let mut map = CoreMap::new(n);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let mut topo = generated.topology;
        let mut routes = route_all_shortest(&topo, &comm, &map).unwrap();
        noc_deadlock::escape::apply_escape_channels(
            &mut topo,
            &mut routes,
            noc_topology::SwitchId::from_index(0),
        )
        .unwrap();
        let vc_map = VcMap::from_design(&topo, &routes);
        let config = VcSimConfig {
            buffer_depth: 1,
            ..VcSimConfig::default()
        };
        let traffic = TrafficConfig {
            packets_per_flow: 6,
            packet_length: 5,
            ..TrafficConfig::default()
        };
        for policy in [&AssignedVc as &dyn VcPolicy, &AdaptiveEscape] {
            let mut sim = VcSimulator::new(&comm, &routes, &vc_map, policy, &config);
            let outcome = sim.run(&traffic);
            assert!(!outcome.deadlocked, "policy {}", policy.name());
            assert_eq!(
                outcome.stats.delivered_packets,
                outcome.stats.injected_packets,
                "policy {}",
                policy.name()
            );
        }
    }

    #[test]
    fn dynamic_drain_recovers_a_deadlocked_ring() {
        // The Figure 1 trap built on a *bidirectional* ring: the four flows
        // are forced the long way around the clockwise links, so the run
        // deadlocks exactly like the unidirectional ring — but legal
        // up*/down* recovery routes exist, and with the drain armed every
        // deadlock is resolved and the run completes.
        let generated = generators::bidirectional_ring(4, 1.0);
        let n = 4;
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..n {
            comm.add_flow(cores[i], cores[(i + 2) % n], 100.0);
        }
        let mut map = CoreMap::new(n);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let topo = generated.topology;
        let cw: Vec<LinkId> = (0..n)
            .map(|i| {
                topo.find_link(generated.switches[i], generated.switches[(i + 1) % n])
                    .expect("ring link exists")
            })
            .collect();
        let mut routes = RouteSet::new(n);
        for i in 0..n {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([cw[i], cw[(i + 1) % n]]),
            );
        }
        assert!(noc_deadlock::verify::check_deadlock_free(&topo, &routes).is_err());
        let recovery = noc_routing::updown::route_all_updown(
            &topo,
            &comm,
            &map,
            noc_topology::SwitchId::from_index(0),
        )
        .unwrap();
        let vc_map = VcMap::from_design(&topo, &routes);
        let config = VcSimConfig {
            buffer_depth: 1,
            max_cycles: 500_000,
            ..VcSimConfig::default()
        };
        let traffic = pressure_traffic();
        let mut sim =
            VcSimulator::new(&comm, &routes, &vc_map, &SingleVc, &config).with_recovery(recovery);
        let outcome = sim.run(&traffic);
        assert!(!outcome.deadlocked, "every deadlock must be drained");
        assert_eq!(
            outcome.stats.delivered_packets,
            outcome.stats.injected_packets
        );
        assert_eq!(outcome.stranded_packets, 0);
        // The run without recovery deadlocks, so the drain genuinely fired.
        let mut bare = VcSimulator::new(&comm, &routes, &vc_map, &SingleVc, &config);
        let bare_outcome = bare.run(&traffic);
        assert!(bare_outcome.deadlocked);
        assert!(outcome.drain.events >= 1);
        assert!(outcome.drain.packets_drained >= 1);
        assert!(outcome.drain.flows_reconfigured >= 1);
        assert!(outcome.detection.is_some());
    }

    #[test]
    fn credit_return_latency_throttles_but_still_delivers() {
        let (topo, comm, routes) = line_design();
        let vc_map = VcMap::from_design(&topo, &routes);
        let traffic = TrafficConfig {
            packets_per_flow: 10,
            packet_length: 4,
            ..TrafficConfig::default()
        };
        let fast = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig {
                credit_return_latency: 0,
                ..VcSimConfig::default()
            },
        )
        .run(&traffic);
        let slow = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig {
                credit_return_latency: 4,
                ..VcSimConfig::default()
            },
        )
        .run(&traffic);
        for outcome in [&fast, &slow] {
            assert!(!outcome.deadlocked);
            assert_eq!(
                outcome.stats.delivered_packets,
                outcome.stats.injected_packets
            );
        }
        assert!(
            slow.stats.cycles > fast.stats.cycles,
            "credit latency must cost cycles ({} vs {})",
            slow.stats.cycles,
            fast.stats.cycles
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let (topo, comm, routes) = figure_1_ring();
        let vc_map = VcMap::from_design(&topo, &routes);
        let config = VcSimConfig {
            buffer_depth: 1,
            ..VcSimConfig::default()
        };
        let a =
            VcSimulator::new(&comm, &routes, &vc_map, &SingleVc, &config).run(&pressure_traffic());
        let b =
            VcSimulator::new(&comm, &routes, &vc_map, &SingleVc, &config).run(&pressure_traffic());
        assert_eq!(a, b);
    }

    /// Bidirectional 6-ring with two disjoint clockwise 2-hop flows — an
    /// acyclic design whose routes a link fault can break.
    fn faultable_ring() -> (
        Topology,
        CommGraph,
        CoreMap,
        RouteSet,
        Vec<noc_topology::SwitchId>,
    ) {
        let generated = generators::bidirectional_ring(6, 1.0);
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..6).map(|i| comm.add_core(format!("c{i}"))).collect();
        comm.add_flow(cores[0], cores[2], 100.0);
        comm.add_flow(cores[3], cores[5], 100.0);
        let mut map = CoreMap::new(6);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        (generated.topology, comm, map, routes, generated.switches)
    }

    #[test]
    fn armed_with_an_empty_plan_is_byte_identical() {
        let (topo, comm, map, routes, _) = faultable_ring();
        let vc_map = VcMap::from_design(&topo, &routes);
        let config = VcSimConfig::default();
        let traffic = pressure_traffic();
        let plain = VcSimulator::new(&comm, &routes, &vc_map, &AssignedVc, &config).run(&traffic);
        let armed = VcSimulator::new(&comm, &routes, &vc_map, &AssignedVc, &config)
            .with_faults(&topo, &map, crate::fault::FaultPlan::none())
            .run(&traffic);
        assert_eq!(plain, armed);
        assert_eq!(
            armed.reconfig,
            noc_deadlock::report::ReconfigStats::default()
        );
    }

    #[test]
    fn link_fault_reroutes_and_delivers() {
        let (topo, comm, map, routes, switches) = faultable_ring();
        let vc_map = VcMap::from_design(&topo, &routes);
        // Kill the clockwise 1→2 link mid-run: flow 0→2 must detour.
        let dead = topo.find_link(switches[1], switches[2]).unwrap();
        let plan = crate::fault::FaultPlan::new(vec![crate::fault::FaultEvent {
            cycle: 20,
            kind: crate::fault::FaultKind::LinkDown(dead),
        }]);
        let mut sim = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig::default(),
        )
        .with_faults(&topo, &map, plan);
        let outcome = sim.run(&pressure_traffic());
        assert!(!outcome.deadlocked);
        assert_eq!(outcome.stranded_packets, 0);
        assert_eq!(outcome.unreachable_packets, 0);
        assert!(outcome.unreachable_flows.is_empty());
        assert_eq!(
            outcome.stats.delivered_packets,
            outcome.stats.injected_packets
        );
        assert_eq!(outcome.reconfig.epochs_committed, 1);
        assert!(outcome.reconfig.flows_rerouted >= 1);
        assert_eq!(outcome.reconfig.cyclic_commits, 0);
    }

    #[test]
    fn partition_is_a_typed_unreachable_not_a_timeout() {
        let generated = generators::chain(3, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        comm.add_flow(a, b, 100.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[2]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        let vc_map = VcMap::from_design(&generated.topology, &routes);
        // The destination switch dies mid-run: the flow is stranded.
        let plan = crate::fault::FaultPlan::new(vec![crate::fault::FaultEvent {
            cycle: 30,
            kind: crate::fault::FaultKind::SwitchDown(generated.switches[2]),
        }]);
        let traffic = TrafficConfig {
            packets_per_flow: 10,
            packet_length: 4,
            mean_gap_cycles: 10,
            seed: 1,
            ..TrafficConfig::default()
        };
        let mut sim = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig::default(),
        )
        .with_faults(&generated.topology, &map, plan);
        let outcome = sim.run(&traffic);
        assert!(!outcome.deadlocked, "a partition is not a deadlock");
        assert!(outcome.detection.is_none(), "no knot, no detection");
        assert_eq!(outcome.stranded_packets, 0);
        assert_eq!(outcome.unreachable_flows, vec![FlowId::from_index(0)]);
        assert!(outcome.unreachable_packets >= 1);
        assert_eq!(
            outcome.stats.delivered_packets as usize + outcome.unreachable_packets,
            outcome.stats.injected_packets as usize,
            "delivered + unreachable accounts for every injected packet"
        );
        assert_eq!(outcome.reconfig.events.len(), 1);
        assert_eq!(outcome.reconfig.events[0].flows_unreachable, 1);
        assert_eq!(outcome.reconfig.cyclic_commits, 0);
    }

    #[test]
    fn repair_restores_a_stranded_flow() {
        let generated = generators::chain(3, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        comm.add_flow(a, b, 100.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[2]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        let vc_map = VcMap::from_design(&generated.topology, &routes);
        let fwd = generated
            .topology
            .find_link(generated.switches[1], generated.switches[2])
            .unwrap();
        let bwd = generated
            .topology
            .find_link(generated.switches[2], generated.switches[1])
            .unwrap();
        let plan = crate::fault::FaultPlan::new(vec![
            crate::fault::FaultEvent {
                cycle: 30,
                kind: crate::fault::FaultKind::LinkDown(fwd),
            },
            crate::fault::FaultEvent {
                cycle: 30,
                kind: crate::fault::FaultKind::LinkDown(bwd),
            },
            crate::fault::FaultEvent {
                cycle: 200,
                kind: crate::fault::FaultKind::LinkUp(fwd),
            },
            crate::fault::FaultEvent {
                cycle: 200,
                kind: crate::fault::FaultKind::LinkUp(bwd),
            },
        ]);
        let traffic = TrafficConfig {
            packets_per_flow: 20,
            packet_length: 4,
            mean_gap_cycles: 20,
            seed: 2,
            ..TrafficConfig::default()
        };
        let mut sim = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig::default(),
        )
        .with_faults(&generated.topology, &map, plan);
        let outcome = sim.run(&traffic);
        assert!(!outcome.deadlocked);
        assert_eq!(outcome.stranded_packets, 0);
        assert!(
            outcome.unreachable_flows.is_empty(),
            "the repair puts the flow back in service"
        );
        assert!(
            outcome.unreachable_packets >= 1,
            "the outage dropped traffic"
        );
        assert!(
            outcome.stats.delivered_packets >= 1,
            "traffic after the repair is delivered"
        );
        assert_eq!(
            outcome.stats.delivered_packets as usize + outcome.unreachable_packets,
            outcome.stats.injected_packets as usize
        );
        assert_eq!(outcome.reconfig.cyclic_commits, 0);
    }

    #[test]
    fn fault_on_a_trapped_ring_commits_acyclic_via_the_fallback() {
        // The Figure 1 trap on a bidirectional ring (cyclic committed
        // routes, single VC) plus a pendant switch.  The pendant link dies
        // at cycle 1, while the ring knot is fully formed: the pendant flow
        // is disconnected, but no surviving candidate crosses the dead
        // link, so the committed cycle reaches the fallback loop — which
        // must reroute the ring flows onto up*/down*, drain the knotted
        // worms, and never commit cyclic.
        let mut generated = generators::bidirectional_ring(4, 1.0);
        let n = 4;
        let pendant_switch = generated.topology.add_switch("pendant");
        let (pendant_link, _) =
            generated
                .topology
                .add_bidirectional_link(pendant_switch, generated.switches[0], 1.0);
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..n {
            comm.add_flow(cores[i], cores[(i + 2) % n], 100.0);
        }
        let pendant_core = comm.add_core("cp");
        let pendant_flow = comm.add_flow(pendant_core, cores[2], 100.0);
        let mut map = CoreMap::new(n + 1);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        map.assign(pendant_core, pendant_switch).unwrap();
        let topo = generated.topology;
        let cw: Vec<LinkId> = (0..n)
            .map(|i| {
                topo.find_link(generated.switches[i], generated.switches[(i + 1) % n])
                    .expect("ring link exists")
            })
            .collect();
        let mut routes = RouteSet::new(n + 1);
        for i in 0..n {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([cw[i], cw[(i + 1) % n]]),
            );
        }
        routes.set_route(
            pendant_flow,
            Route::from_links([pendant_link, cw[0], cw[1]]),
        );
        assert!(noc_deadlock::verify::check_deadlock_free(&topo, &routes).is_err());
        let vc_map = VcMap::from_design(&topo, &routes);
        // Fire at cycle 1: the exact detector ends a recovery-less run on
        // the first stalled cycle, so the epoch must land while the trap is
        // formed but before detection condemns it.
        let plan = crate::fault::FaultPlan::new(vec![crate::fault::FaultEvent {
            cycle: 1,
            kind: crate::fault::FaultKind::LinkDown(pendant_link),
        }]);
        let config = VcSimConfig {
            buffer_depth: 1,
            max_cycles: 500_000,
            record_reconfig_routes: true,
            ..VcSimConfig::default()
        };
        let mut sim = VcSimulator::new(&comm, &routes, &vc_map, &SingleVc, &config)
            .with_faults(&topo, &map, plan);
        let outcome = sim.run(&pressure_traffic());
        assert!(!outcome.deadlocked, "the epoch protocol resolves the trap");
        assert_eq!(outcome.stranded_packets, 0);
        assert_eq!(outcome.unreachable_flows, vec![pendant_flow]);
        assert!(outcome.stats.delivered_packets >= 1);
        assert_eq!(
            outcome.stats.delivered_packets as usize + outcome.unreachable_packets,
            outcome.stats.injected_packets as usize
        );
        assert_eq!(outcome.reconfig.cyclic_commits, 0);
        assert!(
            outcome.reconfig.flows_rerouted >= n,
            "every trapped ring flow moves onto up*/down*"
        );
        assert!(
            outcome.reconfig.drain_fallbacks >= 1,
            "the cyclic committed routes force the fallback"
        );
        // The recorded epoch snapshot is deadlock-free end to end.
        assert_eq!(outcome.reconfig_routes.len(), 1);
        let snapshot = &outcome.reconfig_routes[0];
        assert!(noc_deadlock::verify::check_deadlock_free(&topo, snapshot).is_ok());
    }

    #[test]
    #[should_panic(expected = "unknown channel")]
    fn routes_outside_the_vc_map_are_rejected() {
        let (topo, comm, mut routes) = line_design();
        let vc_map = VcMap::from_design(&topo, &routes);
        routes
            .route_mut(FlowId::from_index(0))
            .unwrap()
            .channels_mut()[0] = noc_topology::Channel::new(LinkId::from_index(0), 9);
        let _ = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &AssignedVc,
            &VcSimConfig::default(),
        );
    }
}
