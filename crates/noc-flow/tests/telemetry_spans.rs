//! Span nesting and balance properties under the threaded executor: every
//! span opened on a worker thread closes, sequence windows of parents
//! strictly contain their children, per-thread timestamps are monotone in
//! enter order, and worker threads label themselves for the trace's
//! thread-name metadata.

use noc_flow::executor::{parallel_map_ordered, parallel_map_streaming};
use noc_telemetry::RecorderScope;
use std::collections::BTreeMap;

#[test]
fn executor_spans_balance_and_nest() {
    let scope = RecorderScope::new();

    let items: Vec<usize> = (0..64).collect();
    let doubled = parallel_map_ordered(&items, 4, |&n| {
        let mut outer = noc_telemetry::span("test", format!("outer-{n}"));
        outer.arg("n", n);
        let inner = noc_telemetry::span("test", format!("inner-{n}"));
        drop(inner);
        n * 2
    });
    assert_eq!(doubled, items.iter().map(|n| n * 2).collect::<Vec<_>>());

    let mut seen = 0usize;
    parallel_map_streaming(&items, 3, |_, &n| n, |_, _| seen += 1);
    assert_eq!(seen, items.len());

    let recorder = scope.recorder().clone();
    let snapshot = recorder.snapshot();
    drop(scope);

    // Balance: every opened guard recorded exactly one closed event.
    assert_eq!(recorder.spans_opened(), recorder.spans_closed());
    assert_eq!(snapshot.dropped_spans, 0);
    let test_spans: Vec<_> = snapshot.spans.iter().filter(|s| s.cat == "test").collect();
    assert_eq!(test_spans.len(), 2 * items.len());

    // Nesting: a span's parent (when recorded) strictly contains it in
    // sequence order and lives on the same thread.
    let by_seq: BTreeMap<u64, _> = snapshot.spans.iter().map(|s| (s.enter_seq, s)).collect();
    for span in &snapshot.spans {
        assert!(span.enter_seq < span.exit_seq, "{} unbalanced", span.name);
        if let Some(parent) = by_seq.get(&span.parent_seq) {
            assert!(parent.enter_seq < span.enter_seq);
            assert!(span.exit_seq < parent.exit_seq);
            assert_eq!(parent.tid, span.tid, "{} crossed threads", span.name);
        }
    }
    // Every inner-N span has its outer-N as parent.
    for span in test_spans.iter().filter(|s| s.name.starts_with("inner-")) {
        let parent = by_seq
            .get(&span.parent_seq)
            .unwrap_or_else(|| panic!("{} has no recorded parent", span.name));
        assert_eq!(
            parent.name,
            span.name.replace("inner-", "outer-"),
            "wrong parent"
        );
    }

    // Per-thread monotonicity: enter order implies start-time order.
    let mut last_start: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    let mut in_enter_order: Vec<_> = snapshot.spans.iter().collect();
    in_enter_order.sort_by_key(|s| s.enter_seq);
    for span in in_enter_order {
        if let Some(&(seq, start)) = last_start.get(&span.tid) {
            assert!(seq < span.enter_seq);
            assert!(
                start <= span.start_us,
                "thread {} went back in time",
                span.tid
            );
        }
        last_start.insert(span.tid, (span.enter_seq, span.start_us));
    }

    // The executor labelled its workers.
    assert!(
        snapshot
            .threads
            .iter()
            .any(|(_, label)| label.starts_with("worker-")),
        "no worker thread labels in {:?}",
        snapshot.threads
    );
}
