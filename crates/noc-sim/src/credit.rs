//! Credit-based flow control.
//!
//! In a credit-based wormhole router, the upstream side of every channel
//! keeps a *credit counter* initialised to the depth of the downstream input
//! buffer.  Sending a flit consumes one credit; when the downstream switch
//! forwards (or ejects) a buffered flit it returns the credit, optionally
//! after a propagation delay.  A channel with zero credits cannot accept
//! flits — this is the backpressure that makes wormhole blocking (and
//! therefore deadlock) possible in the first place, so the VC-fidelity
//! engine models it explicitly instead of peeking at buffer occupancy.

use std::collections::VecDeque;

/// The per-channel credit counters of a simulated network.
///
/// # Example
///
/// ```
/// use noc_sim::credit::CreditBook;
///
/// // Two channels, buffers two flits deep, credits return after 1 cycle.
/// let mut credits = CreditBook::new(2, 2, 1);
/// assert_eq!(credits.available(0), 2);
/// credits.consume(0);
/// credits.consume(0);
/// assert_eq!(credits.available(0), 0);
/// credits.give_back(0, 10); // flit left the buffer at cycle 10
/// assert_eq!(credits.available(0), 0); // still in flight
/// credits.collect_returns(11);
/// assert_eq!(credits.available(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditBook {
    /// Credits currently usable by the upstream side, per channel.
    available: Vec<usize>,
    /// Credits travelling back upstream: `(cycle the credit arrives,
    /// channel)`, kept sorted by arrival cycle (give-backs happen in cycle
    /// order).
    in_flight: VecDeque<(u64, usize)>,
    /// Credit propagation delay in cycles (0 = same-cycle return).
    return_latency: u64,
    /// Initial (= maximum) credit count per channel.
    depth: usize,
}

impl CreditBook {
    /// A book for `channels` channels, each backed by a `depth`-flit buffer,
    /// with credits taking `return_latency` cycles to travel back upstream.
    pub fn new(channels: usize, depth: usize, return_latency: u64) -> Self {
        CreditBook {
            available: vec![depth; channels],
            in_flight: VecDeque::new(),
            return_latency,
            depth,
        }
    }

    /// Credits currently available on `channel`.
    pub fn available(&self, channel: usize) -> usize {
        self.available[channel]
    }

    /// `true` when the upstream side may send a flit into `channel`.
    pub fn can_send(&self, channel: usize) -> bool {
        self.available[channel] > 0
    }

    /// Consumes one credit of `channel` (a flit was sent into it).
    ///
    /// # Panics
    ///
    /// Panics if the channel has no credit — callers must check
    /// [`can_send`](Self::can_send) first; sending without credit would
    /// overflow the downstream buffer.
    pub fn consume(&mut self, channel: usize) {
        assert!(
            self.available[channel] > 0,
            "credit underflow on channel {channel}"
        );
        self.available[channel] -= 1;
    }

    /// Returns one credit of `channel` (a flit left its buffer in `cycle`).
    /// With a non-zero return latency the credit becomes available once
    /// [`collect_returns`](Self::collect_returns) reaches
    /// `cycle + return_latency`.
    pub fn give_back(&mut self, channel: usize, cycle: u64) {
        if self.return_latency == 0 {
            self.restore(channel);
        } else {
            self.in_flight
                .push_back((cycle + self.return_latency, channel));
        }
    }

    /// Delivers every in-flight credit due at or before `cycle` (call once
    /// at the start of each simulated cycle).
    pub fn collect_returns(&mut self, cycle: u64) {
        while self.in_flight.front().is_some_and(|&(due, _)| due <= cycle) {
            let (_, channel) = self.in_flight.pop_front().expect("checked non-empty");
            self.restore(channel);
        }
    }

    /// Immediately restores one credit of `channel` (used when a drained
    /// flit is removed from a buffer outside the normal forwarding path).
    pub fn restore(&mut self, channel: usize) {
        assert!(
            self.available[channel] < self.depth,
            "credit overflow on channel {channel}"
        );
        self.available[channel] += 1;
    }

    /// Discards every in-flight credit of the book (used together with
    /// [`restore`](Self::restore) when a drain rewrites buffer contents
    /// wholesale — the caller re-derives availability from the buffers).
    pub fn reset_from_occupancy(&mut self, occupancy: impl IntoIterator<Item = usize>) {
        self.in_flight.clear();
        for (channel, used) in occupancy.into_iter().enumerate() {
            assert!(used <= self.depth, "buffer deeper than the credit depth");
            self.available[channel] = self.depth - used;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_credits_return_instantly() {
        let mut credits = CreditBook::new(1, 2, 0);
        credits.consume(0);
        assert_eq!(credits.available(0), 1);
        credits.give_back(0, 5);
        assert_eq!(credits.available(0), 2);
        assert!(credits.can_send(0));
    }

    #[test]
    fn latency_delays_the_return() {
        let mut credits = CreditBook::new(1, 1, 3);
        credits.consume(0);
        assert!(!credits.can_send(0));
        credits.give_back(0, 10);
        credits.collect_returns(12);
        assert!(!credits.can_send(0), "due at 13, not yet arrived");
        credits.collect_returns(13);
        assert!(credits.can_send(0));
    }

    #[test]
    fn returns_arrive_in_cycle_order() {
        let mut credits = CreditBook::new(2, 2, 2);
        credits.consume(0);
        credits.consume(1);
        credits.give_back(0, 1); // due at 3
        credits.give_back(1, 2); // due at 4
        credits.collect_returns(3);
        assert_eq!(credits.available(0), 2);
        assert_eq!(credits.available(1), 1);
        credits.collect_returns(4);
        assert_eq!(credits.available(1), 2);
    }

    #[test]
    fn occupancy_reset_rebuilds_availability() {
        let mut credits = CreditBook::new(3, 2, 1);
        credits.consume(0);
        credits.consume(0);
        credits.consume(1);
        credits.give_back(0, 7);
        // After a drain the buffers hold 1, 0 and 2 flits respectively.
        credits.reset_from_occupancy([1, 0, 2]);
        assert_eq!(credits.available(0), 1);
        assert_eq!(credits.available(1), 2);
        assert_eq!(credits.available(2), 0);
        // The in-flight return from before the reset was discarded.
        credits.collect_returns(100);
        assert_eq!(credits.available(0), 1);
    }

    #[test]
    #[should_panic(expected = "credit underflow")]
    fn consuming_without_credit_panics() {
        let mut credits = CreditBook::new(1, 1, 0);
        credits.consume(0);
        credits.consume(0);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn restoring_past_depth_panics() {
        let mut credits = CreditBook::new(1, 1, 0);
        credits.restore(0);
    }
}
