//! The PR's acceptance properties on the real `fig_strategy_matrix` sweep
//! (narrowed to a small grid so the suite stays fast):
//!
//! 1. an artifact produced through the job store is **byte-identical** to
//!    one rendered from a direct `FlowSweep` run,
//! 2. a sweep killed mid-run and resumed from the store reproduces those
//!    same bytes while recomputing only the missing tasks, and
//! 3. a re-submitted identical job with the content-hash cache completes
//!    with 100 % cache hits and **zero** `run_task` calls.

use noc_bench::jobs::{job_source_counted, run_resumed};
use noc_bench::{artifact::FigureCli, STRATEGY_MATRIX_NAMES};
use noc_flow::json::{Artifact, ObjectWriter, RawJson, ToJson};
use noc_flow::{
    CycleBreaking, DeadlockStrategy, EscapeChannel, FlowSweep, RecoveryReconfig, ResourceOrdering,
};
use noc_jobs::{ArtifactCache, JobRequest, JobRunner, JobStore};
use noc_topology::benchmarks::Benchmark;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The narrowed matrix grid: D26_media at 6 and 8 switches — 2 points × 4
/// strategies = 8 tasks.
const PARAMS: &str = "{\"benchmarks\":[\"D26_media\"],\"switch_counts\":[6,8]}";
const TASKS: usize = 8;

fn spec() -> JobRequest {
    JobRequest::from_json(&format!(
        "{{\"figure\":\"fig_strategy_matrix\",\"params\":{PARAMS}}}"
    ))
    .expect("valid spec")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "noc-bench-jobs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference bytes: the same narrowed sweep run directly through
/// `FlowSweep` (exactly how `strategy_matrix_sweep` runs the full grids)
/// and rendered exactly how the `fig_strategy_matrix` binary renders its
/// artifact.
fn direct_artifact() -> String {
    let cycle_breaking = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let escape = EscapeChannel::default();
    let recovery = RecoveryReconfig::default();
    let strategies: [&dyn DeadlockStrategy; 4] = [&cycle_breaking, &ordering, &escape, &recovery];
    let points = FlowSweep::new()
        .benchmark(Benchmark::D26Media)
        .switch_counts([6, 8])
        .power_estimates(false)
        .certify(true)
        .run_streaming(&strategies, |_| {})
        .expect("direct sweep succeeds");
    let names = STRATEGY_MATRIX_NAMES.map(str::to_string).to_vec();
    let mut payload = String::new();
    ObjectWriter::new(&mut payload)
        .field("strategies", &names)
        .field("points", &points)
        .finish();
    Artifact::new("fig_strategy_matrix", &RawJson(&payload)).render()
}

#[test]
fn matrix_job_is_byte_identical_to_direct_sweep_across_kill_points() {
    let reference = direct_artifact();

    // Uninterrupted job run: byte-identical to the direct path.
    let dir = temp_dir("matrix-full");
    let calls = Arc::new(AtomicUsize::new(0));
    let source = job_source_counted(&spec(), Some(Arc::clone(&calls))).unwrap();
    let report = JobRunner::new(JobStore::open(&dir, spec()).unwrap())
        .run(source.as_ref())
        .unwrap();
    assert_eq!(report.stats.total, TASKS);
    assert_eq!(calls.load(Ordering::Relaxed), TASKS);
    assert_eq!(
        report.artifact.unwrap().text,
        reference,
        "job-store artifact must match the direct FlowSweep render byte for byte"
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // Killed mid-run (after 3 of 8 tasks), then resumed: same bytes, and
    // only the missing tasks recomputed.
    let dir = temp_dir("matrix-kill");
    let kill_after = 3;
    let calls = Arc::new(AtomicUsize::new(0));
    let source = job_source_counted(&spec(), Some(Arc::clone(&calls))).unwrap();
    let partial = JobRunner::new(JobStore::open(&dir, spec()).unwrap())
        .run_bounded(source.as_ref(), kill_after)
        .unwrap();
    assert!(partial.artifact.is_none(), "budget interrupts the job");
    assert_eq!(calls.load(Ordering::Relaxed), kill_after);

    let resumed = JobRunner::new(JobStore::open(&dir, spec()).unwrap())
        .run(source.as_ref())
        .unwrap();
    assert_eq!(resumed.stats.resumed, kill_after);
    assert_eq!(resumed.stats.computed, TASKS - kill_after);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        TASKS,
        "resume recomputes only the tasks the kill lost"
    );
    assert_eq!(
        resumed.artifact.unwrap().text,
        reference,
        "resumed artifact must be byte-identical to an uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resubmitted_matrix_job_recomputes_nothing_with_the_cache() {
    let cache_dir = temp_dir("matrix-cache");
    let cache = ArtifactCache::new(&cache_dir);

    let first_dir = temp_dir("matrix-first");
    let source = job_source_counted(&spec(), None).unwrap();
    let first = JobRunner::new(JobStore::open(&first_dir, spec()).unwrap())
        .with_cache(&cache)
        .run(source.as_ref())
        .unwrap();
    assert_eq!(first.stats.computed, TASKS);
    let reference = first.artifact.unwrap().text;

    // Identical spec, fresh store: every task comes from the cache and the
    // sweep code never runs.
    let second_dir = temp_dir("matrix-second");
    let calls = Arc::new(AtomicUsize::new(0));
    let source = job_source_counted(&spec(), Some(Arc::clone(&calls))).unwrap();
    let second = JobRunner::new(JobStore::open(&second_dir, spec()).unwrap())
        .with_cache(&cache)
        .run(source.as_ref())
        .unwrap();
    assert_eq!(second.stats.cache_hits, TASKS, "100% cache hits");
    assert_eq!(second.stats.computed, 0);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        0,
        "a re-submitted identical job performs zero recomputation"
    );
    assert_eq!(second.artifact.unwrap().text, reference);

    for dir in [&cache_dir, &first_dir, &second_dir] {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn figure_cli_resume_mode_runs_supported_figures_end_to_end() {
    // `--resume` on a per-point figure: a narrowed fig8 sweep through the
    // store, with the artifact copied to the requested --json path.  (The
    // narrowing rides the spec params only in library runs; the CLI always
    // runs the published grid, so this test drives the library entry the
    // CLI path is a thin wrapper over, then exercises the wrapper's
    // argument plumbing separately.)
    let spec = JobRequest::from_json(
        "{\"figure\":\"fig8_d26_media\",\"params\":{\"switch_counts\":[6,8,10]}}",
    )
    .unwrap();
    let dir = temp_dir("fig8-store");
    let source = job_source_counted(&spec, None).unwrap();
    let report = JobRunner::new(JobStore::open(&dir, spec).unwrap())
        .run(source.as_ref())
        .unwrap();
    assert_eq!(report.stats.total, 3);
    let text = report.artifact.unwrap().text;
    let parsed = noc_flow::json::ParsedArtifact::parse(&text).unwrap();
    assert_eq!(parsed.figure, "fig8_d26_media");
    assert_eq!(parsed.data.as_array().map(<[_]>::len), Some(3));
    std::fs::remove_dir_all(&dir).unwrap();

    // The wrapper itself: no --resume flag means no job-store detour.
    let cli =
        FigureCli::from_iter("fig8_d26_media", ["--threads".to_string(), "1".to_string()]).unwrap();
    assert!(!run_resumed(&cli), "without --resume the direct path runs");

    // And each VcSweepPoint task result is exactly the direct rendering.
    let direct = noc_bench::vc_overhead_sweep(Benchmark::D26Media, [6]);
    let expected = direct[0].to_json();
    assert!(
        text.contains(&expected),
        "job artifact embeds the direct point rendering verbatim"
    );
}
