//! The Channel Dependency Graph (Definition 4).
//!
//! Vertices are channels (physical link + VC); there is an edge from channel
//! `ci` to channel `cj` when at least one route uses `ci` immediately
//! followed by `cj`.  A cycle in this graph is a necessary condition for a
//! routing-level deadlock under wormhole flow control (Dally & Towles), so
//! "deadlock-free" for this suite means "the CDG is acyclic".
//!
//! # Incremental maintenance
//!
//! The removal loop used to rebuild the whole CDG after every cycle break,
//! even though a break only touches the dependencies of the flows it
//! re-routes.  [`Cdg::remove_flow_deps`] / [`Cdg::add_flow_deps`] apply
//! exactly that per-flow delta: they maintain the per-edge flow multiset and
//! drop/create dependency edges as flows leave/enter channel pairs, while a
//! [`CdgDelta`] records which vertices were touched (the *dirty region* the
//! incremental cycle search seeds from) and how many dependencies changed.
//!
//! All cycle queries rank vertices by their [`Channel`] (not by internal
//! node id), so an incrementally maintained CDG answers every query
//! identically to a freshly rebuilt one over the same topology and routes —
//! the equivalence the incremental removal loop is tested against.

use noc_graph::cycles::IncrementalCycleFinder;
use noc_graph::{cycles, DiGraph, IncrementalScc, NodeId};
use noc_routing::RouteSet;
use noc_topology::{Channel, FlowId, Topology};

/// The channel dependency graph of a routed design.
#[derive(Debug, Clone)]
pub struct Cdg {
    graph: DiGraph<Channel, Vec<FlowId>>,
    /// Dense channel-to-node index: `index[link][vc]` holds the node index,
    /// or `usize::MAX` when the channel has no vertex yet.  Links and VC
    /// indices are small and dense, so this replaces a `HashMap<Channel, _>`
    /// on the hot build/update paths.
    index: Vec<Vec<usize>>,
}

/// Bookkeeping of one incremental CDG update (one cycle-break iteration):
/// how many dependency edges changed and which vertices they touched.
#[derive(Debug, Clone, Default)]
pub struct CdgDelta {
    /// Dependency edges that lost their last flow and were removed.
    pub deps_removed: usize,
    /// Dependency edges newly created for a first-time channel pair.
    pub deps_added: usize,
    /// Channel vertices created during the update (new VCs).
    pub channels_added: usize,
    /// Vertices incident to a removed or added dependency edge, with
    /// duplicates; use [`touched_nodes`](Self::touched_nodes) for the
    /// deduplicated set.
    touched: Vec<NodeId>,
}

impl CdgDelta {
    /// The deduplicated, sorted set of vertices incident to changed edges —
    /// the dirty region to seed the next smallest-cycle query from.
    pub fn touched_nodes(&mut self) -> &[NodeId] {
        self.touched.sort();
        self.touched.dedup();
        &self.touched
    }
}

impl Cdg {
    /// Builds the CDG of `routes` over `topology` (Step 2 of Algorithm 1).
    ///
    /// Every channel of the topology becomes a vertex (channels never used by
    /// any route are isolated vertices and can obviously not take part in a
    /// cycle); every consecutive channel pair of every route contributes a
    /// dependency edge annotated with the flows that create it.
    pub fn build(topology: &Topology, routes: &RouteSet) -> Self {
        let graph = DiGraph::with_capacity(topology.channel_count(), routes.flow_count() * 2);
        let mut cdg = Cdg {
            graph,
            index: Vec::new(),
        };
        for channel in topology.channels() {
            let node = cdg.graph.add_node(channel);
            cdg.index_insert(channel, node);
        }
        for (flow, route) in routes.iter() {
            let channels = route.channels();
            for pair in channels.windows(2) {
                cdg.add_dependency(pair[0], pair[1], flow);
            }
        }
        cdg
    }

    /// Looks up the vertex of `channel` in the dense index.
    fn index_get(&self, channel: Channel) -> Option<NodeId> {
        let slot = *self.index.get(channel.link.index())?.get(channel.vc)?;
        (slot != usize::MAX).then(|| NodeId::from_index(slot))
    }

    /// Records `channel -> node` in the dense index, growing it as needed.
    fn index_insert(&mut self, channel: Channel, node: NodeId) {
        let link = channel.link.index();
        if link >= self.index.len() {
            self.index.resize_with(link + 1, Vec::new);
        }
        let row = &mut self.index[link];
        if channel.vc >= row.len() {
            row.resize(channel.vc + 1, usize::MAX);
        }
        row[channel.vc] = node.index();
    }

    fn node_of(&mut self, channel: Channel) -> NodeId {
        if let Some(node) = self.index_get(channel) {
            node
        } else {
            let node = self.graph.add_node(channel);
            self.index_insert(channel, node);
            node
        }
    }

    /// Adds the dependency `from -> to` caused by `flow`, creating vertices
    /// as needed and merging parallel dependencies into one edge.
    pub fn add_dependency(&mut self, from: Channel, to: Channel, flow: FlowId) {
        let from_node = self.node_of(from);
        let to_node = self.node_of(to);
        if let Some(edge) = self.graph.find_edge(from_node, to_node) {
            let flows = self
                .graph
                .edge_weight_mut(edge)
                .expect("edge found above is live");
            if !flows.contains(&flow) {
                flows.push(flow);
            }
        } else {
            self.graph.add_edge(from_node, to_node, vec![flow]);
        }
    }

    /// Creates a vertex for `channel` if it does not have one yet (new VCs
    /// added by a cycle break), counting the creation in `delta`.
    pub fn register_channel(&mut self, channel: Channel, delta: &mut CdgDelta) {
        if self.index_get(channel).is_none() {
            self.node_of(channel);
            delta.channels_added += 1;
        }
    }

    /// Removes the dependencies the route `channels` (the flow's route
    /// *before* a re-route) contributed for `flow`: the flow leaves the
    /// multiset of every consecutive pair, and a dependency edge whose last
    /// flow leaves is removed from the graph (its endpoints join the delta's
    /// dirty region).
    ///
    /// Pairs the flow does not actually sit on are skipped, which makes the
    /// call idempotent and lets routes that cross the same pair twice be
    /// removed with a single linear scan.
    pub fn remove_flow_deps(&mut self, flow: FlowId, channels: &[Channel], delta: &mut CdgDelta) {
        for pair in channels.windows(2) {
            let (Some(from), Some(to)) = (self.index_get(pair[0]), self.index_get(pair[1])) else {
                continue;
            };
            let Some(edge) = self.graph.find_edge(from, to) else {
                continue;
            };
            let flows = self
                .graph
                .edge_weight_mut(edge)
                .expect("edge found above is live");
            let before = flows.len();
            flows.retain(|&f| f != flow);
            if flows.len() == before {
                continue; // second crossing of the same pair, already removed
            }
            if flows.is_empty() {
                self.graph.remove_edge(edge);
                delta.deps_removed += 1;
                delta.touched.push(from);
                delta.touched.push(to);
            }
        }
    }

    /// Adds the dependencies the route `channels` (the flow's route *after*
    /// a re-route) contributes for `flow`.  Newly created dependency edges
    /// join the delta's dirty region; pairs that already carry other flows
    /// only gain a multiset entry and leave the cycle structure untouched.
    pub fn add_flow_deps(&mut self, flow: FlowId, channels: &[Channel], delta: &mut CdgDelta) {
        for pair in channels.windows(2) {
            let from = self.node_of(pair[0]);
            let to = self.node_of(pair[1]);
            if let Some(edge) = self.graph.find_edge(from, to) {
                let flows = self
                    .graph
                    .edge_weight_mut(edge)
                    .expect("edge found above is live");
                if !flows.contains(&flow) {
                    flows.push(flow);
                }
            } else {
                self.graph.add_edge(from, to, vec![flow]);
                delta.deps_added += 1;
                delta.touched.push(from);
                delta.touched.push(to);
            }
        }
    }

    /// Number of channel vertices.
    pub fn channel_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of dependency edges.
    pub fn dependency_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Returns `true` when the CDG has no directed cycle, i.e. the routed
    /// design is deadlock-free.
    pub fn is_acyclic(&self) -> bool {
        cycles::is_acyclic(&self.graph)
    }

    /// Returns the smallest cycle as an ordered channel list
    /// (`GetSmallestCycle` of Algorithm 1), or `None` when acyclic.
    ///
    /// Vertices are ranked by their [`Channel`] (link, then VC), not by
    /// internal node id, so the answer depends only on which dependencies
    /// exist — a freshly built CDG and an incrementally maintained one
    /// return the same cycle for the same design.
    pub fn smallest_cycle(&self) -> Option<Vec<Channel>> {
        cycles::smallest_cycle_by(&self.graph, |n| self.channel_of(n)).map(|c| self.to_channels(c))
    }

    /// [`smallest_cycle`](Self::smallest_cycle) through an
    /// [`IncrementalCycleFinder`], which prunes the search using candidate
    /// cycles cached from earlier queries and the dirty region reported via
    /// [`CdgDelta::touched_nodes`].  The answer is always identical to the
    /// unseeded search; only the work to find it shrinks.
    pub fn smallest_cycle_with(&self, finder: &mut IncrementalCycleFinder) -> Option<Vec<Channel>> {
        finder
            .smallest_cycle_by(&self.graph, |n| self.channel_of(n))
            .map(|c| self.to_channels(c))
    }

    /// [`smallest_cycle_with`](Self::smallest_cycle_with) additionally
    /// seeded by an incrementally maintained SCC partition: the candidate
    /// pool of the finder's verification scan is restricted to the vertices
    /// `scc` reports as lying on cycles, replacing the full Tarjan pass
    /// inside the scan with a bounded dirty-region recompute.
    ///
    /// Callers must mirror every [`CdgDelta::touched_nodes`] dirty set into
    /// `scc` (exactly as they do for `finder`) between structural updates;
    /// the answer is then identical to [`smallest_cycle`](Self::smallest_cycle).
    pub fn smallest_cycle_with_scc(
        &self,
        finder: &mut IncrementalCycleFinder,
        scc: &mut IncrementalScc,
    ) -> Option<Vec<Channel>> {
        let pool = scc.cyclic_nodes(&self.graph);
        finder
            .smallest_cycle_by_with_pool(&self.graph, |n| self.channel_of(n), &pool)
            .map(|c| self.to_channels(c))
    }

    /// The channel ranking shared by all cycle queries.
    fn channel_of(&self, node: NodeId) -> Channel {
        *self.graph.node_weight(node).expect("cycle nodes are valid")
    }

    /// Maps a node cycle back to the channel list the removal loop works on.
    fn to_channels(&self, cycle: Vec<NodeId>) -> Vec<Channel> {
        cycle.into_iter().map(|n| self.channel_of(n)).collect()
    }

    /// Returns all simple cycles up to `limit`, as channel lists (used by the
    /// cycle-order ablation and diagnostics).
    pub fn cycles(&self, limit: usize) -> Vec<Vec<Channel>> {
        cycles::enumerate_cycles(&self.graph, limit)
            .into_iter()
            .map(|cycle| {
                cycle
                    .into_iter()
                    .map(|n| *self.graph.node_weight(n).expect("cycle nodes are valid"))
                    .collect()
            })
            .collect()
    }

    /// The flows responsible for the dependency `from -> to`, if that edge
    /// exists.
    pub fn dependency_flows(&self, from: Channel, to: Channel) -> Option<&[FlowId]> {
        let from_node = self.index_get(from)?;
        let to_node = self.index_get(to)?;
        let edge = self.graph.find_edge(from_node, to_node)?;
        self.graph.edge_weight(edge).map(Vec::as_slice)
    }

    /// Returns `true` if the CDG has a dependency edge `from -> to`.
    pub fn has_dependency(&self, from: Channel, to: Channel) -> bool {
        self.dependency_flows(from, to).is_some()
    }

    /// Iterates over all dependencies as `(from, to, flows)`.
    pub fn dependencies(&self) -> impl Iterator<Item = (Channel, Channel, &[FlowId])> + '_ {
        self.graph.edges().map(move |e| {
            (
                *self.graph.node_weight(e.source).expect("valid node"),
                *self.graph.node_weight(e.target).expect("valid node"),
                e.weight.as_slice(),
            )
        })
    }

    /// Borrow the underlying graph (e.g. for DOT export in diagnostics).
    pub fn graph(&self) -> &DiGraph<Channel, Vec<FlowId>> {
        &self.graph
    }

    /// The flows that contribute a dependency *inside* a cyclic
    /// strongly-connected component — the flows whose packets can
    /// participate in a runtime deadlock (and the set a cycle-exercising
    /// stress workload should press on).  Empty iff the CDG is acyclic.
    /// Sorted, deduplicated.
    pub fn cyclic_flows(&self) -> Vec<FlowId> {
        // A read-only whole-graph pass: run Tarjan over the frozen CSR view,
        // whose node ids coincide with the mutable graph's.
        let frozen = self.graph.freeze();
        let components = noc_graph::scc::cyclic_components(&frozen);
        if components.is_empty() {
            return Vec::new();
        }
        let mut component_of = vec![usize::MAX; self.graph.node_count()];
        for (index, component) in components.iter().enumerate() {
            for &node in component {
                component_of[node.index()] = index;
            }
        }
        let mut flows: Vec<FlowId> = self
            .graph
            .edges()
            .filter(|e| {
                let source = component_of[e.source.index()];
                source != usize::MAX && source == component_of[e.target.index()]
            })
            .flat_map(|e| e.weight.iter().copied())
            .collect();
        flows.sort();
        flows.dedup();
        flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::Route;
    use noc_topology::{CommGraph, CoreMap, LinkId};

    /// The paper's running example: 4-switch unidirectional ring (Figure 1)
    /// with flows F1..F4 whose routes are R1 = {L1,L2,L3}, R2 = {L3,L4},
    /// R3 = {L4,L1}, R4 = {L1,L2} (link indices shifted to 0-based).
    fn figure_1_design() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let sw: Vec<_> = (1..=4).map(|i| topo.add_switch(format!("SW{i}"))).collect();
        let links: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        let mut routes = RouteSet::new(4);
        routes.set_route(
            FlowId::from_index(0),
            Route::from_links([links[0], links[1], links[2]]),
        );
        routes.set_route(
            FlowId::from_index(1),
            Route::from_links([links[2], links[3]]),
        );
        routes.set_route(
            FlowId::from_index(2),
            Route::from_links([links[3], links[0]]),
        );
        routes.set_route(
            FlowId::from_index(3),
            Route::from_links([links[0], links[1]]),
        );
        (topo, routes)
    }

    #[test]
    fn figure_2_cdg_shape() {
        let (topo, routes) = figure_1_design();
        let cdg = Cdg::build(&topo, &routes);
        assert_eq!(cdg.channel_count(), 4);
        // Dependencies: L0->L1 (F1,F4), L1->L2 (F1), L2->L3 (F2), L3->L0 (F3).
        assert_eq!(cdg.dependency_count(), 4);
        let l = |i| Channel::base(LinkId::from_index(i));
        assert_eq!(
            cdg.dependency_flows(l(0), l(1)).unwrap(),
            &[FlowId::from_index(0), FlowId::from_index(3)]
        );
        assert!(cdg.has_dependency(l(1), l(2)));
        assert!(cdg.has_dependency(l(2), l(3)));
        assert!(cdg.has_dependency(l(3), l(0)));
        assert!(!cdg.has_dependency(l(0), l(2)));
    }

    #[test]
    fn figure_2_cdg_is_cyclic_with_a_4_cycle() {
        let (topo, routes) = figure_1_design();
        let cdg = Cdg::build(&topo, &routes);
        assert!(!cdg.is_acyclic());
        let cycle = cdg.smallest_cycle().unwrap();
        assert_eq!(cycle.len(), 4);
    }

    #[test]
    fn figure_3_rerouting_f3_onto_a_new_vc_breaks_the_cycle() {
        // The paper's manual fix: add L1' (a new VC on link L1, our link 0)
        // and re-route F3 = {L4, L1} onto {L4, L1'}.
        let (mut topo, mut routes) = figure_1_design();
        let l0 = LinkId::from_index(0);
        let new_channel = topo.add_vc(l0).unwrap();
        let f3 = FlowId::from_index(2);
        routes.route_mut(f3).unwrap().channels_mut()[1] = new_channel;
        let cdg = Cdg::build(&topo, &routes);
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.channel_count(), 5);
    }

    #[test]
    fn cyclic_flows_names_every_flow_of_the_ring_knot() {
        let (topo, routes) = figure_1_design();
        let cdg = Cdg::build(&topo, &routes);
        // All four channels are one cyclic SCC; every flow contributes a
        // dependency inside it.
        assert_eq!(
            cdg.cyclic_flows(),
            (0..4).map(FlowId::from_index).collect::<Vec<_>>()
        );
        // After the paper's manual fix the CDG is acyclic: no flow can
        // participate in a deadlock.
        let (mut topo, mut routes) = figure_1_design();
        let new_channel = topo.add_vc(LinkId::from_index(0)).unwrap();
        routes
            .route_mut(FlowId::from_index(2))
            .unwrap()
            .channels_mut()[1] = new_channel;
        let cdg = Cdg::build(&topo, &routes);
        assert!(cdg.cyclic_flows().is_empty());
    }

    #[test]
    fn empty_routes_produce_an_acyclic_cdg() {
        let (topo, _) = figure_1_design();
        let routes = RouteSet::new(4);
        let cdg = Cdg::build(&topo, &routes);
        assert!(cdg.is_acyclic());
        assert_eq!(cdg.dependency_count(), 0);
        assert_eq!(cdg.channel_count(), 4);
        assert!(cdg.smallest_cycle().is_none());
    }

    #[test]
    fn parallel_flows_merge_into_one_dependency_edge() {
        let (topo, routes) = figure_1_design();
        let cdg = Cdg::build(&topo, &routes);
        let l = |i| Channel::base(LinkId::from_index(i));
        // Adding the same dependency again for an existing flow must not
        // duplicate the flow entry.
        let mut cdg2 = cdg.clone();
        cdg2.add_dependency(l(0), l(1), FlowId::from_index(0));
        assert_eq!(cdg2.dependency_flows(l(0), l(1)).unwrap().len(), 2);
        assert_eq!(cdg2.dependency_count(), 4);
    }

    #[test]
    fn cycle_enumeration_reports_the_ring_cycle_once() {
        let (topo, routes) = figure_1_design();
        let cdg = Cdg::build(&topo, &routes);
        let cycles = cdg.cycles(16);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
    }

    #[test]
    fn dependencies_iterator_matches_counts() {
        let (topo, routes) = figure_1_design();
        let cdg = Cdg::build(&topo, &routes);
        assert_eq!(cdg.dependencies().count(), cdg.dependency_count());
        let total_flow_refs: usize = cdg.dependencies().map(|(_, _, f)| f.len()).sum();
        assert_eq!(total_flow_refs, 5); // F1 twice, F2, F3, F4 once each
    }

    /// Applies a re-route of `flow` from `old` to `new` as an incremental
    /// delta and returns the delta bookkeeping.
    fn apply_reroute(cdg: &mut Cdg, flow: FlowId, old: &[Channel], new: &[Channel]) -> CdgDelta {
        let mut delta = CdgDelta::default();
        cdg.remove_flow_deps(flow, old, &mut delta);
        cdg.add_flow_deps(flow, new, &mut delta);
        delta
    }

    /// The incremental CDG and a from-scratch rebuild must agree on the
    /// dependency structure: same edges, same flow sets, same smallest
    /// cycle.
    fn assert_structurally_equal(incremental: &Cdg, rebuilt: &Cdg) {
        assert_eq!(incremental.dependency_count(), rebuilt.dependency_count());
        for (from, to, flows) in rebuilt.dependencies() {
            let mut expected: Vec<FlowId> = flows.to_vec();
            expected.sort();
            let mut actual: Vec<FlowId> = incremental
                .dependency_flows(from, to)
                .unwrap_or_else(|| panic!("missing dependency {from} -> {to}"))
                .to_vec();
            actual.sort();
            assert_eq!(actual, expected, "flow set of {from} -> {to}");
        }
        assert_eq!(incremental.smallest_cycle(), rebuilt.smallest_cycle());
    }

    #[test]
    fn incremental_reroute_matches_rebuild() {
        // Re-route F3 of the Figure 1 ring onto a fresh VC (the paper's
        // manual Figure 3 fix), applied as a delta, and compare against a
        // from-scratch build of the updated design.
        let (mut topo, mut routes) = figure_1_design();
        let mut cdg = Cdg::build(&topo, &routes);
        let f3 = FlowId::from_index(2);
        let old: Vec<Channel> = routes.route(f3).unwrap().channels().to_vec();

        let new_channel = topo.add_vc(LinkId::from_index(0)).unwrap();
        routes.route_mut(f3).unwrap().channels_mut()[1] = new_channel;
        let new: Vec<Channel> = routes.route(f3).unwrap().channels().to_vec();

        let mut delta = CdgDelta::default();
        cdg.register_channel(new_channel, &mut delta);
        cdg.remove_flow_deps(f3, &old, &mut delta);
        cdg.add_flow_deps(f3, &new, &mut delta);

        assert_eq!(delta.channels_added, 1);
        assert_eq!(delta.deps_removed, 1, "L3 -> L0 had only F3");
        assert_eq!(delta.deps_added, 1, "L3 -> L0' is new");
        assert!(!delta.touched_nodes().is_empty());
        assert!(cdg.is_acyclic());
        assert_structurally_equal(&cdg, &Cdg::build(&topo, &routes));
    }

    #[test]
    fn removing_one_flow_of_a_shared_dependency_keeps_the_edge() {
        let (topo, routes) = figure_1_design();
        let mut cdg = Cdg::build(&topo, &routes);
        let l = |i| Channel::base(LinkId::from_index(i));
        // L0 -> L1 is carried by F1 and F4; removing F1's route must keep it.
        let f1 = FlowId::from_index(0);
        let old: Vec<Channel> = routes.route(f1).unwrap().channels().to_vec();
        let delta = apply_reroute(&mut cdg, f1, &old, &[]);
        assert!(cdg.has_dependency(l(0), l(1)));
        assert_eq!(cdg.dependency_flows(l(0), l(1)).unwrap().len(), 1);
        // F1 alone carried L1 -> L2.
        assert!(!cdg.has_dependency(l(1), l(2)));
        assert_eq!(delta.deps_removed, 1);
        assert_eq!(delta.deps_added, 0);
    }

    #[test]
    fn remove_flow_deps_is_idempotent_and_handles_double_crossings() {
        // A route crossing the same pair twice: removal must strip the
        // membership once, tolerate the second window, and a repeat call
        // must be a no-op.
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let s1 = topo.add_switch("s1");
        let l: Vec<Channel> = (0..3)
            .map(|_| Channel::base(topo.add_link(s0, s1, 1.0)))
            .collect();
        let (a, b, w) = (l[0], l[1], l[2]);
        let mut routes = RouteSet::new(1);
        let flow = FlowId::from_index(0);
        routes.set_route(flow, Route::new(vec![a, b, w, a, b]));
        let mut cdg = Cdg::build(&topo, &routes);
        assert_eq!(cdg.dependency_count(), 3); // a->b (twice, merged), b->w, w->a

        let old: Vec<Channel> = routes.route(flow).unwrap().channels().to_vec();
        let mut delta = CdgDelta::default();
        cdg.remove_flow_deps(flow, &old, &mut delta);
        assert_eq!(delta.deps_removed, 3);
        assert_eq!(cdg.dependency_count(), 0);

        let mut repeat = CdgDelta::default();
        cdg.remove_flow_deps(flow, &old, &mut repeat);
        assert_eq!(repeat.deps_removed, 0, "second removal is a no-op");
    }

    #[test]
    fn register_channel_is_idempotent() {
        let (topo, routes) = figure_1_design();
        let mut cdg = Cdg::build(&topo, &routes);
        let fresh = Channel::new(LinkId::from_index(0), 1);
        let mut delta = CdgDelta::default();
        cdg.register_channel(fresh, &mut delta);
        cdg.register_channel(fresh, &mut delta);
        assert_eq!(delta.channels_added, 1);
        assert_eq!(cdg.channel_count(), 5);
    }

    #[test]
    fn smallest_cycle_with_finder_matches_plain_query() {
        use noc_graph::cycles::IncrementalCycleFinder;
        let (topo, routes) = figure_1_design();
        let cdg = Cdg::build(&topo, &routes);
        let mut finder = IncrementalCycleFinder::new();
        assert_eq!(cdg.smallest_cycle_with(&mut finder), cdg.smallest_cycle());
        // A second query against unchanged state must agree too.
        assert_eq!(cdg.smallest_cycle_with(&mut finder), cdg.smallest_cycle());
    }

    #[test]
    fn smallest_cycle_with_scc_matches_plain_query() {
        use noc_graph::cycles::IncrementalCycleFinder;
        use noc_graph::IncrementalScc;
        let (mut topo, mut routes) = figure_1_design();
        let mut cdg = Cdg::build(&topo, &routes);
        let mut finder = IncrementalCycleFinder::new();
        let mut scc = IncrementalScc::new();
        assert_eq!(
            cdg.smallest_cycle_with_scc(&mut finder, &mut scc),
            cdg.smallest_cycle()
        );

        // Apply the Figure 3 reroute incrementally and mirror the dirty set
        // into both the finder and the SCC partition.
        let f3 = FlowId::from_index(2);
        let old: Vec<Channel> = routes.route(f3).unwrap().channels().to_vec();
        let new_channel = topo.add_vc(LinkId::from_index(0)).unwrap();
        routes.route_mut(f3).unwrap().channels_mut()[1] = new_channel;
        let new: Vec<Channel> = routes.route(f3).unwrap().channels().to_vec();
        let mut delta = CdgDelta::default();
        cdg.register_channel(new_channel, &mut delta);
        cdg.remove_flow_deps(f3, &old, &mut delta);
        cdg.add_flow_deps(f3, &new, &mut delta);
        for &node in delta.touched_nodes() {
            finder.mark_dirty(node);
            scc.mark_dirty(node);
        }
        assert_eq!(cdg.smallest_cycle(), None);
        assert_eq!(cdg.smallest_cycle_with_scc(&mut finder, &mut scc), None);
    }

    #[test]
    fn xy_routed_mesh_has_acyclic_cdg() {
        // Classic result: dimension-order routing on a mesh is deadlock-free.
        use noc_routing::xy::{route_all_xy, MeshCoords};
        use noc_topology::generators;
        let generated = generators::mesh2d(3, 3, 1.0);
        let coords = MeshCoords::new(3, 3, generated.switches.clone());
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..9).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..9 {
            for j in 0..9 {
                if i != j {
                    comm.add_flow(cores[i], cores[j], 1.0);
                }
            }
        }
        let mut map = CoreMap::new(9);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let routes = route_all_xy(&generated.topology, &comm, &map, &coords).unwrap();
        let cdg = Cdg::build(&generated.topology, &routes);
        assert!(cdg.is_acyclic());
    }
}
