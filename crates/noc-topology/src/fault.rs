//! Runtime fault state and fault-aware connectivity.
//!
//! The rest of the crate models the network a synthesis run *designed*; this
//! module models what is left of it once links or switches have failed at
//! runtime.  [`FaultSet`] is the mutable down/up state a fault plan drives,
//! and [`Topology::connectivity_after`] answers the question the rest of the
//! stack kept deferring to synthesis-time validation: *which flows can still
//! be routed at all on the surviving fabric?*  The simulator uses the answer
//! to surface a typed `Unreachable` outcome for partition-stranded flows
//! instead of letting them rot into an idle-timeout.

use crate::comm::{CommGraph, CoreMap};
use crate::ids::{FlowId, LinkId, SwitchId};
use crate::topology::Topology;
use std::collections::VecDeque;

/// The set of links and switches currently failed.
///
/// A link is *usable* when the link itself and both endpoint switches are
/// up; a failed switch implicitly takes every incident link down with it
/// (repairs restore the link as soon as all three are up again).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSet {
    link_down: Vec<bool>,
    switch_down: Vec<bool>,
}

impl FaultSet {
    /// An all-up fault set sized for `topology`.
    pub fn new(topology: &Topology) -> Self {
        FaultSet {
            link_down: vec![false; topology.link_count()],
            switch_down: vec![false; topology.switch_count()],
        }
    }

    /// Marks a link failed.  Out-of-range ids are ignored.
    pub fn fail_link(&mut self, link: LinkId) {
        if let Some(slot) = self.link_down.get_mut(link.index()) {
            *slot = true;
        }
    }

    /// Repairs a previously failed link.  Out-of-range ids are ignored.
    pub fn repair_link(&mut self, link: LinkId) {
        if let Some(slot) = self.link_down.get_mut(link.index()) {
            *slot = false;
        }
    }

    /// Marks a link *and its reverse twin* (the `target → source` link,
    /// when one exists) failed: a physical cable fault takes down both
    /// directions at once.  Directed routing over a half-failed pair is
    /// never what a runtime fault model means, and a symmetric usable
    /// subgraph is what keeps up*/down* recovery complete on every
    /// connected component.
    pub fn fail_link_pair(&mut self, topology: &Topology, link: LinkId) {
        self.fail_link(link);
        if let Some(reverse) = reverse_of(topology, link) {
            self.fail_link(reverse);
        }
    }

    /// Repairs a link and its reverse twin (the inverse of
    /// [`fail_link_pair`](Self::fail_link_pair)).
    pub fn repair_link_pair(&mut self, topology: &Topology, link: LinkId) {
        self.repair_link(link);
        if let Some(reverse) = reverse_of(topology, link) {
            self.repair_link(reverse);
        }
    }

    /// Marks a switch failed (taking all incident links down with it).
    pub fn fail_switch(&mut self, switch: SwitchId) {
        if let Some(slot) = self.switch_down.get_mut(switch.index()) {
            *slot = true;
        }
    }

    /// Repairs a previously failed switch.
    pub fn repair_switch(&mut self, switch: SwitchId) {
        if let Some(slot) = self.switch_down.get_mut(switch.index()) {
            *slot = false;
        }
    }

    /// `true` when the switch itself is up.
    pub fn switch_up(&self, switch: SwitchId) -> bool {
        !self
            .switch_down
            .get(switch.index())
            .copied()
            .unwrap_or(true)
    }

    /// `true` when the link and both endpoint switches are up.
    pub fn link_usable(&self, topology: &Topology, link: LinkId) -> bool {
        if self.link_down.get(link.index()).copied().unwrap_or(true) {
            return false;
        }
        let Some(l) = topology.link(link) else {
            return false;
        };
        self.switch_up(l.source) && self.switch_up(l.target)
    }

    /// `true` when nothing is failed.
    pub fn is_empty(&self) -> bool {
        !self.link_down.iter().any(|&d| d) && !self.switch_down.iter().any(|&d| d)
    }

    /// Number of links individually failed (not counting links taken down
    /// by a failed endpoint switch).
    pub fn failed_link_count(&self) -> usize {
        self.link_down.iter().filter(|&&d| d).count()
    }

    /// Number of failed switches.
    pub fn failed_switch_count(&self) -> usize {
        self.switch_down.iter().filter(|&&d| d).count()
    }
}

/// The `target → source` twin of a link, when the topology has one.
fn reverse_of(topology: &Topology, link: LinkId) -> Option<LinkId> {
    let l = topology.link(link)?;
    topology.find_link(l.target, l.source)
}

/// Connectivity of the surviving fabric, as computed by
/// [`Topology::connectivity_after`].
///
/// Components are the *physical* (undirected) connected components over
/// usable links — the criterion under which a recovery routing function
/// (up*/down* over bidirectional fabrics) can still reach a destination.
/// Failed switches belong to no component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connectivity {
    /// `component[switch]` — component index, `None` for failed switches.
    component: Vec<Option<usize>>,
    component_count: usize,
}

impl Connectivity {
    /// Component index of a switch (`None` when the switch is failed or
    /// out of range).
    pub fn component_of(&self, switch: SwitchId) -> Option<usize> {
        self.component.get(switch.index()).copied().flatten()
    }

    /// Number of surviving components (0 for an all-failed fabric).
    pub fn component_count(&self) -> usize {
        self.component_count
    }

    /// `true` when both switches are up and in the same surviving
    /// component.
    pub fn connected(&self, from: SwitchId, to: SwitchId) -> bool {
        match (self.component_of(from), self.component_of(to)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// `true` when every up switch is in one component (vacuously true
    /// when at most one switch survives).
    pub fn is_fully_connected(&self) -> bool {
        self.component_count <= 1
    }

    /// The flows whose mapped endpoint switches are no longer connected —
    /// the traffic a partition strands.  Unmapped cores count as
    /// disconnected (the design was invalid to begin with).
    pub fn disconnected_flows(&self, comm: &CommGraph, map: &CoreMap) -> Vec<FlowId> {
        let mut stranded = Vec::new();
        for (flow_id, flow) in comm.flows() {
            let connected = match (map.switch_of(flow.source), map.switch_of(flow.destination)) {
                (Some(src), Some(dst)) => src == dst || self.connected(src, dst),
                _ => false,
            };
            if !connected {
                stranded.push(flow_id);
            }
        }
        stranded
    }
}

impl Topology {
    /// Connected components of the fabric that survives `faults`.
    ///
    /// Links are treated as undirected for this check (physical
    /// connectivity); a link contributes only when it is
    /// [usable](FaultSet::link_usable).  This closes the gap where a
    /// partition was only ever rejected by synthesis-time validation:
    /// callers can now ask, mid-run, which flows a fault storm stranded.
    pub fn connectivity_after(&self, faults: &FaultSet) -> Connectivity {
        let n = self.switch_count();
        let mut component: Vec<Option<usize>> = vec![None; n];
        let mut count = 0usize;
        for start in 0..n {
            let start_id = SwitchId::from_index(start);
            if component[start].is_some() || !faults.switch_up(start_id) {
                continue;
            }
            component[start] = Some(count);
            let mut queue = VecDeque::from([start_id]);
            while let Some(sw) = queue.pop_front() {
                let neighbors: Vec<SwitchId> = self
                    .links_from(sw)
                    .filter(|&(id, _)| faults.link_usable(self, id))
                    .map(|(_, l)| l.target)
                    .chain(
                        self.links_to(sw)
                            .filter(|&(id, _)| faults.link_usable(self, id))
                            .map(|(_, l)| l.source),
                    )
                    .collect();
                for next in neighbors {
                    if component[next.index()].is_none() {
                        component[next.index()] = Some(count);
                        queue.push_back(next);
                    }
                }
            }
            count += 1;
        }
        Connectivity {
            component,
            component_count: count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// 4-switch bidirectional ring plus its switch ids.
    fn ring() -> (Topology, Vec<SwitchId>) {
        let generated = generators::bidirectional_ring(4, 1.0);
        (generated.topology, generated.switches)
    }

    #[test]
    fn no_faults_is_one_component() {
        let (topo, sw) = ring();
        let faults = FaultSet::new(&topo);
        assert!(faults.is_empty());
        let conn = topo.connectivity_after(&faults);
        assert_eq!(conn.component_count(), 1);
        assert!(conn.is_fully_connected());
        assert!(conn.connected(sw[0], sw[3]));
    }

    #[test]
    fn one_ring_segment_down_stays_connected() {
        let (topo, sw) = ring();
        let mut faults = FaultSet::new(&topo);
        // Fail both directions of the 0-1 segment: the ring degrades to a
        // chain but stays connected.
        let fwd = topo.find_link(sw[0], sw[1]).unwrap();
        let back = topo.find_link(sw[1], sw[0]).unwrap();
        faults.fail_link(fwd);
        faults.fail_link(back);
        assert_eq!(faults.failed_link_count(), 2);
        let conn = topo.connectivity_after(&faults);
        assert!(conn.is_fully_connected());
        assert!(conn.connected(sw[0], sw[1]), "the long way around survives");
    }

    #[test]
    fn two_ring_segments_down_partition() {
        let (topo, sw) = ring();
        let mut faults = FaultSet::new(&topo);
        for (a, b) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            faults.fail_link(topo.find_link(sw[a], sw[b]).unwrap());
        }
        let conn = topo.connectivity_after(&faults);
        assert_eq!(conn.component_count(), 2);
        assert!(conn.connected(sw[1], sw[2]));
        assert!(conn.connected(sw[3], sw[0]));
        assert!(!conn.connected(sw[0], sw[1]));
        assert!(!conn.connected(sw[2], sw[3]));
    }

    #[test]
    fn switch_failure_takes_incident_links_down() {
        let (topo, sw) = ring();
        let mut faults = FaultSet::new(&topo);
        faults.fail_switch(sw[1]);
        let fwd = topo.find_link(sw[0], sw[1]).unwrap();
        assert!(!faults.link_usable(&topo, fwd));
        assert_eq!(faults.failed_link_count(), 0, "the link itself is intact");
        let conn = topo.connectivity_after(&faults);
        assert_eq!(conn.component_of(sw[1]), None);
        assert!(!conn.connected(sw[0], sw[1]));
        // The three survivors still form one component.
        assert!(conn.connected(sw[0], sw[2]));
        assert!(conn.is_fully_connected());
    }

    #[test]
    fn repair_restores_usability_and_components() {
        let (topo, sw) = ring();
        let mut faults = FaultSet::new(&topo);
        for (a, b) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            faults.fail_link(topo.find_link(sw[a], sw[b]).unwrap());
        }
        assert_eq!(topo.connectivity_after(&faults).component_count(), 2);
        faults.repair_link(topo.find_link(sw[0], sw[1]).unwrap());
        let conn = topo.connectivity_after(&faults);
        assert!(conn.is_fully_connected(), "one repaired direction suffices");
        assert!(!faults.is_empty(), "other faults persist");
    }

    #[test]
    fn pair_failure_takes_both_directions_and_repairs_them() {
        let (topo, sw) = ring();
        let fwd = topo.find_link(sw[0], sw[1]).unwrap();
        let bwd = topo.find_link(sw[1], sw[0]).unwrap();
        let mut faults = FaultSet::new(&topo);
        faults.fail_link_pair(&topo, fwd);
        assert!(!faults.link_usable(&topo, fwd));
        assert!(
            !faults.link_usable(&topo, bwd),
            "the reverse twin fails too"
        );
        assert_eq!(faults.failed_link_count(), 2);
        assert!(
            topo.connectivity_after(&faults).is_fully_connected(),
            "the ring survives one severed segment"
        );
        faults.repair_link_pair(&topo, bwd);
        assert!(
            faults.is_empty(),
            "repairing either direction heals the pair"
        );
    }

    #[test]
    fn disconnected_flows_names_exactly_the_stranded_traffic() {
        let (topo, sw) = ring();
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("c{i}"))).collect();
        let across = comm.add_flow(cores[0], cores[2], 1.0); // 0 -> 2: severed
        let local = comm.add_flow(cores[1], cores[2], 1.0); // 1 -> 2: survives
        let same = comm.add_flow(cores[3], cores[3], 1.0); // same-switch
        let mut map = CoreMap::new(4);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, sw[i]).unwrap();
        }
        let mut faults = FaultSet::new(&topo);
        for (a, b) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            faults.fail_link(topo.find_link(sw[a], sw[b]).unwrap());
        }
        let conn = topo.connectivity_after(&faults);
        let stranded = conn.disconnected_flows(&comm, &map);
        assert_eq!(stranded, vec![across]);
        let _ = (local, same);
    }
}
