//! Summary of what a deadlock-removal run did.

use crate::cost::Direction;

/// One cycle-breaking step of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakStep {
    /// Length (in channels) of the cycle that was broken.
    pub cycle_len: usize,
    /// Direction chosen by the cost comparison.
    pub direction: Direction,
    /// Number of VCs added by this step (the cost of the chosen plan).
    pub vcs_added: usize,
    /// Number of flows that were re-routed onto the new VCs.
    pub flows_rerouted: usize,
}

/// Aggregate report returned by [`remove_deadlocks`](crate::removal::remove_deadlocks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemovalReport {
    /// Total number of virtual channels added to the topology.
    pub added_vcs: usize,
    /// Number of cycles broken (iterations of the main loop).
    pub cycles_broken: usize,
    /// Per-step details, in the order the cycles were broken.
    pub steps: Vec<BreakStep>,
    /// `true` when the input CDG was already acyclic and nothing was done —
    /// the common case the paper highlights for D26_media.
    pub already_deadlock_free: bool,
}

impl RemovalReport {
    /// Number of steps broken in the forward direction.
    pub fn forward_breaks(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.direction == Direction::Forward)
            .count()
    }

    /// Number of steps broken in the backward direction.
    pub fn backward_breaks(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.direction == Direction::Backward)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_counters() {
        let report = RemovalReport {
            added_vcs: 3,
            cycles_broken: 2,
            steps: vec![
                BreakStep {
                    cycle_len: 4,
                    direction: Direction::Forward,
                    vcs_added: 1,
                    flows_rerouted: 2,
                },
                BreakStep {
                    cycle_len: 3,
                    direction: Direction::Backward,
                    vcs_added: 2,
                    flows_rerouted: 1,
                },
            ],
            already_deadlock_free: false,
        };
        assert_eq!(report.forward_breaks(), 1);
        assert_eq!(report.backward_breaks(), 1);
    }

    #[test]
    fn default_report_is_empty() {
        let report = RemovalReport::default();
        assert_eq!(report.added_vcs, 0);
        assert_eq!(report.cycles_broken, 0);
        assert!(!report.already_deadlock_free);
        assert!(report.steps.is_empty());
    }
}
