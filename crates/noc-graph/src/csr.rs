//! Frozen compressed-sparse-row graph view and the [`GraphView`] trait.
//!
//! [`DiGraph`] is the *mutable* representation: adjacency is a `Vec` of edge
//! ids per node, each hop through it touches the edge arena, and removed
//! edges are filtered on every iteration.  That is the right shape while the
//! deadlock-removal loop is editing the CDG, but it is cache-hostile for the
//! read-only full-graph passes (Tarjan SCC, global cycle scans, all-source
//! shortest paths) that dominate at 10k+ switches.
//!
//! [`CsrGraph`] is the *frozen* counterpart: a rebuilt-on-freeze compressed
//! sparse row view holding dense offset/target arrays, so a node's
//! successors are one contiguous slice with no removed-edge filtering and no
//! pointer chasing.  Freezing costs one `O(V + E)` pass
//! ([`DiGraph::freeze`]); afterwards every traversal touches memory
//! sequentially.
//!
//! The [`GraphView`] trait abstracts over both representations, which is how
//! the algorithm modules ([`scc`](crate::scc), [`cycles`](crate::cycles),
//! [`knots`](crate::knots), [`traversal`](crate::traversal),
//! [`shortest_path`](crate::shortest_path)) run unchanged on either.
//!
//! # Iteration-order contract
//!
//! Freezing preserves the [`DiGraph`]'s live-edge iteration order per node —
//! adjacency is *not* re-sorted.  Every algorithm whose result could depend
//! on neighbour order therefore returns **bit-identical** output on a graph
//! and on its frozen view; the canonical-search-order contract of
//! [`cycles`](crate::cycles) (rank-sorted scans) is likewise unaffected.

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Read-only view of a directed multigraph, implemented by both the mutable
/// [`DiGraph`] and the frozen [`CsrGraph`].
///
/// All algorithm entry points in this crate are generic over `GraphView`, so
/// callers pick the representation that fits the access pattern: the live
/// `DiGraph` while editing, a frozen `CsrGraph` for repeated read-only
/// passes.
pub trait GraphView {
    /// Number of nodes ever added (ids are dense in `0..node_count()`).
    fn node_count(&self) -> usize;

    /// `true` if `node` is a valid id for this graph.
    fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.node_count()
    }

    /// All node ids in ascending order.
    fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Successor nodes of `node`, one entry per live edge (parallel edges
    /// yield duplicates), in the representation's storage order.
    fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_;

    /// Predecessor nodes of `node`, one entry per live edge.
    fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_;

    /// Live outgoing arcs of `node` as `(edge id, target)` pairs, in the same
    /// order as [`successors`](Self::successors).
    fn out_arcs(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_;

    /// `true` if there is at least one live edge `source -> target`.
    fn has_edge(&self, source: NodeId, target: NodeId) -> bool {
        self.successors(source).any(|succ| succ == target)
    }
}

impl<N, E> GraphView for DiGraph<N, E> {
    fn node_count(&self) -> usize {
        DiGraph::node_count(self)
    }

    fn contains_node(&self, node: NodeId) -> bool {
        DiGraph::contains_node(self, node)
    }

    fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        DiGraph::successors(self, node)
    }

    fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        DiGraph::predecessors(self, node)
    }

    fn out_arcs(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.out_edges(node).map(|e| (e.id, e.target))
    }

    fn has_edge(&self, source: NodeId, target: NodeId) -> bool {
        DiGraph::has_edge(self, source, target)
    }
}

/// Frozen compressed-sparse-row snapshot of a [`DiGraph`]'s live edges.
///
/// Node and edge ids are shared with the source graph: node `n` of the CSR
/// view is node `n` of the `DiGraph`, and the edge ids reported by
/// [`out_arcs`](GraphView::out_arcs) index the source graph's edge arena, so
/// payload lookups ([`DiGraph::edge_weight`]) keep working on ids obtained
/// from the frozen view.  Removed edges are dropped at freeze time, not
/// filtered per iteration.
///
/// # Example
///
/// ```
/// use noc_graph::{CsrGraph, DiGraph, GraphView, scc};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, a, ());
/// let frozen = g.freeze();
/// assert_eq!(frozen.edge_count(), 2);
/// // The same algorithms run on both representations with identical output.
/// assert_eq!(scc::tarjan_scc(&frozen), scc::tarjan_scc(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `out_offsets[v]..out_offsets[v + 1]` indexes `v`'s slice of
    /// `out_targets` / `out_edge_ids`.
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    out_edge_ids: Vec<EdgeId>,
    /// `in_offsets[v]..in_offsets[v + 1]` indexes `v`'s slice of `in_sources`.
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
}

impl CsrGraph {
    /// Freezes the live edges of `graph` into a CSR view, preserving the
    /// per-node edge iteration order (see the [module docs](self)).
    pub fn freeze<N, E>(graph: &DiGraph<N, E>) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(m);
        let mut out_edge_ids = Vec::with_capacity(m);
        out_offsets.push(0);
        for node in graph.node_ids() {
            for edge in graph.out_edges(node) {
                out_targets.push(edge.target);
                out_edge_ids.push(edge.id);
            }
            out_offsets.push(out_targets.len());
        }
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources = Vec::with_capacity(m);
        in_offsets.push(0);
        for node in graph.node_ids() {
            in_sources.extend(graph.predecessors(node));
            in_offsets.push(in_sources.len());
        }
        CsrGraph {
            out_offsets,
            out_targets,
            out_edge_ids,
            in_offsets,
            in_sources,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of (live-at-freeze-time) edges.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// The successor slice of `node` (empty for out-of-range ids).
    pub fn out_neighbors(&self, node: NodeId) -> &[NodeId] {
        let v = node.index();
        if v + 1 >= self.out_offsets.len() {
            return &[];
        }
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// The predecessor slice of `node` (empty for out-of-range ids).
    pub fn in_neighbors(&self, node: NodeId) -> &[NodeId] {
        let v = node.index();
        if v + 1 >= self.in_offsets.len() {
            return &[];
        }
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// The outgoing edge ids of `node`, parallel to
    /// [`out_neighbors`](Self::out_neighbors).  Ids index the source
    /// [`DiGraph`]'s edge arena.
    pub fn out_edge_ids(&self, node: NodeId) -> &[EdgeId] {
        let v = node.index();
        if v + 1 >= self.out_offsets.len() {
            return &[];
        }
        &self.out_edge_ids[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// Number of outgoing edges of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_neighbors(node).len()
    }

    /// Number of incoming edges of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_neighbors(node).len()
    }
}

impl GraphView for CsrGraph {
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_neighbors(node).iter().copied()
    }

    fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_neighbors(node).iter().copied()
    }

    fn out_arcs(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.out_edge_ids(node)
            .iter()
            .copied()
            .zip(self.out_neighbors(node).iter().copied())
    }

    fn has_edge(&self, source: NodeId, target: NodeId) -> bool {
        self.out_neighbors(source).contains(&target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DiGraph<&'static str, u32>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let n = vec![g.add_node("a"), g.add_node("b"), g.add_node("c")];
        g.add_edge(n[0], n[1], 1);
        g.add_edge(n[1], n[2], 2);
        g.add_edge(n[2], n[0], 3);
        g.add_edge(n[0], n[2], 4);
        (g, n)
    }

    #[test]
    fn freeze_preserves_counts_and_adjacency() {
        let (g, n) = sample();
        let frozen = g.freeze();
        assert_eq!(frozen.node_count(), g.node_count());
        assert_eq!(frozen.edge_count(), g.edge_count());
        for node in g.node_ids() {
            let live: Vec<NodeId> = DiGraph::successors(&g, node).collect();
            assert_eq!(frozen.out_neighbors(node), live.as_slice());
            let preds: Vec<NodeId> = DiGraph::predecessors(&g, node).collect();
            assert_eq!(frozen.in_neighbors(node), preds.as_slice());
        }
        assert!(frozen.has_edge(n[0], n[2]));
        assert!(!frozen.has_edge(n[2], n[1]));
    }

    #[test]
    fn freeze_drops_removed_edges() {
        let (mut g, n) = sample();
        let e = g.find_edge(n[0], n[1]).unwrap();
        g.remove_edge(e);
        let frozen = g.freeze();
        assert_eq!(frozen.edge_count(), 3);
        assert_eq!(frozen.out_neighbors(n[0]), &[n[2]]);
        assert_eq!(frozen.out_degree(n[0]), 1);
        assert_eq!(frozen.in_degree(n[1]), 0);
    }

    #[test]
    fn edge_ids_point_back_into_the_source_graph() {
        let (g, n) = sample();
        let frozen = g.freeze();
        for node in g.node_ids() {
            for (id, target) in GraphView::out_arcs(&frozen, node) {
                assert_eq!(g.edge_endpoints(id), Some((node, target)));
            }
        }
        let ids = frozen.out_edge_ids(n[0]);
        assert_eq!(ids.len(), 2);
        assert_eq!(g.edge_weight(ids[0]), Some(&1));
        assert_eq!(g.edge_weight(ids[1]), Some(&4));
    }

    #[test]
    fn parallel_edges_survive_freezing() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        let frozen = g.freeze();
        assert_eq!(frozen.out_neighbors(a), &[b, b]);
        assert_eq!(frozen.edge_count(), 2);
    }

    #[test]
    fn out_of_range_nodes_have_empty_slices() {
        let (g, _) = sample();
        let frozen = g.freeze();
        let bogus = NodeId::from_index(99);
        assert!(frozen.out_neighbors(bogus).is_empty());
        assert!(frozen.in_neighbors(bogus).is_empty());
        assert!(!GraphView::contains_node(&frozen, bogus));
    }

    #[test]
    fn empty_graph_freezes() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let frozen = g.freeze();
        assert!(frozen.is_empty());
        assert_eq!(frozen.node_count(), 0);
        assert_eq!(frozen.edge_count(), 0);
    }

    #[test]
    fn graph_view_is_consistent_across_representations() {
        let (g, _) = sample();
        let frozen = g.freeze();
        for node in g.node_ids() {
            let a: Vec<NodeId> = GraphView::successors(&g, node).collect();
            let b: Vec<NodeId> = GraphView::successors(&frozen, node).collect();
            assert_eq!(a, b);
            let pa: Vec<NodeId> = GraphView::predecessors(&g, node).collect();
            let pb: Vec<NodeId> = GraphView::predecessors(&frozen, node).collect();
            assert_eq!(pa, pb);
            let aa: Vec<_> = GraphView::out_arcs(&g, node).collect();
            let ab: Vec<_> = GraphView::out_arcs(&frozen, node).collect();
            assert_eq!(aa, ab);
        }
    }
}
