//! Dynamic validation (beyond the paper's analytical argument): simulate
//! each benchmark design before and after deadlock removal under a
//! high-pressure wormhole workload and report whether deadlocks occur.
//!
//! Both runs use the VC-fidelity engine (`noc_sim::vc_engine`) with the
//! `AssignedVc` policy, so the "after" run actually rides the VCs the
//! removal algorithm assigned, and deadlock is decided by the exact
//! wait-for-graph detector rather than a timeout guess.
//!
//! The per-benchmark simulations run sharded across worker threads; pass
//! `--threads <n>` to pin the worker count (default: auto-size to the
//! machine) and `--json <path>` to write the per-benchmark outcomes as a
//! JSON artifact.

use noc_bench::artifact::FigureArgs;
use noc_bench::{artifact, simulate_before_after_all, SimValidation};
use noc_topology::benchmarks::Benchmark;

fn main() {
    let args = FigureArgs::parse("sim_validation");
    println!("# Wormhole simulation: deadlock behaviour before/after removal (10-switch designs)");
    println!(
        "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16} {:>12}",
        "benchmark",
        "cdg_cyclic",
        "original_deadlock",
        "fixed_deadlock",
        "fixed_delivered",
        "fixed_latency",
        "fixed_p95"
    );
    let validations: Vec<SimValidation> =
        simulate_before_after_all(&Benchmark::ALL, 10, args.threads);
    for v in &validations {
        println!(
            "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16.1} {:>12}",
            v.benchmark,
            v.original_cdg_cyclic,
            v.original_deadlocked,
            v.fixed_deadlocked,
            v.fixed_delivered,
            v.fixed_mean_latency,
            v.fixed_p95_latency
        );
    }
    if let Some(path) = args.json {
        artifact::write_json_artifact(&path, "sim_validation", &validations);
    }
}
