//! The staged `DesignFlow` builder.
//!
//! One type per pipeline stage, each owning the artifacts it produced, each
//! transition re-running the matching `validate_*`/`verify` check:
//!
//! ```text
//! DesignFlow ──synthesize──▶ SynthesizedStage ──route──▶ RoutedStage
//!     ──resolve_deadlocks──▶ DeadlockFreeStage ──simulate──▶ SimulatedStage
//! ```
//!
//! Branching is free: `route` and `resolve_deadlocks` take `&self` and copy
//! internally, so comparing two routers or two deadlock strategies on the
//! same synthesized design needs no hand-cloning at the call site.

use crate::error::FlowError;
use crate::router::{Router, ShortestPathRouter};
use crate::strategy::{DeadlockResolution, DeadlockStrategy};
use noc_deadlock::certify::{certify_deadlock_free, CertifyReport};
use noc_deadlock::report::ReconfigStats;
use noc_deadlock::vcmap::VcMap;
use noc_deadlock::verify::{check_deadlock_free, DeadlockCycle};
use noc_power::{NetworkEstimate, NetworkPowerModel, TechParams};
use noc_routing::updown::route_all_updown;
use noc_routing::validate::validate_routes;
use noc_routing::RouteSet;
use noc_sim::{
    DeadlockEvent, DrainStats, FaultPlan, SimConfig, SimOutcome, Simulator, TrafficConfig,
    VcPolicy, VcSimConfig, VcSimOutcome, VcSimulator,
};
use noc_synth::{synthesize, SynthesisConfig};
use noc_topology::benchmarks::Benchmark;
use noc_topology::validate::validate_design;
use noc_topology::{CommGraph, CoreMap, FlowId, SwitchId, Topology};

/// Entry point of the pipeline: a communication specification waiting for a
/// topology.
///
/// # Example
///
/// The full Figure-8-style pipeline in one chain:
///
/// ```
/// use noc_flow::{CycleBreaking, DesignFlow, ShortestPathRouter};
/// use noc_power::TechParams;
/// use noc_sim::TrafficConfig;
/// use noc_synth::SynthesisConfig;
/// use noc_topology::benchmarks::Benchmark;
///
/// let simulated = DesignFlow::from_benchmark(Benchmark::D26Media)
///     .synthesize(SynthesisConfig::with_switches(12))?
///     .route(&ShortestPathRouter::default())?
///     .resolve_deadlocks(&CycleBreaking::default())?
///     .simulate(&TrafficConfig::default())?;
/// assert!(!simulated.outcome().deadlocked);
/// let estimate = simulated.power(TechParams::default());
/// assert!(estimate.total_power_mw > 0.0);
/// # Ok::<(), noc_flow::FlowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesignFlow {
    comm: CommGraph,
    label: String,
}

impl DesignFlow {
    /// Starts a flow from one of the paper's six SoC benchmarks.
    pub fn from_benchmark(benchmark: Benchmark) -> Self {
        DesignFlow {
            comm: benchmark.comm_graph(),
            label: benchmark.name().to_string(),
        }
    }

    /// Starts a flow from an arbitrary communication graph.
    pub fn from_comm(comm: CommGraph) -> Self {
        DesignFlow {
            comm,
            label: "custom".to_string(),
        }
    }

    /// Overrides the label used in diagnostics and sweep output.
    pub fn labelled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The communication graph this flow will design for.
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// The flow's label (benchmark name, or `"custom"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Synthesizes an application-specific topology, attachment and default
    /// shortest-path routes, then validates the design triple and the routes
    /// (the checks `tests/end_to_end.rs` used to run by hand).
    pub fn synthesize(self, config: SynthesisConfig) -> Result<SynthesizedStage, FlowError> {
        let mut span = noc_telemetry::span("stage", "synthesize");
        span.arg("label", self.label.as_str());
        // The synthesizer routes with a shortest-path router under the
        // configured cost model; remember which one so route_default() can
        // report the scheme accurately.
        let default_router = ShortestPathRouter::with_cost(config.link_cost)
            .name()
            .to_string();
        let design = synthesize(&self.comm, &config)?;
        validate_design(&design.topology, &self.comm, &design.core_map)?;
        validate_routes(
            &design.topology,
            &self.comm,
            &design.core_map,
            &design.routes,
        )?;
        Ok(SynthesizedStage {
            label: self.label,
            comm: self.comm,
            topology: design.topology,
            core_map: design.core_map,
            default_routes: Some((default_router, design.routes)),
        })
    }

    /// Imports a hand-built topology and core attachment instead of
    /// synthesizing one (validated like a synthesized design).  The
    /// resulting stage has no default routes; route it with an explicit
    /// [`Router`].
    pub fn with_design(
        self,
        topology: Topology,
        core_map: CoreMap,
    ) -> Result<SynthesizedStage, FlowError> {
        validate_design(&topology, &self.comm, &core_map)?;
        Ok(SynthesizedStage {
            label: self.label,
            comm: self.comm,
            topology,
            core_map,
            default_routes: None,
        })
    }
}

/// A validated design triple (topology, communication graph, attachment),
/// ready to be routed.
#[derive(Debug, Clone)]
pub struct SynthesizedStage {
    label: String,
    comm: CommGraph,
    topology: Topology,
    core_map: CoreMap,
    /// `(router name, routes)` the synthesizer produced, when synthesized.
    default_routes: Option<(String, RouteSet)>,
}

impl SynthesizedStage {
    /// The synthesized (or imported) topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The core-to-switch attachment.
    pub fn core_map(&self) -> &CoreMap {
        &self.core_map
    }

    /// The communication graph.
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// The flow's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Routes every flow with the given scheme and validates the result.
    ///
    /// Takes `&self` so several routers can be compared on one synthesized
    /// design without caller-side cloning.
    pub fn route(&self, router: &dyn Router) -> Result<RoutedStage, FlowError> {
        let mut span = noc_telemetry::span("stage", "route");
        span.arg("router", router.name());
        let routes = router.route(&self.topology, &self.comm, &self.core_map)?;
        validate_routes(&self.topology, &self.comm, &self.core_map, &routes)?;
        Ok(RoutedStage {
            label: self.label.clone(),
            router: router.name().to_string(),
            comm: self.comm.clone(),
            topology: self.topology.clone(),
            core_map: self.core_map.clone(),
            routes,
        })
    }

    /// Adopts the deadlock-oblivious shortest-path routes the synthesizer
    /// already computed (the paper's input routing) without re-routing.
    ///
    /// # Errors
    ///
    /// [`FlowError::NoDefaultRoutes`] if the design was imported via
    /// [`DesignFlow::with_design`] rather than synthesized.
    pub fn route_default(&self) -> Result<RoutedStage, FlowError> {
        let (router, routes) = self
            .default_routes
            .clone()
            .ok_or(FlowError::NoDefaultRoutes)?;
        Ok(RoutedStage {
            label: self.label.clone(),
            router,
            comm: self.comm.clone(),
            topology: self.topology.clone(),
            core_map: self.core_map.clone(),
            routes,
        })
    }
}

/// A fully routed design — the exact triple the deadlock analysis consumes.
#[derive(Debug, Clone)]
pub struct RoutedStage {
    label: String,
    router: String,
    comm: CommGraph,
    topology: Topology,
    core_map: CoreMap,
    routes: RouteSet,
}

impl RoutedStage {
    /// The routed topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The route set, one route per flow.
    pub fn routes(&self) -> &RouteSet {
        &self.routes
    }

    /// The communication graph.
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// The core-to-switch attachment.
    pub fn core_map(&self) -> &CoreMap {
        &self.core_map
    }

    /// The flow's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Name of the router that produced the routes.
    pub fn router_name(&self) -> &str {
        &self.router
    }

    /// `true` when the CDG of the routed design is already acyclic.
    pub fn is_deadlock_free(&self) -> bool {
        check_deadlock_free(&self.topology, &self.routes).is_ok()
    }

    /// The smallest CDG cycle of the design, if any — evidence that the
    /// design can deadlock.
    pub fn deadlock_evidence(&self) -> Option<DeadlockCycle> {
        check_deadlock_free(&self.topology, &self.routes).err()
    }

    /// Certifies the routed design with the exact static verifier
    /// (`noc_deadlock::certify`): unlike
    /// [`is_deadlock_free`](Self::is_deadlock_free), which condemns any CDG
    /// cycle, this searches for a genuinely trappable configuration and
    /// returns a three-valued verdict with a machine-checkable witness.
    pub fn certify(&self) -> CertifyReport {
        let _span = noc_telemetry::span("stage", "certify");
        certify_deadlock_free(&self.topology, &self.routes)
    }

    /// VC overhead resource ordering *would* cost on this design, without
    /// modifying anything (the dry-run baseline of Figures 8 and 9).
    pub fn resource_ordering_overhead(&self) -> usize {
        noc_deadlock::resource_ordering::resource_ordering_overhead(&self.topology, &self.routes)
    }

    /// Number of flows that actually enter the switch network.
    pub fn active_flow_count(&self) -> usize {
        self.routes.active_flow_count()
    }

    /// Makes the design deadlock-free with the given strategy, then
    /// re-verifies the CDG is acyclic and the routes still valid.
    ///
    /// Takes `&self` and copies internally, so the paper's central
    /// comparison — the same routed design under
    /// [`CycleBreaking`](crate::CycleBreaking) versus
    /// [`ResourceOrdering`](crate::ResourceOrdering) — is two calls on one
    /// stage, and swapping strategies is a one-line change.
    pub fn resolve_deadlocks(
        &self,
        strategy: &dyn DeadlockStrategy,
    ) -> Result<DeadlockFreeStage, FlowError> {
        let mut span = noc_telemetry::span("stage", "resolve_deadlocks");
        span.arg("strategy", strategy.name());
        let (topology, routes, resolution) =
            strategy.resolve_cloned(&self.topology, &self.routes)?;
        check_deadlock_free(&topology, &routes).map_err(FlowError::StillCyclic)?;
        validate_routes(&topology, &self.comm, &self.core_map, &routes)?;
        Ok(DeadlockFreeStage {
            label: self.label.clone(),
            router: self.router.clone(),
            comm: self.comm.clone(),
            topology,
            core_map: self.core_map.clone(),
            routes,
            resolution,
        })
    }

    /// Simulates the routed design as-is — useful for demonstrating that a
    /// deadlock-prone design really does deadlock at runtime.  Diagnostic,
    /// not a stage transition: deadlock-prone designs stay on this stage.
    pub fn simulate(&self, traffic: &TrafficConfig) -> SimOutcome {
        self.simulate_with(&SimConfig::default(), traffic)
    }

    /// Same as [`simulate`](Self::simulate) with an explicit [`SimConfig`].
    pub fn simulate_with(&self, sim: &SimConfig, traffic: &TrafficConfig) -> SimOutcome {
        let _span = noc_telemetry::span("stage", "simulate");
        Simulator::new(&self.topology, &self.comm, &self.routes, sim).run(traffic)
    }

    /// The VC assignment of the routed design (all base VCs before any
    /// deadlock strategy ran), as the simulator's [`VcMap`] seam.
    pub fn vc_map(&self) -> VcMap {
        VcMap::from_design(&self.topology, &self.routes)
    }

    /// Simulates the routed design on the VC-fidelity engine under the
    /// given [`VcPolicy`] — the diagnostic counterpart of
    /// [`simulate`](Self::simulate), with exact wait-for-graph deadlock
    /// detection instead of the timeout heuristic.
    pub fn simulate_vc(
        &self,
        policy: &dyn VcPolicy,
        sim: &VcSimConfig,
        traffic: &TrafficConfig,
    ) -> VcSimOutcome {
        let _span = noc_telemetry::span("stage", "simulate_vc");
        let vc_map = self.vc_map();
        VcSimulator::new(&self.comm, &self.routes, &vc_map, policy, sim).run(traffic)
    }

    /// Simulates the routed design on the VC-fidelity engine with the
    /// DBR-style dynamic drain armed: detected deadlocks are drained onto
    /// the up*/down* recovery routing function rooted at `root` — the
    /// runtime execution of the
    /// [`RecoveryReconfig`](crate::RecoveryReconfig) strategy.
    ///
    /// # Errors
    ///
    /// [`FlowError::Routing`] when the recovery routing function cannot
    /// serve the design (e.g. a flow with no up*/down* path).
    pub fn simulate_vc_recovering(
        &self,
        policy: &dyn VcPolicy,
        sim: &VcSimConfig,
        traffic: &TrafficConfig,
        root: SwitchId,
    ) -> Result<VcSimOutcome, FlowError> {
        let _span = noc_telemetry::span("stage", "simulate_vc_recovering");
        let recovery = route_all_updown(&self.topology, &self.comm, &self.core_map, root)?;
        let vc_map = self.vc_map();
        Ok(
            VcSimulator::new(&self.comm, &self.routes, &vc_map, policy, sim)
                .with_recovery(recovery)
                .run(traffic),
        )
    }

    /// Area/power estimate of the design as routed (the "original" bars of
    /// Figure 10).
    pub fn power(&self, params: TechParams) -> NetworkEstimate {
        let _span = noc_telemetry::span("stage", "power");
        NetworkPowerModel::new(params).estimate(&self.topology, &self.comm, &self.routes)
    }
}

/// A design whose CDG has been verified acyclic: it cannot deadlock.
#[derive(Debug, Clone)]
pub struct DeadlockFreeStage {
    label: String,
    router: String,
    comm: CommGraph,
    topology: Topology,
    core_map: CoreMap,
    routes: RouteSet,
    resolution: DeadlockResolution,
}

impl DeadlockFreeStage {
    /// The repaired topology (with any extra VCs).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The repaired route set.
    pub fn routes(&self) -> &RouteSet {
        &self.routes
    }

    /// The communication graph.
    pub fn comm(&self) -> &CommGraph {
        &self.comm
    }

    /// The core-to-switch attachment.
    pub fn core_map(&self) -> &CoreMap {
        &self.core_map
    }

    /// The flow's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Name of the router that produced the input routes.
    pub fn router_name(&self) -> &str {
        &self.router
    }

    /// What the deadlock strategy did (VCs added, cycles broken, reports).
    pub fn resolution(&self) -> &DeadlockResolution {
        &self.resolution
    }

    /// Certifies the repaired design with the exact static verifier
    /// (`noc_deadlock::certify`).  For stages built by
    /// [`RoutedStage::resolve_deadlocks`] the CDG is already acyclic, so
    /// this takes the fast path and must report
    /// [`CertifyVerdict::CertifiedFree`](noc_deadlock::certify::CertifyVerdict) —
    /// the sound end of the three-way verifier lattice.
    pub fn certify(&self) -> CertifyReport {
        let _span = noc_telemetry::span("stage", "certify");
        certify_deadlock_free(&self.topology, &self.routes)
    }

    /// Simulates the repaired design under the given workload, after
    /// re-validating route/topology consistency (the stage's defensive
    /// contract check; it cannot fail for stages built by
    /// [`RoutedStage::resolve_deadlocks`], which already validated).
    ///
    /// The run's outcome (including the `deadlocked` flag, which must stay
    /// `false` for a correctly repaired design) is data on the returned
    /// stage, not an error.
    pub fn simulate(&self, traffic: &TrafficConfig) -> Result<SimulatedStage, FlowError> {
        self.simulate_with(&SimConfig::default(), traffic)
    }

    /// Same as [`simulate`](Self::simulate) with an explicit [`SimConfig`].
    pub fn simulate_with(
        &self,
        sim: &SimConfig,
        traffic: &TrafficConfig,
    ) -> Result<SimulatedStage, FlowError> {
        let _span = noc_telemetry::span("stage", "simulate");
        validate_routes(&self.topology, &self.comm, &self.core_map, &self.routes)?;
        let outcome = Simulator::new(&self.topology, &self.comm, &self.routes, sim).run(traffic);
        Ok(SimulatedStage {
            stage: self.clone(),
            outcome,
            vc: None,
        })
    }

    /// The strategy's VC assignment (per-link VC counts, per-hop flow
    /// assignments) as the [`VcMap`] the VC-fidelity simulator consumes.
    pub fn vc_map(&self) -> VcMap {
        VcMap::from_design(&self.topology, &self.routes)
    }

    /// Simulates the repaired design on the VC-fidelity engine: buffers per
    /// (link × VC) sized from the strategy's [`VcMap`], credit-based flow
    /// control, the given [`VcPolicy`] deciding how the assignment is used
    /// at runtime, and exact wait-for-graph deadlock detection.
    ///
    /// The returned stage carries the usual [`SimOutcome`] view plus the
    /// VC-run details ([`SimulatedStage::vc_details`]).
    pub fn simulate_vc(
        &self,
        policy: &dyn VcPolicy,
        sim: &VcSimConfig,
        traffic: &TrafficConfig,
    ) -> Result<SimulatedStage, FlowError> {
        let _span = noc_telemetry::span("stage", "simulate_vc");
        validate_routes(&self.topology, &self.comm, &self.core_map, &self.routes)?;
        let vc_map = self.vc_map();
        let outcome = VcSimulator::new(&self.comm, &self.routes, &vc_map, policy, sim).run(traffic);
        Ok(SimulatedStage::from_vc_outcome(self.clone(), outcome))
    }

    /// Simulates the repaired design on the VC-fidelity engine with the
    /// fault seam armed: the scheduled [`FaultPlan`] is injected mid-run
    /// and every fault epoch live-reconfigures the affected flows through
    /// the cycle-safe two-phase protocol (up*/down* reroutes on the
    /// surviving fabric, scoped drains as the fallback).
    ///
    /// The returned stage's [`VcRunDetails`] carry the reconfiguration
    /// statistics and the typed unreachable outcome.
    pub fn simulate_vc_faulted(
        &self,
        policy: &dyn VcPolicy,
        sim: &VcSimConfig,
        traffic: &TrafficConfig,
        plan: FaultPlan,
    ) -> Result<SimulatedStage, FlowError> {
        let _span = noc_telemetry::span("stage", "simulate_vc_faulted");
        validate_routes(&self.topology, &self.comm, &self.core_map, &self.routes)?;
        let vc_map = self.vc_map();
        let outcome = VcSimulator::new(&self.comm, &self.routes, &vc_map, policy, sim)
            .with_faults(&self.topology, &self.core_map, plan)
            .run(traffic);
        Ok(SimulatedStage::from_vc_outcome(self.clone(), outcome))
    }

    /// Area/power estimate of the repaired design (the "removal" /
    /// "ordering" bars of Figure 10, depending on the strategy used).
    pub fn power(&self, params: TechParams) -> NetworkEstimate {
        let _span = noc_telemetry::span("stage", "power");
        NetworkPowerModel::new(params).estimate(&self.topology, &self.comm, &self.routes)
    }
}

/// What the VC-fidelity engine adds on top of the plain [`SimOutcome`]:
/// which policy ran, how a deadlock (if any) was established, and the
/// dynamic-drain statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct VcRunDetails {
    /// Name of the [`VcPolicy`] the run used.
    pub policy: String,
    /// The first deadlock detection, if any.
    pub detection: Option<DeadlockEvent>,
    /// DBR-style drain statistics (all zero without recovery routes).
    pub drain: DrainStats,
    /// Live-reconfiguration statistics (default-empty unless the run was
    /// armed with a [`FaultPlan`] via
    /// [`DeadlockFreeStage::simulate_vc_faulted`]).
    pub reconfig: ReconfigStats,
    /// Flows a fault left with no route on the surviving fabric, sorted.
    pub unreachable_flows: Vec<FlowId>,
    /// Packets charged to unreachable flows instead of delivery.
    pub unreachable_packets: usize,
}

/// A deadlock-free design plus the outcome of simulating it.
#[derive(Debug, Clone)]
pub struct SimulatedStage {
    stage: DeadlockFreeStage,
    outcome: SimOutcome,
    /// VC-fidelity run details when the stage came from
    /// [`DeadlockFreeStage::simulate_vc`]; `None` for the original engine.
    vc: Option<VcRunDetails>,
}

impl SimulatedStage {
    /// Wraps a VC-fidelity outcome, exposing its stats through the common
    /// [`SimOutcome`] view and keeping the engine-specific details aside.
    pub(crate) fn from_vc_outcome(stage: DeadlockFreeStage, outcome: VcSimOutcome) -> Self {
        SimulatedStage {
            stage,
            outcome: SimOutcome {
                stats: outcome.stats,
                deadlocked: outcome.deadlocked,
                stranded_packets: outcome.stranded_packets,
            },
            vc: Some(VcRunDetails {
                policy: outcome.policy,
                detection: outcome.detection,
                drain: outcome.drain,
                reconfig: outcome.reconfig,
                unreachable_flows: outcome.unreachable_flows,
                unreachable_packets: outcome.unreachable_packets,
            }),
        }
    }

    /// The simulation outcome (stats, deadlock flag, stranded packets).
    pub fn outcome(&self) -> &SimOutcome {
        &self.outcome
    }

    /// VC-fidelity details (policy, detection, drain) when the stage was
    /// produced by [`DeadlockFreeStage::simulate_vc`].
    pub fn vc_details(&self) -> Option<&VcRunDetails> {
        self.vc.as_ref()
    }

    /// The design that was simulated.
    pub fn design(&self) -> &DeadlockFreeStage {
        &self.stage
    }

    /// Consumes the stage, yielding the bare outcome.
    pub fn into_outcome(self) -> SimOutcome {
        self.outcome
    }

    /// Area/power estimate of the simulated design.
    pub fn power(&self, params: TechParams) -> NetworkEstimate {
        self.stage.power(params)
    }
}
