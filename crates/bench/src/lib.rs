//! Experiment harness reproducing the evaluation of the DATE 2010 paper.
//!
//! Each public function regenerates the data behind one figure or one prose
//! claim of the paper's Section 5 by driving the [`noc_flow`] pipeline API;
//! the binaries in `src/bin/` print the corresponding rows/series and the
//! Criterion benches in `benches/` measure the algorithm's runtime (the
//! paper's "runs within minutes" claim) and the ablations.
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Figure 8 (D26_media, VCs vs. switch count) | [`vc_overhead_sweep`] | `fig8_d26_media` |
//! | Figure 9 (D36_8, VCs vs. switch count) | [`vc_overhead_sweep`] | `fig9_d36_8` |
//! | Figure 10 (normalised power, 6 benchmarks @ 14 switches) | [`power_comparison`] | `fig10_power` |
//! | 88 % VC / 66 % area / 8.6 % power savings, < 5 % overhead | [`summary`] | `summary_table` |
//! | dynamic deadlock validation (beyond the paper) | [`simulate_before_after`] | `sim_validation` |
//! | four-way strategy comparison (beyond the paper) | [`strategy_matrix_sweep`] | `fig_strategy_matrix` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_deadlock::removal::RemovalConfig;
use noc_deadlock::report::RemovalReport;
use noc_flow::json::{ObjectWriter, ToJson};
use noc_flow::{
    CycleBreaking, DeadlockStrategy, DesignFlow, EscapeChannel, FlowSweep, RecoveryReconfig,
    ResourceOrdering, RoutedStage, SweepPoint, SweepProgress,
};
use noc_sim::{SimConfig, TrafficConfig};
use noc_synth::{synthesize, SynthesisConfig, SynthesisError, SynthesizedDesign};
use noc_topology::benchmarks::Benchmark;

/// One point of the Figure 8 / Figure 9 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VcSweepPoint {
    /// Switch count of the synthesized topology.
    pub switch_count: usize,
    /// Extra VCs required by the resource-ordering baseline.
    pub resource_ordering_vcs: usize,
    /// Extra VCs added by the deadlock-removal algorithm.
    pub deadlock_removal_vcs: usize,
    /// Number of CDG cycles the removal algorithm had to break.
    pub cycles_broken: usize,
}

/// Synthesizes the benchmark at the given switch count with the default
/// (spanning-tree backbone) synthesis configuration.
pub fn synthesize_benchmark(
    benchmark: Benchmark,
    switch_count: usize,
) -> Result<SynthesizedDesign, SynthesisError> {
    let comm = benchmark.comm_graph();
    synthesize(&comm, &SynthesisConfig::with_switches(switch_count))
}

/// Regenerates the data of Figures 8 and 9: for each switch count, the VC
/// overhead of resource ordering versus the deadlock-removal algorithm.
///
/// Infeasible switch counts (zero, or more switches than cores) are skipped,
/// like the paper's figures only plot feasible topologies.
///
/// # Panics
///
/// Panics if synthesis or removal fails, which does not happen for the
/// bundled benchmarks (they are exercised by the test suite).
pub fn vc_overhead_sweep(
    benchmark: Benchmark,
    switch_counts: impl IntoIterator<Item = usize>,
) -> Vec<VcSweepPoint> {
    vc_overhead_sweep_streaming(benchmark, switch_counts, 0, |_| {})
}

/// [`vc_overhead_sweep`] on the parallel executor, streaming a progress
/// notification to `observer` as each grid point completes (completion
/// order); the returned points are in switch-count order regardless.
///
/// `threads` is the executor worker count (`0` auto-sizes to the machine,
/// the figure binaries expose it as `--threads N`).
pub fn vc_overhead_sweep_streaming(
    benchmark: Benchmark,
    switch_counts: impl IntoIterator<Item = usize>,
    threads: usize,
    observer: impl FnMut(SweepProgress<'_>),
) -> Vec<VcSweepPoint> {
    let removal = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let points = FlowSweep::new()
        .benchmark(benchmark)
        .switch_counts(switch_counts)
        .power_estimates(false) // Figures 8/9 only plot VC counts
        .worker_threads(threads)
        .run_streaming(&[&removal, &ordering], observer)
        .unwrap_or_else(|e| panic!("sweep failed for {benchmark}: {e}"));
    points
        .into_iter()
        .map(|p| {
            let removal = p.outcome(removal.name()).expect("strategy ran");
            let ordering = p.outcome(ordering.name()).expect("strategy ran");
            VcSweepPoint {
                switch_count: p.switch_count,
                resource_ordering_vcs: ordering.added_vcs,
                deadlock_removal_vcs: removal.added_vcs,
                cycles_broken: removal.cycles_broken,
            }
        })
        .collect()
}

/// One bar group of Figure 10 plus the area/overhead numbers quoted in the
/// paper's prose.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerComparison {
    /// Benchmark name as used in the paper.
    pub benchmark: String,
    /// Power (mW) of the unmodified, deadlock-prone design.
    pub original_power_mw: f64,
    /// Power (mW) after the deadlock-removal algorithm.
    pub removal_power_mw: f64,
    /// Power (mW) after resource ordering.
    pub ordering_power_mw: f64,
    /// Area (µm²) of the unmodified design.
    pub original_area_um2: f64,
    /// Area (µm²) after the deadlock-removal algorithm.
    pub removal_area_um2: f64,
    /// Area (µm²) after resource ordering.
    pub ordering_area_um2: f64,
    /// Extra VCs: removal algorithm.
    pub removal_vcs: usize,
    /// Extra VCs: resource ordering.
    pub ordering_vcs: usize,
}

impl PowerComparison {
    /// Resource-ordering power normalised to the removal algorithm (the bar
    /// plotted in Figure 10; > 1 means ordering burns more power).
    pub fn normalised_ordering_power(&self) -> f64 {
        self.ordering_power_mw / self.removal_power_mw
    }

    /// Power overhead of the removal algorithm over the original design.
    pub fn removal_power_overhead(&self) -> f64 {
        self.removal_power_mw / self.original_power_mw - 1.0
    }

    /// Area overhead of the removal algorithm over the original design.
    pub fn removal_area_overhead(&self) -> f64 {
        self.removal_area_um2 / self.original_area_um2 - 1.0
    }

    /// Area saving of the removal algorithm versus resource ordering,
    /// counted (as the paper does) on the VC-buffer area the two schemes add.
    pub fn area_saving_vs_ordering(&self) -> f64 {
        let removal_added = self.removal_area_um2 - self.original_area_um2;
        let ordering_added = self.ordering_area_um2 - self.original_area_um2;
        if ordering_added <= 0.0 {
            0.0
        } else {
            1.0 - removal_added / ordering_added
        }
    }

    /// VC saving of the removal algorithm versus resource ordering.
    pub fn vc_saving_vs_ordering(&self) -> f64 {
        if self.ordering_vcs == 0 {
            0.0
        } else {
            1.0 - self.removal_vcs as f64 / self.ordering_vcs as f64
        }
    }

    /// Power saving of the removal algorithm versus resource ordering.
    pub fn power_saving_vs_ordering(&self) -> f64 {
        1.0 - self.removal_power_mw / self.ordering_power_mw
    }
}

/// Regenerates one bar group of Figure 10 (default: 14-switch topologies, as
/// in the paper).
pub fn power_comparison(benchmark: Benchmark, switch_count: usize) -> PowerComparison {
    power_comparisons([benchmark], switch_count, 0, |_| {})
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("switch count {switch_count} infeasible for {benchmark}"))
}

/// Regenerates a whole Figure 10 bar row in one parallel sweep: every
/// benchmark at the same switch count, sharded across `threads` worker
/// threads (`0` auto-sizes), with per-point progress streamed to
/// `observer`.  Infeasible benchmarks are skipped, so the result can be
/// shorter than the input.
pub fn power_comparisons(
    benchmarks: impl IntoIterator<Item = Benchmark>,
    switch_count: usize,
    threads: usize,
    observer: impl FnMut(SweepProgress<'_>),
) -> Vec<PowerComparison> {
    let removal_strategy = CycleBreaking::default();
    let ordering_strategy = ResourceOrdering;
    let points = FlowSweep::new()
        .benchmarks(benchmarks)
        .switch_counts([switch_count])
        .worker_threads(threads)
        .run_streaming(&[&removal_strategy, &ordering_strategy], observer)
        .unwrap_or_else(|e| panic!("flow failed at {switch_count} switches: {e}"));
    points
        .iter()
        .map(|p| comparison_from_point(p, removal_strategy.name(), ordering_strategy.name()))
        .collect()
}

/// Extracts the Figure 10 numbers from one power-enabled sweep point.
fn comparison_from_point(
    point: &SweepPoint,
    removal_name: &str,
    ordering_name: &str,
) -> PowerComparison {
    let removal = point.outcome(removal_name).expect("strategy ran");
    let ordering = point.outcome(ordering_name).expect("strategy ran");
    let enabled = "power estimates are on by default";
    PowerComparison {
        benchmark: point.benchmark.name().to_string(),
        original_power_mw: point.original_power_mw.expect(enabled),
        removal_power_mw: removal.power_mw.expect(enabled),
        ordering_power_mw: ordering.power_mw.expect(enabled),
        original_area_um2: point.original_area_um2.expect(enabled),
        removal_area_um2: removal.area_um2.expect(enabled),
        ordering_area_um2: ordering.area_um2.expect(enabled),
        removal_vcs: removal.added_vcs,
        ordering_vcs: ordering.added_vcs,
    }
}

/// Aggregate savings over a set of comparisons — the numbers quoted in the
/// paper's abstract and Section 5 prose (88 % fewer VCs, 66 % less area,
/// 8.6 % less power, < 5 % overhead versus no removal).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Mean VC saving of the removal algorithm versus resource ordering.
    pub mean_vc_saving: f64,
    /// Mean added-area saving versus resource ordering.
    pub mean_area_saving: f64,
    /// Mean power saving versus resource ordering.
    pub mean_power_saving: f64,
    /// Mean power overhead versus the unmodified (deadlock-prone) design.
    pub mean_power_overhead: f64,
    /// Mean area overhead versus the unmodified design.
    pub mean_area_overhead: f64,
}

/// Aggregates per-benchmark comparisons into the headline percentages.
pub fn summary(comparisons: &[PowerComparison]) -> Summary {
    let n = comparisons.len().max(1) as f64;
    // Benchmarks where neither scheme adds anything are excluded from the
    // saving averages (0/0), matching how the paper reports averages over
    // benchmarks that need deadlock handling.
    let saving_set: Vec<&PowerComparison> =
        comparisons.iter().filter(|c| c.ordering_vcs > 0).collect();
    let saving_n = saving_set.len().max(1) as f64;
    Summary {
        mean_vc_saving: saving_set
            .iter()
            .map(|c| c.vc_saving_vs_ordering())
            .sum::<f64>()
            / saving_n,
        mean_area_saving: saving_set
            .iter()
            .map(|c| c.area_saving_vs_ordering())
            .sum::<f64>()
            / saving_n,
        mean_power_saving: saving_set
            .iter()
            .map(|c| c.power_saving_vs_ordering())
            .sum::<f64>()
            / saving_n,
        mean_power_overhead: comparisons
            .iter()
            .map(|c| c.removal_power_overhead())
            .sum::<f64>()
            / n,
        mean_area_overhead: comparisons
            .iter()
            .map(|c| c.removal_area_overhead())
            .sum::<f64>()
            / n,
    }
}

/// Outcome of the dynamic (simulation) validation of one design.
#[derive(Debug, Clone, PartialEq)]
pub struct SimValidation {
    /// Benchmark name.
    pub benchmark: String,
    /// Whether the CDG of the original design is cyclic.
    pub original_cdg_cyclic: bool,
    /// Whether the original design deadlocked in simulation.
    pub original_deadlocked: bool,
    /// Whether the removal-fixed design deadlocked in simulation (must be
    /// `false`).
    pub fixed_deadlocked: bool,
    /// Packets delivered by the fixed design.
    pub fixed_delivered: usize,
    /// Mean packet latency of the fixed design in cycles.
    pub fixed_mean_latency: f64,
}

/// Simulates a benchmark design before and after deadlock removal under a
/// high-pressure workload (the experiment behind the `sim_validation`
/// binary; the paper argues this analytically, we also check it dynamically).
pub fn simulate_before_after(benchmark: Benchmark, switch_count: usize) -> SimValidation {
    let routed = routed_benchmark(benchmark, switch_count);
    let sim_config = SimConfig {
        buffer_depth: 1,
        deadlock_threshold: 500,
        max_cycles: 400_000,
    };
    let traffic = TrafficConfig {
        packets_per_flow: 6,
        packet_length: 8,
        mean_gap_cycles: 0,
        seed: 7,
    };

    let original_cdg_cyclic = !routed.is_deadlock_free();
    let original = routed.simulate_with(&sim_config, &traffic);

    let fixed = routed
        .resolve_deadlocks(&CycleBreaking::default())
        .expect("removal succeeds on the benchmark suite")
        .simulate_with(&sim_config, &traffic)
        .expect("repaired design is consistent")
        .into_outcome();

    SimValidation {
        benchmark: benchmark.name().to_string(),
        original_cdg_cyclic,
        original_deadlocked: original.deadlocked,
        fixed_deadlocked: fixed.deadlocked,
        fixed_delivered: fixed.stats.delivered_packets,
        fixed_mean_latency: fixed.stats.mean_latency(),
    }
}

/// [`simulate_before_after`] for a whole benchmark list, sharded across
/// `threads` scoped worker threads (`0` auto-sizes to the machine); results
/// come back in input order.  This is what gives the `sim_validation`
/// binary its `--threads` knob — the per-benchmark simulations are fully
/// independent, like the sweep grid points.
pub fn simulate_before_after_all(
    benchmarks: &[Benchmark],
    switch_count: usize,
    threads: usize,
) -> Vec<SimValidation> {
    noc_flow::executor::parallel_map_ordered(benchmarks, threads, |&benchmark| {
        simulate_before_after(benchmark, switch_count)
    })
}

/// The names of the four deadlock strategies of the comparison matrix,
/// derived from `StrategyKind::ALL` so the two can never drift apart.
pub const STRATEGY_MATRIX_NAMES: [&str; 4] = [
    noc_flow::StrategyKind::ALL[0].name(),
    noc_flow::StrategyKind::ALL[1].name(),
    noc_flow::StrategyKind::ALL[2].name(),
    noc_flow::StrategyKind::ALL[3].name(),
];

/// Sweeps **all four** deadlock strategies — the paper's cycle breaking and
/// resource ordering plus escape-channel avoidance and recovery-based
/// reconfiguration — over the Figure 8 (D26_media) and Figure 9 (D36_8)
/// benchmark grids, the data behind the `fig_strategy_matrix` binary.
///
/// Each grid point charges every strategy against the same routed design;
/// the executor shards the (point × strategy) tasks across `threads` worker
/// threads (`0` auto-sizes).  Progress streams to `observer` per completed
/// point, per figure grid; the returned points are the Figure 8 grid
/// followed by the Figure 9 grid, each in switch-count order.
pub fn strategy_matrix_sweep(
    threads: usize,
    mut observer: impl FnMut(SweepProgress<'_>),
) -> Vec<SweepPoint> {
    let cycle_breaking = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let escape = EscapeChannel::default();
    let recovery = RecoveryReconfig::default();
    let strategies: [&dyn DeadlockStrategy; 4] = [&cycle_breaking, &ordering, &escape, &recovery];

    let mut points = Vec::new();
    for (benchmark, counts) in [
        (Benchmark::D26Media, sweeps::FIG8_SWITCH_COUNTS),
        (Benchmark::D36x8, sweeps::FIG9_SWITCH_COUNTS),
    ] {
        let grid = FlowSweep::new()
            .benchmark(benchmark)
            .switch_counts(counts)
            .power_estimates(false)
            .worker_threads(threads)
            .run_streaming(&strategies, &mut observer)
            .unwrap_or_else(|e| panic!("strategy matrix failed for {benchmark}: {e}"));
        points.extend(grid);
    }
    points
}

/// Synthesizes and routes a benchmark through the flow API (shared entry
/// point of the harness functions and the `cdg_incremental` timing binary).
///
/// # Panics
///
/// Panics if synthesis fails, which does not happen for feasible switch
/// counts of the bundled benchmarks.
pub fn routed_benchmark(benchmark: Benchmark, switch_count: usize) -> RoutedStage {
    DesignFlow::from_benchmark(benchmark)
        .synthesize(SynthesisConfig::with_switches(switch_count))
        .unwrap_or_else(|e| panic!("synthesis failed for {benchmark}/{switch_count}: {e}"))
        .route_default()
        .expect("synthesized designs carry default routes")
}

/// Runs the removal algorithm once on a copy of the design and returns its
/// report (used by the runtime Criterion bench and the ablation harness).
pub fn run_removal(design: &SynthesizedDesign, config: &RemovalConfig) -> RemovalReport {
    let (_, _, resolution) = CycleBreaking::with_config(config.clone())
        .resolve_cloned(&design.topology, &design.routes)
        .expect("removal succeeds on the benchmark suite");
    resolution.removal.expect("cycle breaking reports removal")
}

impl ToJson for VcSweepPoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("switch_count", &self.switch_count)
            .field("resource_ordering_vcs", &self.resource_ordering_vcs)
            .field("deadlock_removal_vcs", &self.deadlock_removal_vcs)
            .field("cycles_broken", &self.cycles_broken)
            .finish();
    }
}

impl ToJson for PowerComparison {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("original_power_mw", &self.original_power_mw)
            .field("removal_power_mw", &self.removal_power_mw)
            .field("ordering_power_mw", &self.ordering_power_mw)
            .field("original_area_um2", &self.original_area_um2)
            .field("removal_area_um2", &self.removal_area_um2)
            .field("ordering_area_um2", &self.ordering_area_um2)
            .field("removal_vcs", &self.removal_vcs)
            .field("ordering_vcs", &self.ordering_vcs)
            .field(
                "normalised_ordering_power",
                &self.normalised_ordering_power(),
            )
            .finish();
    }
}

impl ToJson for Summary {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("mean_vc_saving", &self.mean_vc_saving)
            .field("mean_area_saving", &self.mean_area_saving)
            .field("mean_power_saving", &self.mean_power_saving)
            .field("mean_power_overhead", &self.mean_power_overhead)
            .field("mean_area_overhead", &self.mean_area_overhead)
            .finish();
    }
}

impl ToJson for SimValidation {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("original_cdg_cyclic", &self.original_cdg_cyclic)
            .field("original_deadlocked", &self.original_deadlocked)
            .field("fixed_deadlocked", &self.fixed_deadlocked)
            .field("fixed_delivered", &self.fixed_delivered)
            .field("fixed_mean_latency", &self.fixed_mean_latency)
            .finish();
    }
}

/// `--json <path>` / `--threads <n>` CLI support shared by the figure
/// binaries.
pub mod artifact {
    use noc_flow::json::{JsonValue, ObjectWriter, ToJson};
    use std::path::PathBuf;

    /// The command-line options every figure binary accepts.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct FigureArgs {
        /// `--json <path>`: also write the series as a JSON artifact.
        pub json: Option<PathBuf>,
        /// `--threads <n>`: executor worker count (`0`, the default,
        /// auto-sizes to the machine's available parallelism).
        pub threads: usize,
    }

    impl FigureArgs {
        /// Parses the process arguments (`--json <path>`, `--json=<path>`,
        /// `--threads <n>`, `--threads=<n>`).
        ///
        /// # Panics
        ///
        /// Panics with a usage message on a flag without its value, a
        /// non-numeric thread count, or an unknown argument — the figure
        /// binaries take no other arguments.
        pub fn parse(figure: &str) -> Self {
            Self::from_iter(figure, std::env::args().skip(1))
        }

        fn from_iter(figure: &str, args: impl IntoIterator<Item = String>) -> Self {
            let usage = || format!("usage: {figure} [--json <path>] [--threads <n>]");
            let mut parsed = FigureArgs::default();
            let mut args = args.into_iter();
            while let Some(arg) = args.next() {
                if arg == "--json" {
                    let value = args.next().unwrap_or_else(|| panic!("{}", usage()));
                    parsed.json = Some(PathBuf::from(value));
                } else if let Some(value) = arg.strip_prefix("--json=") {
                    parsed.json = Some(PathBuf::from(value));
                } else if arg == "--threads" {
                    let value = args.next().unwrap_or_else(|| panic!("{}", usage()));
                    parsed.threads = parse_threads(figure, &value);
                } else if let Some(value) = arg.strip_prefix("--threads=") {
                    parsed.threads = parse_threads(figure, value);
                } else {
                    panic!("unknown argument {arg:?}; {}", usage());
                }
            }
            parsed
        }
    }

    fn parse_threads(figure: &str, value: &str) -> usize {
        value
            .parse()
            .unwrap_or_else(|_| panic!("{figure}: --threads expects a number, got {value:?}"))
    }

    /// Version of the artifact envelope and the per-figure payload schemas,
    /// checked by `ci/check_artifact.py`.  Bump it whenever a payload field
    /// is added, removed or changes meaning (v2 added the envelope `schema`
    /// field itself, the per-outcome `kind`/`mean_hops` fields of sweep
    /// points, and the `fig_strategy_matrix` artifact).
    pub const SCHEMA_VERSION: usize = 2;

    /// Renders a figure artifact — `{"figure": ..., "schema": ..., "data":
    /// ...}` — and writes it to `path`, re-parsing the output first so a
    /// serializer bug can never produce an unreadable artifact.
    pub fn write_json_artifact(path: &std::path::Path, figure: &str, data: &dyn ToJson) {
        let mut out = String::new();
        ObjectWriter::new(&mut out)
            .field("figure", &figure)
            .field("schema", &SCHEMA_VERSION)
            .field("data", data)
            .finish();
        out.push('\n');
        JsonValue::parse(&out)
            .unwrap_or_else(|e| panic!("internal error: artifact for {figure} is invalid: {e}"));
        std::fs::write(path, &out)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn parse(args: &[&str]) -> FigureArgs {
            FigureArgs::from_iter("fig", args.iter().map(|s| s.to_string()))
        }

        #[test]
        fn parses_json_and_threads_in_both_spellings() {
            assert_eq!(parse(&[]), FigureArgs::default());
            let a = parse(&["--json", "out.json", "--threads", "4"]);
            assert_eq!(a.json.as_deref(), Some(std::path::Path::new("out.json")));
            assert_eq!(a.threads, 4);
            let b = parse(&["--threads=2", "--json=x.json"]);
            assert_eq!(b.threads, 2);
            assert_eq!(b.json.as_deref(), Some(std::path::Path::new("x.json")));
        }

        #[test]
        #[should_panic(expected = "--threads expects a number")]
        fn rejects_non_numeric_threads() {
            parse(&["--threads", "lots"]);
        }

        #[test]
        #[should_panic(expected = "unknown argument")]
        fn rejects_unknown_arguments() {
            parse(&["--frobnicate"]);
        }
    }
}

/// The switch-count ranges used by the paper for its two sweep figures.
pub mod sweeps {
    /// Figure 8 sweeps D26_media from 5 to 25 switches.
    pub const FIG8_SWITCH_COUNTS: std::ops::RangeInclusive<usize> = 5..=25;
    /// Figure 9 sweeps D36_8 from 10 to 35 switches.
    pub const FIG9_SWITCH_COUNTS: std::ops::RangeInclusive<usize> = 10..=35;
    /// Figure 10 uses 14-switch topologies for every benchmark.
    pub const FIG10_SWITCHES: usize = 14;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_reproduce_the_paper_shape() {
        // A small slice of the Figure 8 sweep: the removal algorithm never
        // needs more VCs than resource ordering, and for D26_media it mostly
        // needs none at all (the paper's headline observation).
        let points = vc_overhead_sweep(Benchmark::D26Media, [6, 10, 14]);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.deadlock_removal_vcs <= p.resource_ordering_vcs);
        }
        let zero_overhead = points
            .iter()
            .filter(|p| p.deadlock_removal_vcs == 0)
            .count();
        assert!(
            zero_overhead >= 2,
            "most D26_media topologies are already safe"
        );
    }

    #[test]
    fn infeasible_switch_counts_are_skipped() {
        let points = vc_overhead_sweep(Benchmark::D26Media, [0, 10, 100]);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].switch_count, 10);
    }

    #[test]
    fn figure_10_shape_holds_for_a_sample_benchmark() {
        let comparison = power_comparison(Benchmark::D36x8, 10);
        // Resource ordering must cost at least as much power and area.
        assert!(comparison.ordering_power_mw >= comparison.removal_power_mw);
        assert!(comparison.ordering_area_um2 >= comparison.removal_area_um2);
        assert!(comparison.normalised_ordering_power() >= 1.0);
        // The removal overhead versus the original design stays small.
        assert!(comparison.removal_power_overhead() < 0.05);
        assert!(comparison.removal_area_overhead() < 0.10);
    }

    #[test]
    fn summary_aggregates_savings() {
        let comparisons: Vec<PowerComparison> = [Benchmark::D36x8, Benchmark::D36x6]
            .into_iter()
            .map(|b| power_comparison(b, 10))
            .collect();
        let s = summary(&comparisons);
        assert!(s.mean_vc_saving > 0.0 && s.mean_vc_saving <= 1.0);
        assert!(s.mean_power_overhead < 0.05);
    }

    #[test]
    fn simulation_validation_shows_the_fix_working() {
        let v = simulate_before_after(Benchmark::D38Tvopd, 10);
        assert!(!v.fixed_deadlocked);
        assert!(v.fixed_delivered > 0);
    }

    #[test]
    fn run_removal_matches_a_direct_flow() {
        let design = synthesize_benchmark(Benchmark::D36x8, 10).unwrap();
        let report = run_removal(&design, &RemovalConfig::default());
        let fixed = routed_benchmark(Benchmark::D36x8, 10)
            .resolve_deadlocks(&CycleBreaking::default())
            .unwrap();
        assert_eq!(report.added_vcs, fixed.resolution().added_vcs);
    }
}
