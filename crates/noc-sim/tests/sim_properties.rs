//! Property-style tests for the wormhole simulator: conservation laws and
//! the central deadlock-freedom claim (designs with acyclic CDGs always
//! drain their workload).
//!
//! The crates.io `proptest` crate is unavailable in the offline build
//! environment, so the properties are checked over deterministic parameter
//! grids covering the same ranges the proptest strategies drew from.

use noc_deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_deadlock::verify;
use noc_routing::shortest::route_all_shortest;
use noc_routing::xy::{route_all_xy, MeshCoords};
use noc_sim::{SimConfig, Simulator, TrafficConfig};
use noc_synth::{synthesize, SynthesisConfig};
use noc_topology::benchmarks::Benchmark;
use noc_topology::{generators, CommGraph, CoreMap};

/// Builds an all-to-all communication graph and mapping over a generated
/// topology, one core per switch.
fn all_to_all(generated: &generators::Generated, bandwidth: f64) -> (CommGraph, CoreMap) {
    let n = generated.switches.len();
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                comm.add_flow(cores[i], cores[j], bandwidth);
            }
        }
    }
    let mut map = CoreMap::new(n);
    for (i, &c) in cores.iter().enumerate() {
        map.assign(c, generated.switches[i]).unwrap();
    }
    (comm, map)
}

/// XY-routed meshes (acyclic CDG by construction) always deliver every
/// packet, for any mesh size, packet length and buffer depth.
#[test]
fn xy_meshes_never_deadlock() {
    for (rows, cols, packet_length, buffer_depth, packets_per_flow) in [
        (2, 2, 1, 1, 1),
        (2, 3, 5, 1, 3),
        (3, 2, 2, 3, 2),
        (3, 3, 4, 2, 3),
        (2, 2, 3, 2, 2),
        (3, 3, 1, 1, 1),
    ] {
        let generated = generators::mesh2d(rows, cols, 1000.0);
        let coords = MeshCoords::new(rows, cols, generated.switches.clone());
        let (comm, map) = all_to_all(&generated, 100.0);
        let routes = route_all_xy(&generated.topology, &comm, &map, &coords).unwrap();
        assert!(verify::check_deadlock_free(&generated.topology, &routes).is_ok());

        let outcome = Simulator::new(
            &generated.topology,
            &comm,
            &routes,
            &SimConfig {
                buffer_depth,
                deadlock_threshold: 2_000,
                max_cycles: 2_000_000,
            },
        )
        .run(&TrafficConfig {
            packets_per_flow,
            packet_length,
            mean_gap_cycles: 0,
            seed: 11,
            ..TrafficConfig::default()
        });
        let case = format!("{rows}x{cols} len={packet_length} depth={buffer_depth}");
        assert!(!outcome.deadlocked, "{case}");
        assert_eq!(
            outcome.stats.delivered_packets, outcome.stats.injected_packets,
            "{case}"
        );
        assert_eq!(outcome.stranded_packets, 0, "{case}");
        // Flit conservation.
        assert_eq!(
            outcome.stats.delivered_flits,
            outcome.stats.delivered_packets * packet_length.max(1),
            "{case}"
        );
    }
}

/// Repaired benchmark designs always drain the workload, whatever the
/// buffer depth and packet length.
#[test]
fn repaired_designs_always_drain() {
    for (switches, packet_length, buffer_depth) in
        [(4, 1, 1), (6, 4, 2), (8, 2, 1), (10, 3, 2), (11, 1, 2)]
    {
        let comm = Benchmark::D36x6.comm_graph();
        let design = synthesize(&comm, &SynthesisConfig::with_switches(switches)).unwrap();
        let mut topology = design.topology.clone();
        let mut routes = design.routes.clone();
        remove_deadlocks(&mut topology, &mut routes, &RemovalConfig::default()).unwrap();
        assert!(verify::check_deadlock_free(&topology, &routes).is_ok());

        let outcome = Simulator::new(
            &topology,
            &comm,
            &routes,
            &SimConfig {
                buffer_depth,
                deadlock_threshold: 2_000,
                max_cycles: 4_000_000,
            },
        )
        .run(&TrafficConfig {
            packets_per_flow: 2,
            packet_length,
            mean_gap_cycles: 0,
            seed: 3,
            ..TrafficConfig::default()
        });
        let case = format!("switches={switches} len={packet_length} depth={buffer_depth}");
        assert!(!outcome.deadlocked, "{case}");
        assert_eq!(
            outcome.stats.delivered_packets, outcome.stats.injected_packets,
            "{case}"
        );
    }
}

/// Latency sanity: on a contention-free chain, packet latency is at
/// least the hop count and delivery is complete.
#[test]
fn chain_latency_is_at_least_hop_count() {
    for (length, packet_length) in [(2, 1), (3, 5), (4, 2), (5, 4), (7, 3)] {
        let generated = generators::chain(length, 1000.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        comm.add_flow(a, b, 100.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[length - 1]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();

        let outcome = Simulator::new(&generated.topology, &comm, &routes, &SimConfig::default())
            .run(&TrafficConfig {
                packets_per_flow: 3,
                packet_length,
                mean_gap_cycles: 0,
                seed: 1,
                ..TrafficConfig::default()
            });
        let case = format!("length={length} packet_length={packet_length}");
        assert!(!outcome.deadlocked, "{case}");
        assert_eq!(outcome.stats.delivered_packets, 3, "{case}");
        assert!(
            outcome.stats.mean_latency() >= (length - 1) as f64,
            "{case}"
        );
    }
}
