//! Integration and property tests for the deadlock-removal algorithm over
//! whole synthesized designs (benchmark suite + random designs).

use noc_deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_deadlock::resource_ordering::resource_ordering_overhead;
use noc_deadlock::verify;
use noc_routing::validate::validate_routes;
use noc_routing::{Route, RouteSet};
use noc_synth::{synthesize, SynthesisConfig};
use noc_topology::benchmarks::Benchmark;
use noc_topology::{LinkId, Topology};
use proptest::prelude::*;

/// Every benchmark, at several switch counts: the removal algorithm must
/// leave a deadlock-free design with valid routes and must never cost more
/// VCs than the resource-ordering baseline.
#[test]
fn removal_beats_or_matches_resource_ordering_on_all_benchmarks() {
    for benchmark in Benchmark::ALL {
        let comm = benchmark.comm_graph();
        for switches in [5, 9, 14] {
            let design = synthesize(&comm, &SynthesisConfig::with_switches(switches)).unwrap();

            let baseline = resource_ordering_overhead(&design.topology, &design.routes);

            let mut topo = design.topology.clone();
            let mut routes = design.routes.clone();
            let report = remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default())
                .unwrap_or_else(|e| panic!("{benchmark}/{switches}: {e}"));

            verify::check_deadlock_free(&topo, &routes)
                .unwrap_or_else(|c| panic!("{benchmark}/{switches}: still cyclic: {c}"));
            validate_routes(&topo, &comm, &design.core_map, &routes)
                .unwrap_or_else(|e| panic!("{benchmark}/{switches}: invalid routes: {e}"));
            assert!(verify::missing_channels(&topo, &routes).is_empty());

            assert!(
                report.added_vcs <= baseline,
                "{benchmark}/{switches}: removal used {} VCs, resource ordering {}",
                report.added_vcs,
                baseline
            );
            assert_eq!(report.added_vcs, topo.extra_vc_count());
        }
    }
}

/// Ring-backbone topologies (more cycle-prone) are also always fixed.
#[test]
fn ring_backbone_designs_are_fixed() {
    for benchmark in [Benchmark::D36x8, Benchmark::D26Media, Benchmark::D35Bott] {
        let comm = benchmark.comm_graph();
        for switches in [6, 10, 14] {
            let design =
                synthesize(&comm, &SynthesisConfig::with_switches_ring(switches)).unwrap();
            let mut topo = design.topology.clone();
            let mut routes = design.routes.clone();
            let report =
                remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
            verify::check_deadlock_free(&topo, &routes).unwrap();
            let baseline = resource_ordering_overhead(&design.topology, &design.routes);
            assert!(report.added_vcs <= baseline);
        }
    }
}

/// Build a random unidirectional "ring with chords" topology and random
/// multi-hop routes along it.
fn random_design(
    switches: usize,
    chords: &[(usize, usize)],
    flows: &[(usize, usize)],
) -> (Topology, RouteSet) {
    let mut topo = Topology::new();
    let sw: Vec<_> = (0..switches)
        .map(|i| topo.add_switch(format!("s{i}")))
        .collect();
    let mut ring_links: Vec<LinkId> = Vec::new();
    for i in 0..switches {
        ring_links.push(topo.add_link(sw[i], sw[(i + 1) % switches], 1.0));
    }
    for &(a, b) in chords {
        if a != b {
            topo.add_link(sw[a % switches], sw[b % switches], 1.0);
        }
    }
    // Routes follow the ring from src forward `len` hops.
    let mut routes = RouteSet::new(flows.len());
    for (idx, &(src, len)) in flows.iter().enumerate() {
        let src = src % switches;
        let len = 1 + len % (switches - 1);
        let links: Vec<LinkId> = (0..len).map(|k| ring_links[(src + k) % switches]).collect();
        routes.set_route(noc_topology::FlowId::from_index(idx), Route::from_links(links));
    }
    (topo, routes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The algorithm always terminates with an acyclic CDG on random ring
    /// designs, the added-VC count matches the topology delta, and it never
    /// costs more than resource ordering.
    #[test]
    fn random_ring_designs_are_always_fixed(
        switches in 3usize..10,
        chords in proptest::collection::vec((0usize..10, 0usize..10), 0..6),
        flows in proptest::collection::vec((0usize..10, 0usize..8), 1..24),
    ) {
        let (topo, routes) = random_design(switches, &chords, &flows);
        let baseline = resource_ordering_overhead(&topo, &routes);

        let mut fixed_topo = topo.clone();
        let mut fixed_routes = routes.clone();
        let report = remove_deadlocks(&mut fixed_topo, &mut fixed_routes, &RemovalConfig::default())
            .expect("removal must not error on consistent designs");

        prop_assert!(verify::check_deadlock_free(&fixed_topo, &fixed_routes).is_ok());
        prop_assert!(verify::missing_channels(&fixed_topo, &fixed_routes).is_empty());
        prop_assert_eq!(report.added_vcs, fixed_topo.extra_vc_count());
        prop_assert!(report.added_vcs <= baseline);

        // Physical link usage must be untouched.
        for (flow, route) in routes.iter() {
            let before: Vec<LinkId> = route.links().collect();
            let after: Vec<LinkId> = fixed_routes.route(flow).unwrap().links().collect();
            prop_assert_eq!(before, after);
        }
    }

    /// Resource ordering always yields an acyclic CDG too (it is a correct,
    /// just expensive, baseline).
    #[test]
    fn resource_ordering_is_always_deadlock_free(
        switches in 3usize..8,
        flows in proptest::collection::vec((0usize..8, 0usize..6), 1..16),
    ) {
        let (mut topo, mut routes) = random_design(switches, &[], &flows);
        noc_deadlock::apply_resource_ordering(&mut topo, &mut routes).unwrap();
        prop_assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
        prop_assert!(verify::missing_channels(&topo, &routes).is_empty());
    }
}
