//! Application-specific NoC topology synthesis.
//!
//! The paper generates its input topologies with the floorplan-aware
//! synthesis tool of its reference \[9\], which is not publicly available.
//! This crate provides a functional substitute with the same interface
//! contract: given a communication graph and a target switch count it
//! produces an application-specific (usually irregular) topology, a core
//! attachment and deadlock-oblivious routes — exactly the triple the
//! deadlock-removal algorithm and the resource-ordering baseline take as
//! input.
//!
//! The synthesis pipeline is:
//!
//! 1. [`cluster`] — partition cores onto switches, greedily maximising the
//!    communication affinity kept inside a switch while keeping cluster
//!    sizes balanced,
//! 2. [`connect`] — build the switch-to-switch link set: a traffic-weighted
//!    backbone that guarantees connectivity plus demand-driven shortcut
//!    links, subject to a maximum switch degree (mirroring the technology
//!    constraints on link count discussed in the paper),
//! 3. routing via `noc-routing`'s shortest-path router.
//!
//! # Example
//!
//! ```
//! use noc_topology::benchmarks::Benchmark;
//! use noc_synth::{SynthesisConfig, synthesize};
//!
//! let comm = Benchmark::D26Media.comm_graph();
//! let design = synthesize(&comm, &SynthesisConfig::with_switches(8))?;
//! assert_eq!(design.topology.switch_count(), 8);
//! assert_eq!(design.routes.flow_count(), comm.flow_count());
//! # Ok::<(), noc_synth::SynthesisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod connect;
pub mod synthesizer;

pub use synthesizer::{synthesize, SynthesisConfig, SynthesisError, SynthesizedDesign};
