//! The typed error surface of the job system.

use noc_flow::json::{ArtifactError, JsonParseError};
use noc_flow::FlowError;
use std::fmt;
use std::path::PathBuf;

/// Why a job could not be parsed, stored, resumed, or run.
#[derive(Debug)]
pub enum JobError {
    /// A job spec, task record, or artifact is not valid JSON.
    Json(JsonParseError),
    /// An artifact failed to render, validate, or commit.
    Artifact(ArtifactError),
    /// A job spec parses but is malformed (missing/unknown fields, wrong
    /// types).
    Spec(String),
    /// A store directory belongs to a different job than the one being
    /// opened — its spec digest does not match.
    SpecMismatch {
        /// The store directory.
        dir: PathBuf,
        /// Digest of the spec being opened.
        expected: String,
        /// Digest recorded in the directory's `job.json`.
        found: String,
    },
    /// The requested figure has no job source.
    UnknownFigure(String),
    /// The figure exists but cannot run as a resumable job (the timing and
    /// aggregate-only figures, whose results are not decomposable into
    /// independently recordable tasks).
    Unsupported(String),
    /// A task-record line that is not the torn tail of a crashed append is
    /// unreadable — the store is corrupt and needs manual attention.
    Corrupt {
        /// The record log path.
        path: PathBuf,
        /// 1-based line number of the bad record.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A task's flow computation failed.
    Flow(FlowError),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A specific task of a job failed — the runner wraps the task's own
    /// error with its index so diagnostics (e.g. `noc_serve`'s
    /// `error.json`) can say *which* unit of work to look at.
    Task {
        /// Zero-based index of the failing task.
        index: usize,
        /// The task's underlying error.
        source: Box<JobError>,
    },
}

impl JobError {
    /// Convenience constructor tagging an I/O error with its path.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        JobError::Io {
            path: path.into(),
            source,
        }
    }

    /// A stable machine-readable slug for the error's variant (the `kind`
    /// field of `noc_serve`'s structured `error.json`).  [`JobError::Task`]
    /// reports its underlying error's kind; use [`task_index`](Self::task_index)
    /// for the wrapper's index.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Json(_) => "json",
            JobError::Artifact(_) => "artifact",
            JobError::Spec(_) => "spec",
            JobError::SpecMismatch { .. } => "spec_mismatch",
            JobError::UnknownFigure(_) => "unknown_figure",
            JobError::Unsupported(_) => "unsupported",
            JobError::Corrupt { .. } => "corrupt",
            JobError::Flow(_) => "flow",
            JobError::Io { .. } => "io",
            JobError::Task { source, .. } => source.kind(),
        }
    }

    /// The failing task's index, when the error is (or wraps) a
    /// [`JobError::Task`].
    pub fn task_index(&self) -> Option<usize> {
        match self {
            JobError::Task { index, .. } => Some(*index),
            _ => None,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Json(e) => write!(f, "invalid JSON: {e}"),
            JobError::Artifact(e) => write!(f, "artifact error: {e}"),
            JobError::Spec(message) => write!(f, "malformed job spec: {message}"),
            JobError::SpecMismatch {
                dir,
                expected,
                found,
            } => write!(
                f,
                "job store {} belongs to a different job (spec digest {found}, \
                 submitted {expected})",
                dir.display()
            ),
            JobError::UnknownFigure(figure) => write!(f, "unknown figure {figure:?}"),
            JobError::Unsupported(figure) => write!(
                f,
                "figure {figure:?} does not support resumable jobs (timing/aggregate-only)"
            ),
            JobError::Corrupt {
                path,
                line,
                message,
            } => write!(
                f,
                "corrupt task record at {}:{line}: {message}",
                path.display()
            ),
            JobError::Flow(e) => write!(f, "flow error: {e}"),
            JobError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            JobError::Task { index, source } => write!(f, "task {index}: {source}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Json(e) => Some(e),
            JobError::Artifact(e) => Some(e),
            JobError::Flow(e) => Some(e),
            JobError::Io { source, .. } => Some(source),
            JobError::Task { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<JsonParseError> for JobError {
    fn from(error: JsonParseError) -> Self {
        JobError::Json(error)
    }
}

impl From<ArtifactError> for JobError {
    fn from(error: ArtifactError) -> Self {
        JobError::Artifact(error)
    }
}

impl From<FlowError> for JobError {
    fn from(error: FlowError) -> Self {
        JobError::Flow(error)
    }
}
