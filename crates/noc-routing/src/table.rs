//! Per-switch routing tables derived from a [`RouteSet`].
//!
//! Wormhole routers forward a packet hop by hop; with static (source-
//! oblivious, flow-based) routing each switch needs to know, for every flow
//! passing through it, which output channel to use next.  The simulator
//! (`noc-sim`) consumes these tables.

use crate::route::RouteSet;
use noc_topology::{Channel, FlowId, SwitchId, Topology};
use std::collections::HashMap;

/// Routing tables for every switch of a topology: `(switch, flow) -> next
/// output channel`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoutingTables {
    /// table[switch index] maps a flow to the channel it must take out of
    /// that switch.
    table: Vec<HashMap<FlowId, Channel>>,
}

impl RoutingTables {
    /// Builds the routing tables for `routes` over `topology`.
    ///
    /// Every hop of every route contributes one entry: the entry lives at the
    /// switch the hop's link leaves from.
    pub fn from_routes(topology: &Topology, routes: &RouteSet) -> Self {
        let mut table = vec![HashMap::new(); topology.switch_count()];
        for (flow, route) in routes.iter() {
            for channel in route.channels() {
                if let Some(link) = topology.link(channel.link) {
                    table[link.source.index()].insert(flow, *channel);
                }
            }
        }
        RoutingTables { table }
    }

    /// The output channel `flow` must take when it is at `switch`, or `None`
    /// if the flow does not pass through (or terminates at) that switch.
    pub fn next_channel(&self, switch: SwitchId, flow: FlowId) -> Option<Channel> {
        self.table
            .get(switch.index())
            .and_then(|m| m.get(&flow))
            .copied()
    }

    /// Number of table entries at `switch` (one per flow routed through it).
    pub fn entries_at(&self, switch: SwitchId) -> usize {
        self.table.get(switch.index()).map_or(0, HashMap::len)
    }

    /// Total number of entries across all switches (equals the total hop
    /// count of all routes when every link id is valid).
    pub fn total_entries(&self) -> usize {
        self.table.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shortest::route_all_shortest;
    use noc_topology::{generators, CommGraph, CoreMap};

    fn design() -> (Topology, CommGraph, CoreMap, RouteSet, FlowId) {
        let generated = generators::unidirectional_ring(4, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        let f = comm.add_flow(a, b, 1.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[2]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        (generated.topology, comm, map, routes, f)
    }

    #[test]
    fn tables_follow_the_route_hop_by_hop() {
        let (t, _, _, routes, f) = design();
        let tables = RoutingTables::from_routes(&t, &routes);
        let route = routes.route(f).unwrap();
        let path = route.switch_path(&t).unwrap();
        for (i, channel) in route.channels().iter().enumerate() {
            assert_eq!(tables.next_channel(path[i], f), Some(*channel));
        }
        // The destination switch has no entry for the flow.
        assert_eq!(tables.next_channel(*path.last().unwrap(), f), None);
    }

    #[test]
    fn entry_counts_match_total_hops() {
        let (t, _, _, routes, _) = design();
        let tables = RoutingTables::from_routes(&t, &routes);
        let hops: usize = routes.iter().map(|(_, r)| r.hop_count()).sum();
        assert_eq!(tables.total_entries(), hops);
    }

    #[test]
    fn switch_not_on_route_has_no_entries() {
        let (t, _, _, routes, f) = design();
        let tables = RoutingTables::from_routes(&t, &routes);
        // Switch 3 is not on the 0 -> 2 route of the unidirectional ring.
        assert_eq!(tables.next_channel(SwitchId::from_index(3), f), None);
        assert_eq!(tables.entries_at(SwitchId::from_index(3)), 0);
    }

    #[test]
    fn unknown_switch_is_none() {
        let (t, _, _, routes, f) = design();
        let tables = RoutingTables::from_routes(&t, &routes);
        assert_eq!(tables.next_channel(SwitchId::from_index(99), f), None);
    }
}
