//! Reproduces Figure 10: normalised NoC power consumption of the
//! resource-ordering baseline relative to the deadlock-removal algorithm for
//! the six SoC benchmarks at 14 switches.

use noc_bench::{power_comparison, sweeps};
use noc_topology::benchmarks::Benchmark;

fn main() {
    println!(
        "# Figure 10 — normalised power (resource ordering / deadlock removal), {} switches",
        sweeps::FIG10_SWITCHES
    );
    println!(
        "{:>12} {:>18} {:>18} {:>12} {:>12}",
        "benchmark", "removal_norm", "ordering_norm", "removal_vc", "ordering_vc"
    );
    for benchmark in Benchmark::ALL {
        let c = power_comparison(benchmark, sweeps::FIG10_SWITCHES);
        println!(
            "{:>12} {:>18.3} {:>18.3} {:>12} {:>12}",
            c.benchmark,
            1.0,
            c.normalised_ordering_power(),
            c.removal_vcs,
            c.ordering_vcs
        );
    }
}
