//! NoC topology and communication-graph model for the deadlock-removal suite.
//!
//! This crate implements Definitions 1–3 of the paper:
//!
//! * the **topology graph** `TG(S, L)` — switches connected by directed
//!   physical links, each carrying one or more virtual channels
//!   ([`Topology`], [`Link`], [`Channel`]),
//! * the **communication graph** `G(V, E)` — cores and the flows between
//!   them ([`CommGraph`], [`Flow`]),
//! * the **core attachment** mapping cores onto switches ([`CoreMap`]),
//!
//! plus generators for regular topologies ([`generators`]) and the synthetic
//! SoC benchmark suite used by the paper's evaluation ([`benchmarks`]).
//!
//! # Example
//!
//! ```
//! use noc_topology::{Topology, CommGraph};
//!
//! // The 4-switch ring from Figure 1 of the paper.
//! let mut topo = Topology::new();
//! let sw: Vec<_> = (1..=4).map(|i| topo.add_switch(format!("SW{i}"))).collect();
//! for i in 0..4 {
//!     topo.add_link(sw[i], sw[(i + 1) % 4], 1.0);
//! }
//! assert_eq!(topo.switch_count(), 4);
//! assert_eq!(topo.link_count(), 4);
//!
//! let mut comm = CommGraph::new();
//! let c0 = comm.add_core("cpu");
//! let c1 = comm.add_core("mem");
//! comm.add_flow(c0, c1, 100.0);
//! assert_eq!(comm.flow_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod comm;
pub mod error;
pub mod fault;
pub mod generators;
pub mod ids;
pub mod topology;
pub mod validate;

pub use comm::{CommGraph, Core, CoreMap, Flow};
pub use error::TopologyError;
pub use fault::{Connectivity, FaultSet};
pub use ids::{Channel, CoreId, FlowId, LinkId, SwitchId};
pub use topology::{Link, Switch, Topology};
