//! Fault-storm survivability per deadlock strategy (beyond the paper):
//! every repaired design — one per deadlock-handling scheme — is pushed
//! through the *same* seeded three-link-failure storm on the VC-fidelity
//! wormhole engine, with the cycle-safe live-reconfiguration protocol
//! rerouting the affected flows mid-flight, over the Figure 8 (D26_media)
//! and Figure 9 (D36_8) grids.
//!
//! The harness hard-asserts the protocol's guarantees while sweeping (see
//! [`noc_bench::fault_strategy_point`]): no reconfiguration epoch ever
//! commits a cyclic combined dependency graph, no run ends deadlocked, and
//! wherever the storm keeps the fabric connected every strategy keeps
//! delivering.  The printed table (and the JSON artifact) then shows what
//! the storm *cost* each strategy: delivered fraction, mean latency,
//! reroutes, and scoped-drain fallbacks.
//!
//! Pass `--threads <n>` to pin the executor worker count and
//! `--json <path>` to write the full sweep as a JSON artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{fault_strategy_sweep, FaultSweepPoint, FAULT_STRATEGIES};
use noc_flow::json::{ObjectWriter, ToJson};

/// The artifact payload: the strategy axis, the sweep wall time (guarded by
/// CI) and every grid point.
struct FaultsArtifact {
    strategies: Vec<String>,
    wall_ms: f64,
    points: Vec<FaultSweepPoint>,
}

impl ToJson for FaultsArtifact {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("strategies", &self.strategies)
            .field("wall_ms", &self.wall_ms)
            .field("points", &self.points)
            .finish();
    }
}

fn main() {
    let args = FigureCli::parse("fig_faults");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!("# Fault storms under cycle-safe live reconfiguration — Figure 8/9 grids");
    println!(
        "{:>12} {:>9} {:>7} {:>10} {:>10} {:>11} {:>9} {:>10} {:>12}",
        "benchmark",
        "switches",
        "faults",
        "connected",
        "delivered",
        "cb_latency",
        "reroutes",
        "fallbacks",
        "unreachable"
    );
    let start = std::time::Instant::now();
    let points = fault_strategy_sweep(args.threads);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    for point in &points {
        // The worst delivered fraction across the four strategies — the
        // figure's survivability headline for the point.
        let min_delivered = point
            .runs
            .iter()
            .map(|r| r.stats.delivered_fraction)
            .fold(f64::INFINITY, f64::min);
        let removal = point
            .run(FAULT_STRATEGIES[0])
            .expect("cycle-breaking run present");
        let reroutes: usize = point.runs.iter().map(|r| r.stats.flows_rerouted).sum();
        let fallbacks: usize = point.runs.iter().map(|r| r.stats.drain_fallbacks).sum();
        let unreachable: usize = point.runs.iter().map(|r| r.stats.unreachable_flows).sum();
        println!(
            "{:>12} {:>9} {:>7} {:>10} {:>9.1}% {:>11.1} {:>9} {:>10} {:>12}",
            point.benchmark,
            point.switch_count,
            point.faults_injected,
            point.connected,
            min_delivered * 100.0,
            removal.stats.mean_latency,
            reroutes,
            fallbacks,
            unreachable
        );
    }
    println!("# swept {} points in {:.0} ms", points.len(), wall_ms);
    let data = FaultsArtifact {
        strategies: FAULT_STRATEGIES.map(str::to_string).to_vec(),
        wall_ms,
        points,
    };
    args.write_artifact(&data);
}
