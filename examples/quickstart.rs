//! Quickstart: build the paper's Figure 1 ring design, detect the deadlock
//! condition, remove it with the paper's algorithm and compare against the
//! resource-ordering baseline — all through the `DesignFlow` pipeline API.
//!
//! Run with `cargo run --example quickstart`.

use noc_suite::flow::{CycleBreaking, DesignFlow, ResourceOrdering, ShortestPathRouter};
use noc_suite::topology::{CommGraph, CoreMap, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The topology of Figure 1: four switches in a unidirectional ring.
    let mut topology = Topology::new();
    let switches: Vec<_> = (1..=4)
        .map(|i| topology.add_switch(format!("SW{i}")))
        .collect();
    for i in 0..4 {
        topology.add_link(switches[i], switches[(i + 1) % 4], 1000.0);
    }

    // --- 2. Four cores, one per switch, with the four flows of the example.
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("core{i}"))).collect();
    comm.add_flow(cores[0], cores[3], 200.0); // F1: three hops
    comm.add_flow(cores[2], cores[0], 200.0); // F2
    comm.add_flow(cores[3], cores[1], 200.0); // F3
    comm.add_flow(cores[0], cores[2], 200.0); // F4
    let mut core_map = CoreMap::new(comm.core_count());
    for (i, &core) in cores.iter().enumerate() {
        core_map.assign(core, switches[i])?;
    }

    // --- 3. Import the hand-built design into a flow and route it with
    // deadlock-oblivious shortest paths (the paper's input routing).  The
    // stage transitions validate the design and the routes automatically.
    let routed = DesignFlow::from_comm(comm)
        .labelled("figure-1-ring")
        .with_design(topology, core_map)?
        .route(&ShortestPathRouter::default())?;

    // --- 4. The CDG has a cycle: the design can deadlock.
    match routed.deadlock_evidence() {
        None => println!("input design is already deadlock-free"),
        Some(cycle) => println!("input design CAN deadlock: {cycle}"),
    }

    // --- 5. Baseline for comparison: resource ordering.  Branching off the
    // routed stage needs no cloning — the flow owns its artifacts.
    let ordered = routed.resolve_deadlocks(&ResourceOrdering)?;
    let ro = ordered
        .resolution()
        .ordering
        .as_ref()
        .expect("ordering ran");
    println!(
        "resource ordering:   {} extra VCs ({} channel classes)",
        ro.added_vcs, ro.classes
    );

    // --- 6. The paper's algorithm (swapping strategies is a one-line change).
    let fixed = routed.resolve_deadlocks(&CycleBreaking::default())?;
    println!(
        "deadlock removal:    {} extra VC(s), {} cycle(s) broken",
        fixed.resolution().added_vcs,
        fixed.resolution().cycles_broken
    );
    println!("after removal the CDG is acyclic: the design cannot deadlock");
    Ok(())
}
