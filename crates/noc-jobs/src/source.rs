//! The seam between the generic runner/store machinery and the
//! figure-specific sweep code.

use crate::error::JobError;

/// What the runner hands a source when every task has a recorded result
/// and the final artifact can be assembled.
#[derive(Debug)]
pub struct AssembleContext<'a> {
    /// The figure name (for the artifact envelope).
    pub figure: &'a str,
    /// One recorded result per task, as raw JSON text, in task-index
    /// order.  Splicing these verbatim (rather than re-rendering parsed
    /// values) is what makes a resumed run's artifact byte-identical to an
    /// uninterrupted one.
    pub results: &'a [String],
    /// Total recorded task wall time in milliseconds (resumed and cached
    /// tasks contribute their originally recorded time).
    pub task_ms_total: u64,
}

/// A figure (or any sweep) decomposed into independently computable,
/// independently recordable tasks.
///
/// Implementations must satisfy two contracts the store relies on:
///
/// * **Determinism** — `run_task(i)` returns the same result text for the
///   same spec every time it runs; the task list (count and meaning of
///   each index) is a pure function of the spec.  This is what makes
///   replayed records, cache hits, and fresh computation interchangeable.
/// * **Single-line results** — the returned JSON contains no newlines
///   (the store's completion log is newline-delimited).  The JSON writers
///   in `noc_flow::json` never emit newlines, so any result built with
///   them qualifies.
///
/// Tasks may share expensive preparation (e.g. one synthesized design
/// charged by several strategies) through interior mutability —
/// `run_task` takes `&self` and is called from the worker pool, so shared
/// state must be `Sync`.
pub trait JobSource: Sync {
    /// The figure this source evaluates (must match the job spec).
    fn figure(&self) -> &str;

    /// Number of tasks the job decomposes into.
    fn task_count(&self) -> usize;

    /// A short human label for task `index` (progress lines, logs).
    fn task_label(&self, index: usize) -> String {
        format!("task {index}")
    }

    /// Computes task `index`, returning its result as single-line JSON.
    fn run_task(&self, index: usize) -> Result<String, JobError>;

    /// Assembles the final artifact *document* (envelope included, ready
    /// to commit) from the recorded per-task results.
    fn assemble(&self, ctx: &AssembleContext<'_>) -> Result<String, JobError>;
}
