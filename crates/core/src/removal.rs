//! Algorithm 1: the deadlock-removal loop.
//!
//! Repeatedly: find the smallest cycle of the CDG, compute the cheapest way
//! to break it (forward or backward, Algorithm 2), duplicate the required
//! channels by adding VCs to the topology, re-route the offending flows onto
//! the new channels, and update the CDG.  Terminates when the CDG is
//! acyclic.
//!
//! The CDG update is incremental by default ([`CdgMode::Incremental`]): a
//! break only changes the dependencies of the flows it re-routed, so the
//! loop applies exactly those deltas ([`Cdg::remove_flow_deps`] /
//! [`Cdg::add_flow_deps`]) and seeds the next smallest-cycle query from the
//! touched vertices, instead of rebuilding the whole graph from scratch
//! every iteration.  [`CdgMode::FullRebuild`] keeps the from-scratch
//! reference path; both produce identical reports
//! ([`RemovalReport::same_outcome`]), which the equivalence tests assert
//! over the full benchmark grids.

use crate::cdg::{Cdg, CdgDelta};
use crate::cost::{cost_table, CostTable, Direction};
use crate::report::{BreakStep, CdgDeltaStats, RemovalReport};
use noc_graph::cycles::IncrementalCycleFinder;
use noc_graph::IncrementalScc;
use noc_routing::RouteSet;
use noc_topology::{Channel, FlowId, Topology, TopologyError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Which directions Algorithm 1 is allowed to consider.  The paper always
/// checks both; the restricted variants exist for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectionPolicy {
    /// Check forward and backward and pick the cheaper (the paper's Step 7).
    #[default]
    Both,
    /// Only ever break in the forward direction.
    ForwardOnly,
    /// Only ever break in the backward direction.
    BackwardOnly,
}

/// Which cycle the loop attacks first.  The paper breaks the smallest cycle
/// first; the other orders exist for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleOrder {
    /// Smallest cycle first (the paper's heuristic).
    #[default]
    SmallestFirst,
    /// Largest simple cycle first (bounded enumeration).
    LargestFirst,
    /// Whatever cycle the enumeration finds first.
    FirstFound,
}

/// How the loop maintains the CDG between cycle breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CdgMode {
    /// Build the CDG once and patch it per iteration with the dependencies
    /// of the re-routed flows, seeding the next smallest-cycle search from
    /// the touched vertices.  The default — same answers as
    /// [`FullRebuild`](Self::FullRebuild), far less work per iteration.
    #[default]
    Incremental,
    /// Rebuild the CDG from the topology and routes every iteration — the
    /// reference path the incremental engine is checked against, and the
    /// path the cycle-order ablations always take (their bounded cycle
    /// enumeration is not incremental).
    FullRebuild,
}

/// How the smallest-cycle search maintains the SCC partition it uses to
/// narrow its candidate pool.  Only effective on the incremental CDG path
/// (see [`CdgMode`]); the rebuild path always runs full Tarjan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SccMode {
    /// Maintain the partition incrementally ([`noc_graph::IncrementalScc`]):
    /// recompute only the dirty region around the vertices each cycle break
    /// touched, falling back to full Tarjan when the region grows past the
    /// bound.  The default — identical answers, bounded work per iteration.
    #[default]
    Incremental,
    /// Run full Tarjan inside every verification scan — the reference path
    /// the incremental partition is checked (and benchmarked) against.
    FullTarjan,
}

/// Configuration of a removal run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovalConfig {
    /// Direction policy (ablation hook; default = both, as in the paper).
    pub direction: DirectionPolicy,
    /// Cycle selection order (ablation hook; default = smallest first).
    pub cycle_order: CycleOrder,
    /// Safety bound on the number of cycles broken before giving up.
    pub max_iterations: usize,
    /// CDG maintenance mode (default = incremental).
    pub cdg_mode: CdgMode,
    /// SCC maintenance mode for the cycle search (default = incremental).
    pub scc_mode: SccMode,
}

impl Default for RemovalConfig {
    fn default() -> Self {
        RemovalConfig {
            direction: DirectionPolicy::Both,
            cycle_order: CycleOrder::SmallestFirst,
            max_iterations: 100_000,
            cdg_mode: CdgMode::Incremental,
            scc_mode: SccMode::Incremental,
        }
    }
}

/// Errors reported by [`remove_deadlocks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemovalError {
    /// A cycle was found but no flow creates any of its dependencies — the
    /// route set and the CDG are inconsistent.
    InconsistentCycle {
        /// The cycle that could not be attributed to any flow.
        cycle: Vec<Channel>,
    },
    /// The iteration bound was exceeded (indicates a bug or an adversarial
    /// input, never observed on the benchmark suite).
    IterationLimit {
        /// The configured bound that was hit.
        limit: usize,
    },
    /// Adding a VC failed because a cycle referenced an unknown link.
    Topology(TopologyError),
}

impl fmt::Display for RemovalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemovalError::InconsistentCycle { cycle } => {
                write!(f, "cycle of length {} has no responsible flow", cycle.len())
            }
            RemovalError::IterationLimit { limit } => {
                write!(f, "exceeded the iteration limit of {limit} cycle breaks")
            }
            RemovalError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl Error for RemovalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RemovalError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for RemovalError {
    fn from(e: TopologyError) -> Self {
        RemovalError::Topology(e)
    }
}

/// Runs Algorithm 1 on the design, mutating `topology` (extra VCs) and
/// `routes` (flows re-routed onto the new VCs) in place.
///
/// On success the CDG of `(topology, routes)` is acyclic and the returned
/// [`RemovalReport`] describes what was added.  The routes keep using the
/// same physical links, so bandwidth assignments and the core attachment are
/// unaffected — only VC indices change, which is exactly the paper's claim
/// that the method adds "minimal virtual or physical channels".
///
/// # Errors
///
/// See [`RemovalError`]; none of the error cases occur for route sets
/// produced by `noc-routing` over a consistent topology.
pub fn remove_deadlocks(
    topology: &mut Topology,
    routes: &mut RouteSet,
    config: &RemovalConfig,
) -> Result<RemovalReport, RemovalError> {
    let mut report = RemovalReport::default();

    // The incremental engine only serves the smallest-cycle order: the
    // ablation orders rank cycles via the bounded enumeration, which is not
    // incremental, so they keep the rebuild reference path regardless of
    // the configured mode.
    let incremental =
        config.cdg_mode == CdgMode::Incremental && config.cycle_order == CycleOrder::SmallestFirst;
    let inc_scc = incremental && config.scc_mode == SccMode::Incremental;
    let mut removal_span = noc_telemetry::span("removal", "remove_deadlocks");
    removal_span
        .arg(
            "cdg_mode",
            if incremental {
                "incremental"
            } else {
                "rebuild"
            },
        )
        .arg(
            "scc_mode",
            if inc_scc {
                "incremental"
            } else {
                "full_tarjan"
            },
        );
    let mut finder = IncrementalCycleFinder::new();
    let mut scc = IncrementalScc::new();

    // Step 2–3: build the CDG and look for an initial cycle.
    let mut cdg = {
        let _span = noc_telemetry::span("removal", "cdg_build");
        Cdg::build(topology, routes)
    };
    report.cdg.full_builds = 1;
    let mut cycle = {
        let _span = noc_telemetry::span("removal", "cycle_search");
        if inc_scc {
            cdg.smallest_cycle_with_scc(&mut finder, &mut scc)
        } else if incremental {
            cdg.smallest_cycle_with(&mut finder)
        } else {
            select_cycle(&cdg, config.cycle_order)
        }
    };
    if cycle.is_none() {
        report.already_deadlock_free = true;
        return Ok(report);
    }

    // Step 4–14: break cycles until none remain.
    while let Some(current) = cycle {
        let mut iter_span = noc_telemetry::span("removal", "iteration");
        iter_span.arg("cycle_len", current.len());
        if report.cycles_broken >= config.max_iterations {
            return Err(RemovalError::IterationLimit {
                limit: config.max_iterations,
            });
        }

        // Steps 5–6: cost of breaking in each allowed direction.
        let forward = matches!(
            config.direction,
            DirectionPolicy::Both | DirectionPolicy::ForwardOnly
        )
        .then(|| cost_table(&current, routes, Direction::Forward));
        let backward = matches!(
            config.direction,
            DirectionPolicy::Both | DirectionPolicy::BackwardOnly
        )
        .then(|| cost_table(&current, routes, Direction::Backward));

        let f_best = forward.as_ref().and_then(CostTable::best);
        let b_best = backward.as_ref().and_then(CostTable::best);

        // Step 7: pick the cheaper direction (ties favour forward).
        let (cost, pos, direction) = match (f_best, b_best) {
            (Some((fc, fp)), Some((bc, bp))) => {
                if fc <= bc {
                    (fc, fp, Direction::Forward)
                } else {
                    (bc, bp, Direction::Backward)
                }
            }
            (Some((fc, fp)), None) => (fc, fp, Direction::Forward),
            (None, Some((bc, bp))) => (bc, bp, Direction::Backward),
            (None, None) => {
                return Err(RemovalError::InconsistentCycle { cycle: current });
            }
        };

        // Steps 8–10: break the cycle by duplicating channels and re-routing.
        let outcome = break_cycle(topology, routes, &current, pos, cost, direction)?;

        report.cycles_broken += 1;
        report.added_vcs += cost;
        noc_telemetry::counter("removal.cycles_broken", 1);
        noc_telemetry::counter("removal.added_vcs", cost as u64);
        iter_span
            .arg("vcs_added", cost)
            .arg(
                "direction",
                match direction {
                    Direction::Forward => "forward",
                    Direction::Backward => "backward",
                },
            )
            .arg("flows_rerouted", outcome.flows_rerouted);
        report.steps.push(BreakStep {
            cycle_len: current.len(),
            direction,
            vcs_added: cost,
            flows_rerouted: outcome.flows_rerouted,
        });

        // Step 12–13: bring the CDG up to date with the re-routed design,
        // then search for the next cycle.
        cycle = if incremental {
            // Only the re-routed flows' dependencies changed: apply their
            // deltas and seed the next search from the touched vertices.
            let mut delta = CdgDelta::default();
            for &channel in &outcome.new_channels {
                cdg.register_channel(channel, &mut delta);
            }
            for (flow, old_channels) in &outcome.rerouted {
                cdg.remove_flow_deps(*flow, old_channels, &mut delta);
                let new_channels = routes
                    .route(*flow)
                    .expect("re-routed flows exist in the route set")
                    .channels();
                cdg.add_flow_deps(*flow, new_channels, &mut delta);
            }
            let touched = delta.touched_nodes();
            let dirty_nodes = touched.len();
            for &node in touched {
                finder.mark_dirty(node);
                scc.mark_dirty(node);
            }
            iter_span.arg("dirty_nodes", dirty_nodes);
            noc_telemetry::histogram("removal.dirty_region", dirty_nodes as u64);
            report.cdg.step_deltas.push(CdgDeltaStats {
                deps_removed: delta.deps_removed,
                deps_added: delta.deps_added,
                channels_added: delta.channels_added,
                dirty_nodes,
            });
            let _span = noc_telemetry::span("removal", "cycle_search");
            if inc_scc {
                cdg.smallest_cycle_with_scc(&mut finder, &mut scc)
            } else {
                cdg.smallest_cycle_with(&mut finder)
            }
        } else {
            cdg = {
                let _span = noc_telemetry::span("removal", "cdg_build");
                Cdg::build(topology, routes)
            };
            report.cdg.full_builds += 1;
            let _span = noc_telemetry::span("removal", "cycle_search");
            select_cycle(&cdg, config.cycle_order)
        };
    }

    Ok(report)
}

/// Picks the next cycle to break according to the configured order.
fn select_cycle(cdg: &Cdg, order: CycleOrder) -> Option<Vec<Channel>> {
    match order {
        CycleOrder::SmallestFirst => cdg.smallest_cycle(),
        CycleOrder::LargestFirst => {
            let mut all = cdg.cycles(256);
            all.sort_by_key(|c| std::cmp::Reverse(c.len()));
            all.into_iter().next().or_else(|| cdg.smallest_cycle())
        }
        CycleOrder::FirstFound => cdg
            .cycles(1)
            .into_iter()
            .next()
            .or_else(|| cdg.smallest_cycle()),
    }
}

/// What one [`break_cycle`] call did, with the bookkeeping the incremental
/// CDG update needs: which flows moved (and the route each had *before* the
/// move) and which channels were created.
struct BreakOutcome {
    /// Number of flows that were re-routed.
    flows_rerouted: usize,
    /// Each re-routed flow with its pre-break channel list; the post-break
    /// list is the flow's current route.
    rerouted: Vec<(FlowId, Vec<Channel>)>,
    /// The VCs this break added, in creation order.
    new_channels: Vec<Channel>,
}

/// Breaks the dependency `pos` of `cycle` in the given direction
/// (`BreakCycleForward` / `BreakCycleBackward`): adds `cost` VCs, re-routes
/// every offending flow onto them and thereby removes the dependency edge.
fn break_cycle(
    topology: &mut Topology,
    routes: &mut RouteSet,
    cycle: &[Channel],
    pos: usize,
    cost: usize,
    direction: Direction,
) -> Result<BreakOutcome, RemovalError> {
    let len = cycle.len();
    let from = cycle[pos];
    let to = cycle[(pos + 1) % len];

    // Channels to duplicate, walking along the cycle away from the removed
    // dependency: backwards from `from` for the forward direction, forwards
    // from `to` for the backward direction.
    let mut to_duplicate = Vec::with_capacity(cost);
    for step in 0..cost {
        let channel = match direction {
            Direction::Forward => cycle[(pos + len - step) % len],
            Direction::Backward => cycle[(pos + 1 + step) % len],
        };
        to_duplicate.push(channel);
    }

    // Add one new VC per duplicated channel.
    let mut duplicates: HashMap<Channel, Channel> = HashMap::with_capacity(cost);
    let mut new_channels = Vec::with_capacity(cost);
    for &channel in &to_duplicate {
        let new_channel = topology.add_vc(channel.link)?;
        duplicates.insert(channel, new_channel);
        new_channels.push(new_channel);
    }

    // Re-route every flow that creates the removed dependency.  A route may
    // traverse the `from -> to` pair more than once (flows that re-enter the
    // cycle); every occurrence must move onto the duplicates, otherwise the
    // dependency edge survives the break and the loop re-breaks the same
    // cycle, burning extra VCs.
    let offending = offending_flows(routes, from, to);
    let mut rerouted: Vec<(FlowId, Vec<Channel>)> = Vec::with_capacity(offending.len());
    for &flow in &offending {
        let route = routes
            .route_mut(flow)
            .expect("offending flows exist in the route set");
        let channels = route.channels_mut();
        let old_channels = channels.to_vec();
        let mut modified = false;
        // Scan for every position of the `from -> to` pair.  Replacements
        // only ever rewrite channels at or before (forward) / after
        // (backward) the current occurrence, and rewrite the matched
        // channel itself, so an ascending scan visits each occurrence once.
        let mut p = 0;
        while p + 1 < channels.len() {
            if !(channels[p] == from && channels[p + 1] == to) {
                p += 1;
                continue;
            }
            modified = true;
            match direction {
                Direction::Forward => {
                    // Replace `from` and the contiguous duplicated channels
                    // preceding it in this route.
                    let mut i = p as isize;
                    while i >= 0 {
                        if let Some(&dup) = duplicates.get(&channels[i as usize]) {
                            channels[i as usize] = dup;
                            i -= 1;
                        } else {
                            break;
                        }
                    }
                }
                Direction::Backward => {
                    // Replace `to` and the contiguous duplicated channels
                    // following it in this route.
                    let mut i = p + 1;
                    while i < channels.len() {
                        if let Some(&dup) = duplicates.get(&channels[i]) {
                            channels[i] = dup;
                            i += 1;
                        } else {
                            break;
                        }
                    }
                }
            }
            p += 1;
        }
        if modified {
            rerouted.push((flow, old_channels));
        }
    }
    Ok(BreakOutcome {
        flows_rerouted: rerouted.len(),
        rerouted,
        new_channels,
    })
}

/// The flows whose route contains the channel pair `from` immediately
/// followed by `to`.
fn offending_flows(routes: &RouteSet, from: Channel, to: Channel) -> Vec<noc_topology::FlowId> {
    routes
        .iter()
        .filter(|(_, r)| r.channels().windows(2).any(|w| w[0] == from && w[1] == to))
        .map(|(f, _)| f)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use noc_routing::Route;
    use noc_topology::{FlowId, LinkId};

    /// The paper's Figure 1 example as a (topology, routes) pair.
    fn figure_1_design() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let sw: Vec<_> = (1..=4).map(|i| topo.add_switch(format!("SW{i}"))).collect();
        let links: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        let mut routes = RouteSet::new(4);
        routes.set_route(
            FlowId::from_index(0),
            Route::from_links([links[0], links[1], links[2]]),
        );
        routes.set_route(
            FlowId::from_index(1),
            Route::from_links([links[2], links[3]]),
        );
        routes.set_route(
            FlowId::from_index(2),
            Route::from_links([links[3], links[0]]),
        );
        routes.set_route(
            FlowId::from_index(3),
            Route::from_links([links[0], links[1]]),
        );
        (topo, routes)
    }

    #[test]
    fn figure_1_is_fixed_with_exactly_one_extra_vc() {
        let (mut topo, mut routes) = figure_1_design();
        let report = remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
        assert!(!report.already_deadlock_free);
        assert_eq!(report.cycles_broken, 1);
        assert_eq!(report.added_vcs, 1);
        assert_eq!(topo.extra_vc_count(), 1);
        assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
    }

    #[test]
    fn figure_4_rerouted_flows_keep_their_physical_links() {
        let (mut topo, mut routes) = figure_1_design();
        let before: Vec<Vec<LinkId>> = routes.iter().map(|(_, r)| r.links().collect()).collect();
        remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
        let after: Vec<Vec<LinkId>> = routes.iter().map(|(_, r)| r.links().collect()).collect();
        assert_eq!(before, after, "removal must only change VC assignments");
    }

    #[test]
    fn acyclic_input_is_reported_as_already_deadlock_free() {
        let (mut topo, mut routes) = figure_1_design();
        // Drop F3 (the flow closing the cycle): CDG becomes acyclic.
        routes.set_route(FlowId::from_index(2), Route::empty());
        let report = remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
        assert!(report.already_deadlock_free);
        assert_eq!(report.added_vcs, 0);
        assert_eq!(topo.extra_vc_count(), 0);
    }

    #[test]
    fn forward_only_and_backward_only_policies_also_terminate() {
        for direction in [DirectionPolicy::ForwardOnly, DirectionPolicy::BackwardOnly] {
            let (mut topo, mut routes) = figure_1_design();
            let config = RemovalConfig {
                direction,
                ..RemovalConfig::default()
            };
            let report = remove_deadlocks(&mut topo, &mut routes, &config).unwrap();
            assert!(report.added_vcs >= 1);
            assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
        }
    }

    #[test]
    fn alternative_cycle_orders_also_terminate() {
        for order in [CycleOrder::LargestFirst, CycleOrder::FirstFound] {
            let (mut topo, mut routes) = figure_1_design();
            let config = RemovalConfig {
                cycle_order: order,
                ..RemovalConfig::default()
            };
            remove_deadlocks(&mut topo, &mut routes, &config).unwrap();
            assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
        }
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let (mut topo, mut routes) = figure_1_design();
        let config = RemovalConfig {
            max_iterations: 0,
            ..RemovalConfig::default()
        };
        let err = remove_deadlocks(&mut topo, &mut routes, &config).unwrap_err();
        assert_eq!(err, RemovalError::IterationLimit { limit: 0 });
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn two_counter_rotating_rings_need_two_vcs() {
        // Two disjoint cycles in the CDG: a clockwise ring of flows and a
        // counter-clockwise ring on the opposite links.
        let mut topo = Topology::new();
        let sw: Vec<_> = (0..4).map(|i| topo.add_switch(format!("s{i}"))).collect();
        let cw: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        let ccw: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[(i + 1) % 4], sw[i], 1.0))
            .collect();
        let mut routes = RouteSet::new(8);
        for i in 0..4 {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([cw[i], cw[(i + 1) % 4]]),
            );
            routes.set_route(
                FlowId::from_index(4 + i),
                Route::from_links([ccw[i], ccw[(i + 1) % 4]]),
            );
        }
        let mut report_topo = topo.clone();
        let mut report_routes = routes.clone();
        let report = remove_deadlocks(
            &mut report_topo,
            &mut report_routes,
            &RemovalConfig::default(),
        )
        .unwrap();
        assert!(verify::check_deadlock_free(&report_topo, &report_routes).is_ok());
        assert_eq!(report.cycles_broken, 2);
        assert_eq!(report.added_vcs, 2);
    }

    #[test]
    fn report_counts_flows_rerouted() {
        let (mut topo, mut routes) = figure_1_design();
        let report = remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default()).unwrap();
        // Breaking D1 (L0 -> L1) re-routes the two flows that create it (F1, F4).
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.steps[0].flows_rerouted, 2);
        assert_eq!(report.steps[0].cycle_len, 4);
    }

    /// A design whose only smallest cycle is broken at a dependency that one
    /// flow traverses twice: F0 goes around `A -> B`, detours through W1/W2,
    /// and crosses `A -> B` again.  F1 and F2 create the other two
    /// dependencies of the CDG cycle [A, B, C] at forward cost 3 each, so
    /// the forward cost table is [3, 3, 3] and the tie-break selects the
    /// doubled dependency `A -> B`.
    fn double_crossing_design() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let s1 = topo.add_switch("s1");
        // Nine parallel links: A, B, C (the cycle), W1, W2 (F0's detour),
        // Y0, Y1 and Z0, Z1 (the detours of F1 and F2).
        let l: Vec<Channel> = (0..9)
            .map(|_| Channel::base(topo.add_link(s0, s1, 1.0)))
            .collect();
        let (a, b, c, w1, w2, y0, y1, z0, z1) =
            (l[0], l[1], l[2], l[3], l[4], l[5], l[6], l[7], l[8]);
        let mut routes = RouteSet::new(3);
        routes.set_route(
            FlowId::from_index(0),
            noc_routing::Route::new(vec![a, b, w1, w2, a, b]),
        );
        routes.set_route(
            FlowId::from_index(1),
            noc_routing::Route::new(vec![b, y0, c, y1, b, c]),
        );
        routes.set_route(
            FlowId::from_index(2),
            noc_routing::Route::new(vec![c, z0, a, z1, c, a]),
        );
        (topo, routes)
    }

    #[test]
    fn break_cycle_reroutes_every_occurrence_of_the_pair() {
        let (mut topo, mut routes) = double_crossing_design();
        let channels: Vec<Channel> = topo.channels().collect();
        let (a, b, c) = (channels[0], channels[1], channels[2]);
        // Break the dependency A -> B of the cycle [A, B, C] forward at
        // cost 1 (duplicate A only).
        let outcome =
            break_cycle(&mut topo, &mut routes, &[a, b, c], 0, 1, Direction::Forward).unwrap();
        assert_eq!(outcome.flows_rerouted, 1, "one flow crosses A -> B (twice)");
        assert_eq!(outcome.new_channels.len(), 1, "cost 1 adds one VC");
        assert_eq!(outcome.rerouted.len(), 1);
        assert_eq!(
            outcome.rerouted[0].1[0], a,
            "the captured route is the pre-break one"
        );
        // Both occurrences must have moved off the pair, otherwise the
        // dependency edge survives the break.
        assert!(
            offending_flows(&routes, a, b).is_empty(),
            "no route may still traverse the broken pair"
        );
        let f0 = routes.route(FlowId::from_index(0)).unwrap().channels();
        assert_eq!(f0[0], f0[4], "both crossings use the same duplicate");
        assert_ne!(f0[0], a);
    }

    #[test]
    fn multi_occurrence_pair_is_fully_rerouted_end_to_end() {
        let (mut topo, mut routes) = double_crossing_design();
        // Forward-only makes the cost analysis above exact: the first break
        // attacks the doubled dependency A -> B.
        let config = RemovalConfig {
            direction: DirectionPolicy::ForwardOnly,
            ..RemovalConfig::default()
        };
        let report = remove_deadlocks(&mut topo, &mut routes, &config).unwrap();
        assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
        assert_eq!(
            topo.extra_vc_count(),
            report.added_vcs,
            "every added VC is accounted for exactly once"
        );
        // One break per remaining cycle — re-breaking the same cycle because
        // an occurrence survived would inflate both counters.
        assert_eq!(report.cycles_broken, PINNED_CYCLES_BROKEN);
        assert_eq!(report.added_vcs, PINNED_ADDED_VCS);
    }

    // Pinned outcome of `multi_occurrence_pair_is_fully_rerouted_end_to_end`:
    // the algorithm is fully deterministic, so any change to these numbers
    // is a behavioural change of the removal loop.
    const PINNED_CYCLES_BROKEN: usize = 6;
    const PINNED_ADDED_VCS: usize = 11;

    #[test]
    fn incremental_scc_mode_matches_full_tarjan_mode() {
        for design in [figure_1_design(), double_crossing_design()] {
            let (mut topo_a, mut routes_a) = design.clone();
            let (mut topo_b, mut routes_b) = design;
            let inc = RemovalConfig::default();
            let full = RemovalConfig {
                scc_mode: SccMode::FullTarjan,
                ..RemovalConfig::default()
            };
            let report_a = remove_deadlocks(&mut topo_a, &mut routes_a, &inc).unwrap();
            let report_b = remove_deadlocks(&mut topo_b, &mut routes_b, &full).unwrap();
            assert!(report_a.same_outcome(&report_b));
            assert_eq!(topo_a.extra_vc_count(), topo_b.extra_vc_count());
            let a: Vec<_> = routes_a
                .iter()
                .map(|(_, r)| r.channels().to_vec())
                .collect();
            let b: Vec<_> = routes_b
                .iter()
                .map(|(_, r)| r.channels().to_vec())
                .collect();
            assert_eq!(a, b, "both SCC modes must produce identical routes");
        }
    }

    #[test]
    fn error_display_for_inconsistent_cycle() {
        let err = RemovalError::InconsistentCycle {
            cycle: vec![Channel::base(LinkId::from_index(0))],
        };
        assert!(err.to_string().contains("no responsible flow"));
    }
}
