//! Strongly-typed identifiers for switches, links, channels, cores and flows.
//!
//! Newtypes keep the many `usize` indices used across the suite from being
//! mixed up (a `SwitchId` can never be passed where a `CoreId` is expected).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(usize);

        impl $name {
            /// Creates an id from a raw dense index.
            pub fn from_index(index: usize) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this id.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a switch in a [`Topology`](crate::Topology).
    SwitchId,
    "SW"
);
id_type!(
    /// Identifier of a directed physical link in a [`Topology`](crate::Topology).
    LinkId,
    "L"
);
id_type!(
    /// Identifier of a core (IP block) in a [`CommGraph`](crate::CommGraph).
    CoreId,
    "C"
);
id_type!(
    /// Identifier of a communication flow in a [`CommGraph`](crate::CommGraph).
    FlowId,
    "F"
);

/// A *channel* in the sense of the paper: one virtual channel of one physical
/// link.  Routes are ordered lists of channels, and the channel dependency
/// graph has one vertex per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// The physical link the channel belongs to.
    pub link: LinkId,
    /// The virtual-channel index on that link (0-based; every link has at
    /// least VC 0).
    pub vc: usize,
}

impl Channel {
    /// Creates a channel from a link and a VC index.
    pub fn new(link: LinkId, vc: usize) -> Self {
        Channel { link, vc }
    }

    /// The base channel (VC 0) of a link.
    pub fn base(link: LinkId) -> Self {
        Channel { link, vc: 0 }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vc == 0 {
            write!(f, "{}", self.link)
        } else {
            write!(f, "{}'{}", self.link, self.vc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_indices() {
        assert_eq!(SwitchId::from_index(3).index(), 3);
        assert_eq!(LinkId::from_index(7).index(), 7);
        assert_eq!(CoreId::from_index(0).index(), 0);
        assert_eq!(FlowId::from_index(12).index(), 12);
    }

    #[test]
    fn display_uses_paper_style_prefixes() {
        assert_eq!(SwitchId::from_index(1).to_string(), "SW1");
        assert_eq!(LinkId::from_index(2).to_string(), "L2");
        assert_eq!(CoreId::from_index(3).to_string(), "C3");
        assert_eq!(FlowId::from_index(4).to_string(), "F4");
    }

    #[test]
    fn channel_display_marks_extra_vcs() {
        let l = LinkId::from_index(1);
        assert_eq!(Channel::base(l).to_string(), "L1");
        assert_eq!(Channel::new(l, 1).to_string(), "L1'1");
    }

    #[test]
    fn channel_ordering_is_by_link_then_vc() {
        let l0 = LinkId::from_index(0);
        let l1 = LinkId::from_index(1);
        assert!(Channel::new(l0, 1) < Channel::new(l1, 0));
        assert!(Channel::new(l0, 0) < Channel::new(l0, 1));
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Channel::new(LinkId::from_index(0), 0), "a");
        m.insert(Channel::new(LinkId::from_index(0), 1), "b");
        assert_eq!(m.len(), 2);
    }
}
