//! Knot detection on top of the strongly-connected components.
//!
//! A **knot** of a directed graph is a strongly-connected component with no
//! edge leaving it: once a token is inside, *every* path stays inside.  In
//! waiting-graph terms (Dally/Verbeek-style deadlock analysis) a cyclic knot
//! is exactly an inescapable configuration — every member's successors are
//! all members too, so under OR-semantics ("one live successor is enough to
//! escape") nothing inside can ever become live.  A cycle that is *not*
//! contained in a knot always offers at least one escape successor and is
//! therefore not sufficient for a deadlock on its own.
//!
//! The certified static verifier (`core::certify`) uses this module to
//! validate trap witnesses: the worm wait-for digraph of a witness must be a
//! cyclic knot, otherwise some worm has an escape and the configuration
//! drains.

use crate::csr::GraphView;
use crate::digraph::NodeId;
use crate::scc::tarjan_scc;

/// The strongly-connected components of `graph` with no edge leaving the
/// component (the *sink* components of the condensation), in the reverse
/// topological order [`tarjan_scc`] yields.
///
/// Every graph with at least one node has at least one sink component; a
/// trivial single node with no outgoing edges is one.
pub fn sink_components<G: GraphView>(graph: &G) -> Vec<Vec<NodeId>> {
    let components = tarjan_scc(graph);
    let mut component_of = vec![usize::MAX; graph.node_count()];
    for (index, component) in components.iter().enumerate() {
        for &node in component {
            component_of[node.index()] = index;
        }
    }
    components
        .iter()
        .enumerate()
        .filter(|(index, component)| {
            component.iter().all(|&node| {
                graph
                    .successors(node)
                    .all(|succ| component_of[succ.index()] == *index)
            })
        })
        .map(|(_, component)| component.clone())
        .collect()
}

/// The **cyclic knots** of `graph`: sink components that contain a cycle
/// (more than one node, or a single node with a self-loop).  Empty iff every
/// cycle of the graph can reach an escape successor outside its component.
pub fn knots<G: GraphView>(graph: &G) -> Vec<Vec<NodeId>> {
    sink_components(graph)
        .into_iter()
        .filter(|component| component.len() > 1 || component.iter().any(|&n| graph.has_edge(n, n)))
        .collect()
}

/// `true` when `graph` contains no cyclic knot — every node can reach a node
/// that is outside every cycle, so no inescapable waiting configuration
/// exists.
pub fn is_knot_free<G: GraphView>(graph: &G) -> bool {
    knots(graph).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    fn graph(nodes: usize, edges: &[(usize, usize)]) -> DiGraph<usize, ()> {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..nodes).map(|i| g.add_node(i)).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a], ids[b], ());
        }
        g
    }

    fn as_indices<N: Copy + Ord>(g: &DiGraph<N, ()>, components: Vec<Vec<NodeId>>) -> Vec<Vec<N>> {
        let mut out: Vec<Vec<N>> = components
            .into_iter()
            .map(|c| {
                let mut c: Vec<N> = c.into_iter().map(|n| *g.node_weight(n).unwrap()).collect();
                c.sort();
                c
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn pure_cycle_is_a_knot() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(as_indices(&g, knots(&g)), vec![vec![0, 1, 2]]);
        assert!(!is_knot_free(&g));
    }

    #[test]
    fn cycle_with_an_escape_edge_is_not_a_knot() {
        // The triangle can leak into node 3, which terminates: every member
        // has an escape path.
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (1, 3)]);
        assert!(knots(&g).is_empty());
        assert!(is_knot_free(&g));
        // Node 3 is still a (trivial, acyclic) sink component.
        assert_eq!(as_indices(&g, sink_components(&g)), vec![vec![3]]);
    }

    #[test]
    fn escape_into_another_cycle_moves_the_knot_downstream() {
        // Cycle {0,1} escapes into cycle {2,3}, which has no way out: only
        // the downstream cycle is a knot.
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        assert_eq!(as_indices(&g, knots(&g)), vec![vec![2, 3]]);
    }

    #[test]
    fn self_loop_is_a_knot_but_a_plain_sink_is_not() {
        let g = graph(2, &[(0, 0)]);
        assert_eq!(as_indices(&g, knots(&g)), vec![vec![0]]);
        // Node 1 has no edges at all: a sink component, but acyclic.
        assert_eq!(sink_components(&g).len(), 2);
    }

    #[test]
    fn two_disjoint_cycles_are_two_knots() {
        let g = graph(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        assert_eq!(as_indices(&g, knots(&g)), vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn empty_graph_has_no_knots() {
        let g: DiGraph<usize, ()> = DiGraph::new();
        assert!(sink_components(&g).is_empty());
        assert!(is_knot_free(&g));
    }
}
