//! Property-based tests for the graph substrate.

use noc_graph::{cycles, scc, shortest_path, topo, traversal, DiGraph, NodeId};
use proptest::prelude::*;

/// Strategy producing a random directed graph with `n` nodes and a list of
/// edges `(src, dst)`.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_nodes).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_edges);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(usize, usize)]) -> (DiGraph<usize, ()>, Vec<NodeId>) {
    let mut g = DiGraph::new();
    let nodes: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
    for &(a, b) in edges {
        g.add_edge(nodes[a], nodes[b], ());
    }
    (g, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tarjan SCC partitions the node set: every node in exactly one component.
    #[test]
    fn scc_is_a_partition((n, edges) in arb_graph(30, 120)) {
        let (g, _) = build(n, &edges);
        let comps = scc::tarjan_scc(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        prop_assert_eq!(total, n);
        let mut seen = vec![false; n];
        for c in &comps {
            for node in c {
                prop_assert!(!seen[node.index()]);
                seen[node.index()] = true;
            }
        }
    }

    /// The three cycle oracles agree: topological sort exists <=> Tarjan finds
    /// no cyclic component <=> smallest_cycle returns None.
    #[test]
    fn cycle_oracles_agree((n, edges) in arb_graph(25, 80)) {
        let (g, _) = build(n, &edges);
        let dag = topo::is_dag(&g);
        prop_assert_eq!(dag, !scc::has_cycle(&g));
        prop_assert_eq!(dag, cycles::smallest_cycle(&g).is_none());
        prop_assert_eq!(dag, cycles::is_acyclic(&g));
    }

    /// Any cycle returned is a real cycle: consecutive nodes are connected and
    /// the last node connects back to the first.
    #[test]
    fn returned_cycle_is_valid((n, edges) in arb_graph(25, 80)) {
        let (g, _) = build(n, &edges);
        if let Some(cycle) = cycles::smallest_cycle(&g) {
            prop_assert!(!cycle.is_empty());
            for w in cycle.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            prop_assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
            // A smallest cycle visits each node at most once.
            let mut sorted = cycle.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), cycle.len());
        }
    }

    /// BFS path lengths equal Dijkstra hop distances.
    #[test]
    fn bfs_and_dijkstra_agree_on_hops((n, edges) in arb_graph(20, 60)) {
        let (g, nodes) = build(n, &edges);
        let src = nodes[0];
        let sp = shortest_path::hop_distances(&g, src);
        for &dst in &nodes {
            let bfs = traversal::bfs_path(&g, src, dst).map(|p| (p.len() - 1) as u64);
            prop_assert_eq!(bfs, sp.distance(dst));
        }
    }

    /// A topological order, when it exists, respects every edge.
    #[test]
    fn topological_order_respects_edges((n, edges) in arb_graph(25, 60)) {
        let (g, _) = build(n, &edges);
        if let Some(order) = topo::topological_sort(&g) {
            let pos: Vec<usize> = {
                let mut p = vec![0; n];
                for (i, node) in order.iter().enumerate() {
                    p[node.index()] = i;
                }
                p
            };
            for e in g.edges() {
                prop_assert!(pos[e.source.index()] < pos[e.target.index()]);
            }
        }
    }

    /// Removing every edge of a found cycle makes that particular cycle
    /// impossible (the graph may still have other cycles, but at least one
    /// fewer).
    #[test]
    fn removing_cycle_edges_reduces_cycles((n, edges) in arb_graph(15, 40)) {
        let (mut g, _) = build(n, &edges);
        if let Some(cycle) = cycles::smallest_cycle(&g) {
            for i in 0..cycle.len() {
                let a = cycle[i];
                let b = cycle[(i + 1) % cycle.len()];
                while let Some(e) = g.find_edge(a, b) {
                    g.remove_edge(e);
                }
            }
            // The specific cycle cannot exist any more: at least one of its
            // consecutive pairs has no edge.
            let still_complete = (0..cycle.len()).all(|i| {
                g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()])
            });
            prop_assert!(!still_complete);
        }
    }

    /// Dijkstra distances satisfy the triangle inequality over direct edges.
    #[test]
    fn dijkstra_triangle_inequality((n, edges) in arb_graph(20, 60)) {
        let (g, nodes) = build(n, &edges);
        let src = nodes[0];
        let sp = shortest_path::dijkstra(&g, src, |_| Some(1));
        for e in g.edges() {
            if let (Some(du), Some(dv)) = (sp.distance(e.source), sp.distance(e.target)) {
                prop_assert!(dv <= du + 1);
            }
        }
    }
}
