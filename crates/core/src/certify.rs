//! Certified deadlock-freedom: an exact static decision for the simulated
//! traffic model.
//!
//! [`check_deadlock_free`](crate::verify::check_deadlock_free) implements the
//! paper's conservative condition: *any* CDG cycle condemns the design.  The
//! VC-fidelity simulation showed that condition is necessary but **not
//! sufficient** — injection FIFOs and shared source links serialise many
//! would-be cycle participants, so Algorithm 1 spends VCs on cycles that can
//! never trap.  This module implements the sharper, Verbeek/Schmaltz-style
//! condition: search for a *genuinely trappable configuration* and certify
//! the design free only when none exists.
//!
//! # The certified traffic model
//!
//! The verdict is exact for the workload model the VC engine
//! (`noc_sim::vc_engine`) realises under the `AssignedVc` policy with
//! saturating **long worms**:
//!
//! * one in-flight packet per flow (per-flow injection FIFO),
//! * packet length exceeding the buffering of any claimed route prefix, so a
//!   blocked worm's tail stays at its source and the worm *owns* every
//!   channel of its claimed prefix `route[0..=h]` (its **footprint**),
//! * channel ownership is exclusive and released only when the tail leaves,
//! * the head at hop `h` waits on the candidate channel(s) of hop `h + 1`
//!   (a singleton under `AssignedVc`: the route's assigned channel, derived
//!   here from [`RouteSet`] + [`VcMap`]); the final hop always ejects.
//!
//! A **trap** is a set of worms `{(flow_i, h_i)}` with distinct flows,
//! `h_i ≤ len_i − 2`, pairwise-disjoint footprints, where every worm's
//! candidate channels all lie inside the footprints of worms in the set
//! (OR-semantics, mirroring `noc_sim::detect`'s liveness propagation: one
//! uncovered candidate is an escape).  A trap is inescapable by
//! construction — the worm wait-for digraph is a *knot*
//! ([`noc_graph::knots`]) — and, under the model above, reachable by greedy
//! injection, so:
//!
//! * [`CertifyVerdict::CertifiedFree`] soundly implies the runtime wait-for
//!   graph never fires for long-worm workloads, and
//! * [`CertifyVerdict::CertifiedDeadlockable`] carries a machine-checkable
//!   [`TrapWitness`] (see [`TrapWitness::verify`]).
//!
//! The search is exhaustive over minimal traps: every minimal trap is a worm
//! cycle whose wait segments live inside one cyclic CDG component, so the
//! backtracking is seeded per component and covers uncovered wait channels
//! one at a time.  A step budget ([`CertifyConfig::search_budget`]) bounds
//! the worst case; exhausting it yields [`CertifyVerdict::Unknown`], never a
//! wrong verdict.
//!
//! # Example
//!
//! ```
//! use noc_deadlock::certify::{certify_deadlock_free, CertifyVerdict};
//! use noc_routing::{Route, RouteSet};
//! use noc_topology::{FlowId, Topology};
//!
//! // Figure 1 of the paper: four flows on a unidirectional ring.
//! let mut topo = Topology::new();
//! let sw: Vec<_> = (0..4).map(|i| topo.add_switch(format!("s{i}"))).collect();
//! let links: Vec<_> = (0..4)
//!     .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
//!     .collect();
//! let mut routes = RouteSet::new(4);
//! routes.set_route(FlowId::from_index(0), Route::from_links([links[0], links[1], links[2]]));
//! routes.set_route(FlowId::from_index(1), Route::from_links([links[2], links[3]]));
//! routes.set_route(FlowId::from_index(2), Route::from_links([links[3], links[0]]));
//! routes.set_route(FlowId::from_index(3), Route::from_links([links[0], links[1]]));
//!
//! let report = certify_deadlock_free(&topo, &routes);
//! assert!(report.cyclic_cdg);
//! let CertifyVerdict::CertifiedDeadlockable(witness) = &report.verdict else {
//!     panic!("figure 1 must be trappable");
//! };
//! assert!(witness.verify(&topo, &routes).is_ok());
//! ```

use crate::cdg::Cdg;
use crate::vcmap::VcMap;
use noc_graph::{knots, scc, DiGraph, NodeId};
use noc_routing::RouteSet;
use noc_topology::{Channel, FlowId, Topology};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Tuning knobs for [`certify_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyConfig {
    /// Maximum number of worm placements the backtracking search may try
    /// across the whole design before giving up with
    /// [`CertifyVerdict::Unknown`].
    pub search_budget: usize,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            search_budget: 2_000_000,
        }
    }
}

/// One blocked worm of a [`TrapWitness`]: `flow`'s single in-flight packet
/// with its head having claimed hop `head_hop`, owning the footprint
/// `route[0..=head_hop]` and waiting on the candidate channel of hop
/// `head_hop + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrapWorm {
    /// The flow whose packet is blocked.
    pub flow: FlowId,
    /// Hop index of the last claimed channel (`≤ route length − 2`).
    pub head_hop: usize,
}

impl fmt::Display for TrapWorm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.flow, self.head_hop)
    }
}

/// A trappable configuration: the evidence behind
/// [`CertifyVerdict::CertifiedDeadlockable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapWitness {
    /// The blocked worms, in search-discovery order.
    pub worms: Vec<TrapWorm>,
}

impl fmt::Display for TrapWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap of {} worm(s): ", self.worms.len())?;
        for (i, worm) in self.worms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{worm}")?;
        }
        Ok(())
    }
}

/// Why a [`TrapWitness`] failed [`TrapWitness::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// The witness has no worms.
    Empty,
    /// A worm references a flow with no (or too short a) route.
    HeadHopOutOfRange {
        /// The offending worm.
        worm: TrapWorm,
        /// The hop count of the flow's route (0 when the route is absent).
        hops: usize,
    },
    /// Two worms share a flow — the model allows one in-flight packet per
    /// flow.
    DuplicateFlow(FlowId),
    /// Two worms claim the same channel — ownership is exclusive.
    OverlappingFootprints(Channel),
    /// A worm's wait channel is not covered by any footprint: the worm can
    /// escape, so the configuration drains.
    EscapableWorm {
        /// The worm with an escape.
        worm: TrapWorm,
        /// The uncovered candidate channel it would escape through.
        channel: Channel,
    },
    /// The worm wait-for digraph contains no knot — internal consistency
    /// check; unreachable for witnesses that pass the coverage checks.
    NoKnot,
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::Empty => write!(f, "witness has no worms"),
            WitnessError::HeadHopOutOfRange { worm, hops } => write!(
                f,
                "worm {worm} is out of range for a route of {hops} hop(s)"
            ),
            WitnessError::DuplicateFlow(flow) => {
                write!(f, "flow {flow} appears in more than one worm")
            }
            WitnessError::OverlappingFootprints(channel) => {
                write!(f, "channel {channel} is claimed by more than one worm")
            }
            WitnessError::EscapableWorm { worm, channel } => {
                write!(f, "worm {worm} can escape through uncovered {channel}")
            }
            WitnessError::NoKnot => write!(f, "worm wait-for digraph has no knot"),
        }
    }
}

impl Error for WitnessError {}

impl TrapWitness {
    /// The footprint of worm `index`: the channels `route[0..=head_hop]` its
    /// blocked packet owns.  Empty when the flow has no route.
    pub fn footprint(&self, routes: &RouteSet, index: usize) -> Vec<Channel> {
        let worm = self.worms[index];
        routes
            .route(worm.flow)
            .map(|route| route.channels()[..=worm.head_hop].to_vec())
            .unwrap_or_default()
    }

    /// Checks that the witness really is an inescapable configuration under
    /// the certified traffic model: structural sanity (distinct flows, head
    /// hops in range, exclusive footprints), full coverage of every worm's
    /// candidate wait channels, and — mirroring `noc_sim::detect`'s
    /// OR-liveness — that no worm can reach the escape node of the worm
    /// wait-for digraph, which must therefore contain a knot.
    ///
    /// # Errors
    ///
    /// Returns the first [`WitnessError`] found, in the order of the checks
    /// above.
    pub fn verify(&self, topology: &Topology, routes: &RouteSet) -> Result<(), WitnessError> {
        if self.worms.is_empty() {
            return Err(WitnessError::Empty);
        }
        let vcs = VcMap::from_design(topology, routes);
        let mut flows = HashSet::new();
        for &worm in &self.worms {
            let hops = routes
                .route(worm.flow)
                .map(|route| route.channels().len())
                .unwrap_or(0);
            if hops < 2 || worm.head_hop > hops - 2 {
                return Err(WitnessError::HeadHopOutOfRange { worm, hops });
            }
            if !flows.insert(worm.flow) {
                return Err(WitnessError::DuplicateFlow(worm.flow));
            }
        }
        // Exclusive ownership: map every claimed channel to its owning worm.
        let mut owner: HashMap<Channel, usize> = HashMap::new();
        for (index, _) in self.worms.iter().enumerate() {
            for channel in self.footprint(routes, index) {
                match owner.insert(channel, index) {
                    Some(previous) if previous != index => {
                        return Err(WitnessError::OverlappingFootprints(channel));
                    }
                    _ => {}
                }
            }
        }
        // Worm wait-for digraph: one node per worm plus an escape node; a
        // worm points at the owner of each candidate wait channel, or at the
        // escape node when a candidate is unowned.
        let mut graph: DiGraph<usize, ()> = DiGraph::new();
        let nodes: Vec<NodeId> = (0..self.worms.len()).map(|i| graph.add_node(i)).collect();
        let escape = graph.add_node(usize::MAX);
        let mut escapes: Vec<(TrapWorm, Channel)> = Vec::new();
        for (index, &worm) in self.worms.iter().enumerate() {
            let route = routes.route(worm.flow).expect("checked above");
            for candidate in wait_candidates(route.channels(), &vcs, worm.flow, worm.head_hop) {
                match owner.get(&candidate) {
                    Some(&covering) => {
                        graph.add_edge(nodes[index], nodes[covering], ());
                    }
                    None => {
                        graph.add_edge(nodes[index], escape, ());
                        escapes.push((worm, candidate));
                    }
                }
            }
        }
        if let Some(&(worm, channel)) = escapes.first() {
            return Err(WitnessError::EscapableWorm { worm, channel });
        }
        // With every candidate covered no worm reaches the escape node, so
        // the worm subgraph must contain a cyclic knot.
        if knots::is_knot_free(&graph) {
            return Err(WitnessError::NoKnot);
        }
        Ok(())
    }
}

/// Why [`certify_with`] could not decide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnknownReason {
    /// The backtracking search hit [`CertifyConfig::search_budget`] before
    /// either finding a trap or exhausting the space.
    BudgetExhausted {
        /// Steps spent when the search gave up.
        steps: usize,
    },
    /// The search produced a witness that failed [`TrapWitness::verify`] —
    /// defensive; indicates an internal inconsistency rather than a property
    /// of the design.
    WitnessRejected {
        /// The verification failure, rendered.
        detail: String,
    },
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::BudgetExhausted { steps } => {
                write!(f, "search budget exhausted after {steps} step(s)")
            }
            UnknownReason::WitnessRejected { detail } => {
                write!(f, "search witness rejected: {detail}")
            }
        }
    }
}

/// The three-valued outcome of certification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyVerdict {
    /// No trappable configuration exists: under the certified traffic model
    /// the runtime wait-for graph can never fire.
    CertifiedFree,
    /// A trappable configuration exists; the witness passes
    /// [`TrapWitness::verify`].
    CertifiedDeadlockable(TrapWitness),
    /// The search could not decide.
    Unknown(UnknownReason),
}

impl CertifyVerdict {
    /// Stable lower-case name for reports and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            CertifyVerdict::CertifiedFree => "certified-free",
            CertifyVerdict::CertifiedDeadlockable(_) => "certified-deadlockable",
            CertifyVerdict::Unknown(_) => "unknown",
        }
    }
}

impl fmt::Display for CertifyVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyVerdict::CertifiedDeadlockable(witness) => {
                write!(f, "{} ({witness})", self.name())
            }
            CertifyVerdict::Unknown(reason) => write!(f, "{} ({reason})", self.name()),
            CertifyVerdict::CertifiedFree => f.write_str(self.name()),
        }
    }
}

/// The result of [`certify_deadlock_free`] / [`certify_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyReport {
    /// The three-valued verdict.
    pub verdict: CertifyVerdict,
    /// Whether the CDG was cyclic at all.  `cyclic_cdg` together with a
    /// [`CertifyVerdict::CertifiedFree`] verdict marks a *conservatism-gap*
    /// point: the paper's check condemns the design, yet it cannot trap.
    pub cyclic_cdg: bool,
    /// Worm placements the backtracking search tried (0 on the acyclic fast
    /// path).
    pub search_steps: usize,
}

impl CertifyReport {
    /// `true` for [`CertifyVerdict::CertifiedFree`].
    pub fn is_certified_free(&self) -> bool {
        matches!(self.verdict, CertifyVerdict::CertifiedFree)
    }

    /// The witness, when the design is certified deadlockable.
    pub fn witness(&self) -> Option<&TrapWitness> {
        match &self.verdict {
            CertifyVerdict::CertifiedDeadlockable(witness) => Some(witness),
            _ => None,
        }
    }
}

/// Certifies `routes` on `topology` with the default [`CertifyConfig`].
pub fn certify_deadlock_free(topology: &Topology, routes: &RouteSet) -> CertifyReport {
    certify_with(topology, routes, &CertifyConfig::default())
}

/// Certifies `routes` on `topology`: decides whether a trappable
/// configuration (see the module docs) exists, exactly, up to the
/// configured search budget.
pub fn certify_with(
    topology: &Topology,
    routes: &RouteSet,
    config: &CertifyConfig,
) -> CertifyReport {
    let cdg = Cdg::build(topology, routes);
    if cdg.is_acyclic() {
        return CertifyReport {
            verdict: CertifyVerdict::CertifiedFree,
            cyclic_cdg: false,
            search_steps: 0,
        };
    }
    let vcs = VcMap::from_design(topology, routes);
    // Every (channel → occurrences in routes) pair, in flow order: the
    // branch universe for covering an uncovered wait channel.
    let mut occurrences: HashMap<Channel, Vec<(FlowId, usize)>> = HashMap::new();
    for (flow, route) in routes.iter() {
        for (position, &channel) in route.channels().iter().enumerate() {
            occurrences
                .entry(channel)
                .or_default()
                .push((flow, position));
        }
    }
    let mut steps = 0usize;
    for component in scc::cyclic_components(cdg.graph()) {
        let in_scc: HashSet<Channel> = component
            .iter()
            .map(|&node| *cdg.graph().node_weight(node).expect("scc node"))
            .collect();
        match search_component(
            routes,
            &vcs,
            &occurrences,
            &in_scc,
            config.search_budget,
            &mut steps,
        ) {
            SearchOutcome::Found(worms) => {
                let witness = TrapWitness { worms };
                let verdict = match witness.verify(topology, routes) {
                    Ok(()) => CertifyVerdict::CertifiedDeadlockable(witness),
                    Err(error) => CertifyVerdict::Unknown(UnknownReason::WitnessRejected {
                        detail: error.to_string(),
                    }),
                };
                return CertifyReport {
                    verdict,
                    cyclic_cdg: true,
                    search_steps: steps,
                };
            }
            SearchOutcome::Exhausted => {
                return CertifyReport {
                    verdict: CertifyVerdict::Unknown(UnknownReason::BudgetExhausted { steps }),
                    cyclic_cdg: true,
                    search_steps: steps,
                };
            }
            SearchOutcome::NotFound => {}
        }
    }
    CertifyReport {
        verdict: CertifyVerdict::CertifiedFree,
        cyclic_cdg: true,
        search_steps: steps,
    }
}

/// The candidate channels a worm of `flow` blocked at `head_hop` waits on:
/// the hop-`head_hop + 1` channels the policy may use.  Under `AssignedVc`
/// this is the single channel the [`VcMap`] assigns.
fn wait_candidates(
    channels: &[Channel],
    vcs: &VcMap,
    flow: FlowId,
    head_hop: usize,
) -> Vec<Channel> {
    let hop = head_hop + 1;
    let link = channels[hop].link;
    let vc = vcs.assigned_vc(flow, hop).unwrap_or(channels[hop].vc);
    vec![Channel::new(link, vc)]
}

enum SearchOutcome {
    Found(Vec<TrapWorm>),
    Exhausted,
    NotFound,
}

struct SearchState {
    worms: Vec<TrapWorm>,
    used_flows: HashSet<FlowId>,
    footprint: HashSet<Channel>,
    /// Wait channels still needing coverage, as a stack.  Entries may be
    /// covered lazily by a later worm's footprint; that is re-checked when
    /// an entry is popped.
    uncovered: Vec<Channel>,
}

struct WormUndo {
    claimed: Vec<Channel>,
    pushed_waits: usize,
}

impl SearchState {
    fn new() -> Self {
        SearchState {
            worms: Vec::new(),
            used_flows: HashSet::new(),
            footprint: HashSet::new(),
            uncovered: Vec::new(),
        }
    }

    /// Tries to add worm `(flow, head_hop)`: claims its footprint (failing
    /// on any overlap with another worm's) and pushes its still-uncovered
    /// wait channels.  Returns the undo record on success.
    fn push_worm(
        &mut self,
        routes: &RouteSet,
        vcs: &VcMap,
        flow: FlowId,
        head_hop: usize,
    ) -> Option<WormUndo> {
        let channels = routes.route(flow).expect("flow has a route").channels();
        let mut claimed = Vec::new();
        for &channel in &channels[..=head_hop] {
            if self.footprint.insert(channel) {
                claimed.push(channel);
            } else if !claimed.contains(&channel) {
                // Owned by an earlier worm (a route may revisit its *own*
                // channels, which is fine): conflict, roll back.
                for undo in claimed {
                    self.footprint.remove(&undo);
                }
                return None;
            }
        }
        let mut pushed_waits = 0;
        for candidate in wait_candidates(channels, vcs, flow, head_hop) {
            if !self.footprint.contains(&candidate) {
                self.uncovered.push(candidate);
                pushed_waits += 1;
            }
        }
        self.used_flows.insert(flow);
        self.worms.push(TrapWorm { flow, head_hop });
        Some(WormUndo {
            claimed,
            pushed_waits,
        })
    }

    fn pop_worm(&mut self, undo: WormUndo) {
        let worm = self.worms.pop().expect("push/pop pairing");
        self.used_flows.remove(&worm.flow);
        for _ in 0..undo.pushed_waits {
            self.uncovered.pop();
        }
        for channel in undo.claimed {
            self.footprint.remove(&channel);
        }
    }
}

/// Seeds the backtracking search from every anchor worm of one cyclic CDG
/// component: a `(flow, h)` whose hop pair `(route[h], route[h+1])` lies in
/// the component.  Every minimal trap contains such an anchor.
fn search_component(
    routes: &RouteSet,
    vcs: &VcMap,
    occurrences: &HashMap<Channel, Vec<(FlowId, usize)>>,
    in_scc: &HashSet<Channel>,
    budget: usize,
    steps: &mut usize,
) -> SearchOutcome {
    for (flow, route) in routes.iter() {
        let channels = route.channels();
        if channels.len() < 2 {
            continue;
        }
        for head_hop in 0..channels.len() - 1 {
            if !in_scc.contains(&channels[head_hop]) || !in_scc.contains(&channels[head_hop + 1]) {
                continue;
            }
            *steps += 1;
            if *steps > budget {
                return SearchOutcome::Exhausted;
            }
            let mut state = SearchState::new();
            let undo = state
                .push_worm(routes, vcs, flow, head_hop)
                .expect("first worm cannot conflict");
            match cover_next(&mut state, routes, vcs, occurrences, in_scc, budget, steps) {
                SearchOutcome::NotFound => state.pop_worm(undo),
                found_or_exhausted => return found_or_exhausted,
            }
        }
    }
    SearchOutcome::NotFound
}

/// Pops the next uncovered wait channel and branches over every worm that
/// could cover it without overlapping the configuration built so far.  An
/// empty stack means every worm is fully covered: a trap.
fn cover_next(
    state: &mut SearchState,
    routes: &RouteSet,
    vcs: &VcMap,
    occurrences: &HashMap<Channel, Vec<(FlowId, usize)>>,
    in_scc: &HashSet<Channel>,
    budget: usize,
    steps: &mut usize,
) -> SearchOutcome {
    let Some(channel) = state.uncovered.pop() else {
        return SearchOutcome::Found(state.worms.clone());
    };
    let outcome = cover_channel(
        state,
        channel,
        routes,
        vcs,
        occurrences,
        in_scc,
        budget,
        steps,
    );
    state.uncovered.push(channel);
    outcome
}

#[allow(clippy::too_many_arguments)]
fn cover_channel(
    state: &mut SearchState,
    channel: Channel,
    routes: &RouteSet,
    vcs: &VcMap,
    occurrences: &HashMap<Channel, Vec<(FlowId, usize)>>,
    in_scc: &HashSet<Channel>,
    budget: usize,
    steps: &mut usize,
) -> SearchOutcome {
    if state.footprint.contains(&channel) {
        // A worm added after this entry was pushed already covers it.
        return cover_next(state, routes, vcs, occurrences, in_scc, budget, steps);
    }
    let Some(positions) = occurrences.get(&channel) else {
        return SearchOutcome::NotFound;
    };
    for &(flow, position) in positions {
        if state.used_flows.contains(&flow) {
            continue;
        }
        let channels = routes
            .route(flow)
            .expect("occurrence has a route")
            .channels();
        if channels.len() < 2 {
            continue;
        }
        // Grow the head hop from the covering position while the wait
        // segment stays inside the component (the minimal-trap invariant).
        for head_hop in position..channels.len() - 1 {
            if !in_scc.contains(&channels[head_hop + 1]) {
                break;
            }
            *steps += 1;
            if *steps > budget {
                return SearchOutcome::Exhausted;
            }
            let Some(undo) = state.push_worm(routes, vcs, flow, head_hop) else {
                continue;
            };
            match cover_next(state, routes, vcs, occurrences, in_scc, budget, steps) {
                SearchOutcome::NotFound => state.pop_worm(undo),
                found_or_exhausted => return found_or_exhausted,
            }
        }
    }
    SearchOutcome::NotFound
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::Route;
    use noc_topology::LinkId;

    /// Figure 1 of the paper: four flows on a 4-switch unidirectional ring.
    fn figure_1_design() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let sw: Vec<_> = (0..4).map(|i| topo.add_switch(format!("s{i}"))).collect();
        let links: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        let mut routes = RouteSet::new(4);
        let spec: [&[usize]; 4] = [&[0, 1, 2], &[2, 3], &[3, 0], &[0, 1]];
        for (i, link_indices) in spec.iter().enumerate() {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links(link_indices.iter().map(|&l| links[l])),
            );
        }
        (topo, routes)
    }

    #[test]
    fn figure_1_is_certified_deadlockable_with_a_valid_witness() {
        let (topo, routes) = figure_1_design();
        let report = certify_deadlock_free(&topo, &routes);
        assert!(report.cyclic_cdg);
        assert!(report.search_steps > 0);
        let witness = report.witness().expect("figure 1 traps");
        witness.verify(&topo, &routes).expect("witness is valid");
        assert!(witness.worms.len() >= 2);
        let flows: HashSet<_> = witness.worms.iter().map(|w| w.flow).collect();
        assert_eq!(flows.len(), witness.worms.len());
    }

    #[test]
    fn acyclic_design_uses_the_fast_path() {
        let mut topo = Topology::new();
        let sw: Vec<_> = (0..3).map(|i| topo.add_switch(format!("s{i}"))).collect();
        let l0 = topo.add_link(sw[0], sw[1], 1.0);
        let l1 = topo.add_link(sw[1], sw[2], 1.0);
        let mut routes = RouteSet::new(2);
        routes.set_route(FlowId::from_index(0), Route::from_links([l0, l1]));
        routes.set_route(FlowId::from_index(1), Route::from_links([l1]));
        let report = certify_deadlock_free(&topo, &routes);
        assert!(report.is_certified_free());
        assert!(!report.cyclic_cdg);
        assert_eq!(report.search_steps, 0);
    }

    #[test]
    fn cyclic_but_untrappable_design_is_certified_free() {
        // Two flows that both start on the same channel c0, then disagree on
        // the order of c1 and c2.  The CDG has the cycle c1 -> c2 -> c1, but
        // any two worms would both need c0, so no disjoint-footprint trap
        // exists: whichever flow claims c0 first streams and delivers.
        let mut topo = Topology::new();
        let a = topo.add_switch("a");
        let b = topo.add_switch("b");
        let c0 = topo.add_link(a, b, 1.0);
        let c1 = topo.add_link(b, a, 1.0);
        let c2 = topo.add_link(b, a, 1.0);
        let mut routes = RouteSet::new(2);
        routes.set_route(FlowId::from_index(0), Route::from_links([c0, c1, c2]));
        routes.set_route(FlowId::from_index(1), Route::from_links([c0, c2, c1]));
        let report = certify_deadlock_free(&topo, &routes);
        assert!(report.cyclic_cdg, "the CDG is cyclic");
        assert!(report.is_certified_free(), "yet nothing can trap");
        assert!(report.search_steps > 0);
    }

    #[test]
    fn self_waiting_route_is_certified_deadlockable() {
        // A route revisiting its own first channel: the worm fills c0 and
        // c1, then waits on c0 — which it owns itself and which can never
        // drain because the whole worm is stalled.
        let mut topo = Topology::new();
        let a = topo.add_switch("a");
        let b = topo.add_switch("b");
        let c0 = topo.add_link(a, b, 1.0);
        let c1 = topo.add_link(b, a, 1.0);
        let mut routes = RouteSet::new(1);
        routes.set_route(FlowId::from_index(0), Route::from_links([c0, c1, c0]));
        let report = certify_deadlock_free(&topo, &routes);
        let witness = report.witness().expect("self-trap");
        assert_eq!(witness.worms.len(), 1);
        witness.verify(&topo, &routes).expect("single-worm knot");
    }

    #[test]
    fn zero_budget_reports_unknown() {
        let (topo, routes) = figure_1_design();
        let config = CertifyConfig { search_budget: 0 };
        let report = certify_with(&topo, &routes, &config);
        assert!(matches!(
            report.verdict,
            CertifyVerdict::Unknown(UnknownReason::BudgetExhausted { .. })
        ));
        assert!(report.cyclic_cdg);
    }

    #[test]
    fn certification_is_deterministic() {
        let (topo, routes) = figure_1_design();
        let first = certify_deadlock_free(&topo, &routes);
        let second = certify_deadlock_free(&topo, &routes);
        assert_eq!(first, second);
    }

    #[test]
    fn witness_verification_rejects_tampering() {
        let (topo, routes) = figure_1_design();
        let escapable = TrapWitness {
            worms: vec![TrapWorm {
                flow: FlowId::from_index(0),
                head_hop: 1,
            }],
        };
        assert!(matches!(
            escapable.verify(&topo, &routes),
            Err(WitnessError::EscapableWorm { .. })
        ));

        let duplicated = TrapWitness {
            worms: vec![
                TrapWorm {
                    flow: FlowId::from_index(0),
                    head_hop: 1,
                },
                TrapWorm {
                    flow: FlowId::from_index(0),
                    head_hop: 0,
                },
            ],
        };
        assert!(matches!(
            duplicated.verify(&topo, &routes),
            Err(WitnessError::DuplicateFlow(_))
        ));

        let out_of_range = TrapWitness {
            worms: vec![TrapWorm {
                flow: FlowId::from_index(1),
                head_hop: 1,
            }],
        };
        assert!(matches!(
            out_of_range.verify(&topo, &routes),
            Err(WitnessError::HeadHopOutOfRange { .. })
        ));

        assert_eq!(
            TrapWitness { worms: vec![] }.verify(&topo, &routes),
            Err(WitnessError::Empty)
        );
    }

    #[test]
    fn overlapping_footprints_are_rejected() {
        let (topo, routes) = figure_1_design();
        // Flows 0 and 3 share channels L0 and L1.
        let overlapping = TrapWitness {
            worms: vec![
                TrapWorm {
                    flow: FlowId::from_index(0),
                    head_hop: 1,
                },
                TrapWorm {
                    flow: FlowId::from_index(3),
                    head_hop: 0,
                },
            ],
        };
        assert!(matches!(
            overlapping.verify(&topo, &routes),
            Err(WitnessError::OverlappingFootprints(_))
        ));
    }

    #[test]
    fn verdict_names_are_stable() {
        assert_eq!(CertifyVerdict::CertifiedFree.name(), "certified-free");
        let (topo, routes) = figure_1_design();
        let report = certify_deadlock_free(&topo, &routes);
        assert_eq!(report.verdict.name(), "certified-deadlockable");
        assert!(report.verdict.to_string().contains("worm"));
    }
}
