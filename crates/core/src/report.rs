//! Summary of what a deadlock-removal run did, and the taxonomy of
//! deadlock-handling strategies ([`StrategyKind`]) the comparison harness
//! sweeps over.

use crate::cost::Direction;
use std::fmt;

/// The deadlock-handling schemes this suite implements, one per
/// `DeadlockStrategy` implementation of the pipeline crate.
///
/// The four kinds span the design space the strategy-comparison sweeps
/// explore: *removal* (the paper's cycle breaking), *prevention by
/// construction* (resource ordering), *avoidance* (escape channels) and
/// *recovery* (drain-and-reconfigure).  Custom strategies should pick the
/// kind whose cost model matches theirs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// The paper's Algorithm 1: break CDG cycles with minimal extra VCs.
    CycleBreaking,
    /// Dally & Towles ascending channel classes along every route.
    ResourceOrdering,
    /// Escape-VC layers restricted to the up*/down* subgraph
    /// ([`crate::escape`]): the CDG is acyclic by construction, zero cycles
    /// are ever broken.
    EscapeChannel,
    /// DBR-style recovery ([`crate::recovery`]): detect cyclic SCCs, drain
    /// their flows onto up*/down* routes; costs reconfiguration events and
    /// hop inflation instead of VCs.
    RecoveryReconfig,
}

impl StrategyKind {
    /// All four kinds, in the canonical comparison order of the
    /// `fig_strategy_matrix` sweep.
    pub const ALL: [StrategyKind; 4] = [
        StrategyKind::CycleBreaking,
        StrategyKind::ResourceOrdering,
        StrategyKind::EscapeChannel,
        StrategyKind::RecoveryReconfig,
    ];

    /// Stable kebab-case name used in sweep output and JSON artifacts.
    pub const fn name(self) -> &'static str {
        match self {
            StrategyKind::CycleBreaking => "cycle-breaking",
            StrategyKind::ResourceOrdering => "resource-ordering",
            StrategyKind::EscapeChannel => "escape-channel",
            StrategyKind::RecoveryReconfig => "recovery-reconfig",
        }
    }

    /// `true` for the one scheme that attacks individual CDG cycles (cycle
    /// breaking); the other kinds restructure wholesale and always report
    /// zero cycles broken.
    pub fn breaks_cycles(self) -> bool {
        matches!(self, StrategyKind::CycleBreaking)
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One cycle-breaking step of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakStep {
    /// Length (in channels) of the cycle that was broken.
    pub cycle_len: usize,
    /// Direction chosen by the cost comparison.
    pub direction: Direction,
    /// Number of VCs added by this step (the cost of the chosen plan).
    pub vcs_added: usize,
    /// Number of flows that were re-routed onto the new VCs.
    pub flows_rerouted: usize,
}

/// The CDG delta one incremental update (one cycle break) applied — the
/// per-iteration stats of the incremental maintenance engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CdgDeltaStats {
    /// Dependency edges removed because their last flow was re-routed away.
    pub deps_removed: usize,
    /// Dependency edges created by the re-routed flows (new channel pairs).
    pub deps_added: usize,
    /// Channel vertices created (the VCs this break added).
    pub channels_added: usize,
    /// Vertices incident to changed edges — the dirty region the next
    /// smallest-cycle query was seeded from.
    pub dirty_nodes: usize,
}

/// How the CDG was maintained across the removal loop.
///
/// In incremental mode the CDG is built once and patched per iteration
/// ([`step_deltas`](Self::step_deltas) has one entry per break); in
/// full-rebuild mode it is rebuilt from scratch every iteration and
/// `step_deltas` stays empty.  These stats are diagnostics: two runs that
/// agree on every outcome field may legitimately differ here, which is why
/// [`RemovalReport::same_outcome`] ignores them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CdgMaintenanceStats {
    /// Number of from-scratch `Cdg::build` calls (1 in incremental mode,
    /// iterations + 1 in full-rebuild mode).
    pub full_builds: usize,
    /// Per-break deltas, in break order; empty in full-rebuild mode.
    pub step_deltas: Vec<CdgDeltaStats>,
}

impl CdgMaintenanceStats {
    /// Total dependency edges removed across all incremental updates.
    pub fn deps_removed(&self) -> usize {
        self.step_deltas.iter().map(|d| d.deps_removed).sum()
    }

    /// Total dependency edges added across all incremental updates.
    pub fn deps_added(&self) -> usize {
        self.step_deltas.iter().map(|d| d.deps_added).sum()
    }

    /// Total channel vertices created across all incremental updates.
    pub fn channels_added(&self) -> usize {
        self.step_deltas.iter().map(|d| d.channels_added).sum()
    }

    /// `true` when the run maintained the CDG incrementally.
    pub fn incremental(&self) -> bool {
        !self.step_deltas.is_empty()
    }
}

/// Aggregate report returned by [`remove_deadlocks`](crate::removal::remove_deadlocks).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemovalReport {
    /// Total number of virtual channels added to the topology.
    pub added_vcs: usize,
    /// Number of cycles broken (iterations of the main loop).
    pub cycles_broken: usize,
    /// Per-step details, in the order the cycles were broken.
    pub steps: Vec<BreakStep>,
    /// `true` when the input CDG was already acyclic and nothing was done —
    /// the common case the paper highlights for D26_media.
    pub already_deadlock_free: bool,
    /// CDG maintenance diagnostics (builds, per-iteration deltas).
    pub cdg: CdgMaintenanceStats,
}

impl RemovalReport {
    /// `true` when `other` describes the same algorithmic outcome: same VCs,
    /// same breaks (length, direction, cost, re-routes, in the same order)
    /// and the same deadlock-freedom verdict.  CDG maintenance diagnostics
    /// are ignored, so an incremental run and a full-rebuild reference run
    /// can be compared directly — the equivalence the incremental engine is
    /// tested against.
    pub fn same_outcome(&self, other: &RemovalReport) -> bool {
        self.added_vcs == other.added_vcs
            && self.cycles_broken == other.cycles_broken
            && self.already_deadlock_free == other.already_deadlock_free
            && self.steps == other.steps
    }
    /// Number of steps broken in the forward direction.
    pub fn forward_breaks(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.direction == Direction::Forward)
            .count()
    }

    /// Number of steps broken in the backward direction.
    pub fn backward_breaks(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.direction == Direction::Backward)
            .count()
    }
}

/// One live-reconfiguration event: the response to a batch of runtime
/// faults arriving at the same cycle (the dynamic counterpart of a
/// [`BreakStep`]).
///
/// The epoch protocol behind these numbers lives in the simulator: affected
/// flows are re-routed onto surviving up*/down* paths and the *transient*
/// combined dependency graph — committed routes of every flow plus the
/// residual old-route segments of in-flight worms — is checked acyclic
/// before the epoch commits.  A cyclic check triggers a scoped DBR-style
/// drain ([`fallback_drain`](Self::fallback_drain)) instead of a commit on
/// a cyclic graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReconfigEvent {
    /// Cycle the fault batch arrived at.
    pub cycle: u64,
    /// Fault/repair events applied in this batch.
    pub faults_applied: usize,
    /// Flows moved onto a new (surviving up*/down*) route.
    pub flows_rerouted: usize,
    /// Flows stranded by a partition at this event (no surviving route).
    pub flows_unreachable: usize,
    /// Worms pulled back to their source by this event (broken-path
    /// pull-backs plus any fallback drain).
    pub packets_drained: usize,
    /// `true` when the transient-graph check failed and a scoped drain ran
    /// before the epoch could commit acyclically.
    pub fallback_drain: bool,
    /// `true` if the epoch committed while the transient combined
    /// dependency graph was still cyclic.  The protocol's core guarantee is
    /// that this **never** happens; the field is re-checked after every
    /// commit so the property suite asserts on evidence, not intent.
    pub committed_cyclic: bool,
}

/// Aggregate statistics of live reconfiguration under runtime faults, in
/// the style of [`RemovalReport`]: per-event details plus the counters the
/// artifacts and CI invariants consume.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReconfigStats {
    /// Per-event details, in fault order.
    pub events: Vec<ReconfigEvent>,
    /// Epochs committed (one per fault batch that found traffic to move or
    /// faults to absorb).
    pub epochs_committed: usize,
    /// Epochs that needed the scoped-drain fallback before committing.
    pub drain_fallbacks: usize,
    /// Epochs that committed on a cyclic transient graph (must stay 0).
    pub cyclic_commits: usize,
    /// Total worms pulled back across all events.
    pub packets_drained: usize,
    /// Total flow re-routes across all events (a flow re-routed by two
    /// events counts twice).
    pub flows_rerouted: usize,
    /// Flows currently stranded by a partition (repairs can shrink this).
    pub unreachable_flows: usize,
}

impl ReconfigStats {
    /// Number of reconfiguration events (fault batches) processed.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Folds one event into the aggregate counters (the event is also
    /// recorded in [`events`](Self::events)).
    pub fn record(&mut self, event: ReconfigEvent) {
        self.epochs_committed += 1;
        self.drain_fallbacks += event.fallback_drain as usize;
        self.cyclic_commits += event.committed_cyclic as usize;
        self.packets_drained += event.packets_drained;
        self.flows_rerouted += event.flows_rerouted;
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_counters() {
        let report = RemovalReport {
            added_vcs: 3,
            cycles_broken: 2,
            steps: vec![
                BreakStep {
                    cycle_len: 4,
                    direction: Direction::Forward,
                    vcs_added: 1,
                    flows_rerouted: 2,
                },
                BreakStep {
                    cycle_len: 3,
                    direction: Direction::Backward,
                    vcs_added: 2,
                    flows_rerouted: 1,
                },
            ],
            already_deadlock_free: false,
            cdg: CdgMaintenanceStats::default(),
        };
        assert_eq!(report.forward_breaks(), 1);
        assert_eq!(report.backward_breaks(), 1);
    }

    #[test]
    fn strategy_kind_names_are_stable() {
        assert_eq!(StrategyKind::ALL.len(), 4);
        let names: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "cycle-breaking",
                "resource-ordering",
                "escape-channel",
                "recovery-reconfig"
            ]
        );
        assert_eq!(StrategyKind::EscapeChannel.to_string(), "escape-channel");
        assert!(StrategyKind::CycleBreaking.breaks_cycles());
        assert!(!StrategyKind::RecoveryReconfig.breaks_cycles());
    }

    #[test]
    fn default_report_is_empty() {
        let report = RemovalReport::default();
        assert_eq!(report.added_vcs, 0);
        assert_eq!(report.cycles_broken, 0);
        assert!(!report.already_deadlock_free);
        assert!(report.steps.is_empty());
        assert_eq!(report.cdg.full_builds, 0);
        assert!(!report.cdg.incremental());
    }

    #[test]
    fn same_outcome_ignores_cdg_maintenance_stats() {
        let mut a = RemovalReport {
            added_vcs: 1,
            cycles_broken: 1,
            steps: vec![BreakStep {
                cycle_len: 4,
                direction: Direction::Forward,
                vcs_added: 1,
                flows_rerouted: 2,
            }],
            already_deadlock_free: false,
            cdg: CdgMaintenanceStats {
                full_builds: 1,
                step_deltas: vec![CdgDeltaStats {
                    deps_removed: 2,
                    deps_added: 3,
                    channels_added: 1,
                    dirty_nodes: 5,
                }],
            },
        };
        let mut b = a.clone();
        b.cdg = CdgMaintenanceStats {
            full_builds: 2,
            step_deltas: Vec::new(),
        };
        assert!(a.same_outcome(&b));
        assert_ne!(a, b, "derived equality still sees the diagnostics");
        assert_eq!(a.cdg.deps_removed(), 2);
        assert_eq!(a.cdg.deps_added(), 3);
        assert_eq!(a.cdg.channels_added(), 1);
        assert!(a.cdg.incremental());
        a.added_vcs = 9;
        assert!(!a.same_outcome(&b));
    }

    #[test]
    fn reconfig_stats_fold_events() {
        let mut stats = ReconfigStats::default();
        stats.record(ReconfigEvent {
            cycle: 100,
            faults_applied: 1,
            flows_rerouted: 3,
            flows_unreachable: 0,
            packets_drained: 2,
            fallback_drain: false,
            committed_cyclic: false,
        });
        stats.record(ReconfigEvent {
            cycle: 400,
            faults_applied: 2,
            flows_rerouted: 1,
            flows_unreachable: 1,
            packets_drained: 4,
            fallback_drain: true,
            committed_cyclic: false,
        });
        stats.unreachable_flows = 1;
        assert_eq!(stats.event_count(), 2);
        assert_eq!(stats.epochs_committed, 2);
        assert_eq!(stats.drain_fallbacks, 1);
        assert_eq!(stats.cyclic_commits, 0);
        assert_eq!(stats.packets_drained, 6);
        assert_eq!(stats.flows_rerouted, 4);
    }
}
