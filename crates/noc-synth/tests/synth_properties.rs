//! Property-style tests for the topology synthesizer on random
//! communication graphs.
//!
//! The crates.io `proptest` crate is unavailable in the offline build
//! environment, so the properties are checked over a seeded stream of
//! random communication graphs from `noc-rng` — same properties,
//! deterministic cases.

use noc_rng::SmallRng;
use noc_routing::validate::validate_routes;
use noc_synth::cluster::cluster_cores;
use noc_synth::{synthesize, SynthesisConfig};
use noc_topology::validate::validate_design;
use noc_topology::CommGraph;

/// Builds a communication graph with `cores` cores and the given flow list.
fn build_comm(cores: usize, flows: &[(usize, usize, u32)]) -> CommGraph {
    let mut comm = CommGraph::new();
    let ids: Vec<_> = (0..cores).map(|i| comm.add_core(format!("c{i}"))).collect();
    for &(a, b, bw) in flows {
        let (a, b) = (a % cores, b % cores);
        if a != b {
            comm.add_flow(ids[a], ids[b], 1.0 + bw as f64);
        }
    }
    comm
}

/// Draws `(cores, switches <= cores, flows)` like the proptest strategies.
fn draw_case(
    rng: &mut SmallRng,
    min_cores: usize,
    max_cores: usize,
    max_switches: usize,
    max_flows: usize,
) -> (usize, usize, Vec<(usize, usize, u32)>) {
    loop {
        let cores = rng.gen_range(min_cores..max_cores);
        let switches = rng.gen_range(1usize..max_switches);
        if switches > cores {
            continue; // mirrors prop_assume!(switches <= cores)
        }
        let flows: Vec<(usize, usize, u32)> = (0..rng.gen_range(1usize..max_flows))
            .map(|_| {
                (
                    rng.gen_range(0usize..max_cores),
                    rng.gen_range(0usize..max_cores),
                    rng.gen_range(1u64..=499) as u32,
                )
            })
            .collect();
        return (cores, switches, flows);
    }
}

/// Synthesis always yields a consistent design: complete core mapping,
/// connected routes, valid route structure — for any random traffic and
/// any feasible switch count.
#[test]
fn synthesis_is_always_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_1001);
    for case in 0..48 {
        let (cores, switches, flows) = draw_case(&mut rng, 4, 24, 12, 60);
        let comm = build_comm(cores, &flows);
        let design = synthesize(&comm, &SynthesisConfig::with_switches(switches))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(design.topology.switch_count(), switches, "case {case}");
        validate_design(&design.topology, &comm, &design.core_map)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        validate_routes(&design.topology, &comm, &design.core_map, &design.routes)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        // Every link opened by the synthesizer starts with a single VC.
        assert_eq!(design.topology.extra_vc_count(), 0, "case {case}");
    }
}

/// Clustering is a balanced partition: every core assigned, cluster sizes
/// within one of each other (ceil capacity), determinism.
#[test]
fn clustering_is_a_balanced_partition() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_1002);
    for case in 0..48 {
        let (cores, switches, flows) = draw_case(&mut rng, 2, 30, 15, 40);
        let comm = build_comm(cores, &flows);
        let clustering = cluster_cores(&comm, switches);
        assert_eq!(clustering.assignment.len(), cores, "case {case}");
        assert!(
            clustering.assignment.iter().all(|&c| c < switches),
            "case {case}"
        );
        let capacity = cores.div_ceil(switches);
        for cluster in 0..switches {
            assert!(clustering.members(cluster).len() <= capacity, "case {case}");
        }
        assert_eq!(clustering, cluster_cores(&comm, switches), "case {case}");
    }
}

/// The ring backbone variant is also always routable.
#[test]
fn ring_backbone_synthesis_is_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_1003);
    for case in 0..48 {
        // Redraw until the ring backbone is feasible (>= 2 switches), so
        // all 48 cases test something (the original strategy drew 2..10).
        let (cores, switches, flows) = loop {
            let drawn = draw_case(&mut rng, 4, 20, 10, 40);
            if drawn.1 >= 2 {
                break drawn;
            }
        };
        let comm = build_comm(cores, &flows);
        let design = synthesize(&comm, &SynthesisConfig::with_switches_ring(switches))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        validate_routes(&design.topology, &comm, &design.core_map, &design.routes)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
    }
}
