//! Up*/down* routing.
//!
//! A classic deadlock-free routing scheme for arbitrary topologies: a
//! spanning tree is built from a root switch, every link is labelled *up*
//! (towards the root) or *down* (away from it), and a legal route never
//! traverses an *up* link after a *down* link.  Because the up→down order is
//! a partial order on channels, the resulting CDG is acyclic.
//!
//! The suite uses it both as an alternative input-routing function (the
//! paper's method accepts any routing function) and as a sanity check that
//! the deadlock-removal algorithm adds zero VCs to already-safe routings.

use crate::route::{Route, RouteSet};
use crate::validate::RouteError;
use noc_topology::{CommGraph, CoreMap, FaultSet, LinkId, SwitchId, Topology};
use std::collections::VecDeque;

/// The up/down labelling of a topology's links relative to a BFS spanning
/// tree rooted at [`UpDownLabels::root`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpDownLabels {
    root: SwitchId,
    /// BFS level of every switch (root = 0).
    level: Vec<Option<usize>>,
}

/// Direction of a link under the up*/down* labelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDirection {
    /// Towards the root (to a strictly smaller level, or same level with a
    /// smaller switch index).
    Up,
    /// Away from the root.
    Down,
}

impl UpDownLabels {
    /// Builds the labelling with a BFS spanning tree rooted at `root`.
    ///
    /// Switches unreachable from the root (ignoring direction) get no level;
    /// routes touching them are rejected later.
    pub fn new(topology: &Topology, root: SwitchId) -> Self {
        Self::build(topology, root, None)
    }

    /// Builds the labelling over the fabric that survives `faults`: the BFS
    /// spans only [usable](FaultSet::link_usable) links, so failed regions
    /// get no level and routes into them are rejected.  The root must be an
    /// up switch for the labelling to cover anything.
    pub fn surviving(topology: &Topology, root: SwitchId, faults: &FaultSet) -> Self {
        Self::build(topology, root, Some(faults))
    }

    fn build(topology: &Topology, root: SwitchId, faults: Option<&FaultSet>) -> Self {
        let usable = |link: LinkId| faults.is_none_or(|f| f.link_usable(topology, link));
        let mut level = vec![None; topology.switch_count()];
        let root_up = faults.is_none_or(|f| f.switch_up(root));
        if root.index() < topology.switch_count() && root_up {
            level[root.index()] = Some(0);
            let mut queue = VecDeque::from([root]);
            while let Some(sw) = queue.pop_front() {
                let here = level[sw.index()].expect("queued switches have levels");
                let neighbors: Vec<SwitchId> = topology
                    .links_from(sw)
                    .filter(|&(id, _)| usable(id))
                    .map(|(_, l)| l.target)
                    .chain(
                        topology
                            .links_to(sw)
                            .filter(|&(id, _)| usable(id))
                            .map(|(_, l)| l.source),
                    )
                    .collect();
                for n in neighbors {
                    if level[n.index()].is_none() {
                        level[n.index()] = Some(here + 1);
                        queue.push_back(n);
                    }
                }
            }
        }
        UpDownLabels { root, level }
    }

    /// The root switch of the spanning tree.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// BFS level of a switch (0 for the root), or `None` if unreachable.
    pub fn level(&self, switch: SwitchId) -> Option<usize> {
        self.level.get(switch.index()).copied().flatten()
    }

    /// Direction of the link `source -> target`, or `None` if either switch
    /// is unreachable from the root.
    pub fn direction(&self, topology: &Topology, link: LinkId) -> Option<LinkDirection> {
        let l = topology.link(link)?;
        let ls = self.level(l.source)?;
        let lt = self.level(l.target)?;
        Some(
            if lt < ls || (lt == ls && l.target.index() < l.source.index()) {
                LinkDirection::Up
            } else {
                LinkDirection::Down
            },
        )
    }
}

/// Routes every flow with up*/down* routing relative to a BFS tree rooted at
/// `root`.
///
/// The route search is a BFS over `(switch, phase)` states where the phase
/// records whether a *down* link has already been taken; this finds a
/// shortest route among the legal up*/down* routes.
///
/// # Errors
///
/// * [`RouteError::Topology`] if a core is unmapped.
/// * [`RouteError::Unroutable`] if no legal up*/down* route exists (e.g. the
///   topology is not physically connected, or is directed in a way that
///   breaks tree reachability).
pub fn route_all_updown(
    topology: &Topology,
    comm: &CommGraph,
    map: &CoreMap,
    root: SwitchId,
) -> Result<RouteSet, RouteError> {
    let labels = UpDownLabels::new(topology, root);
    let mut routes = RouteSet::new(comm.flow_count());
    for (flow_id, flow) in comm.flows() {
        let src = map.require(flow.source)?;
        let dst = map.require(flow.destination)?;
        if src == dst {
            routes.set_route(flow_id, Route::empty());
            continue;
        }
        let links = updown_route(topology, &labels, src, dst).ok_or(RouteError::Unroutable {
            flow: flow_id,
            from: src,
            to: dst,
        })?;
        routes.set_route(flow_id, Route::from_links(links));
    }
    Ok(routes)
}

/// A shortest legal up*/down* route from `src` to `dst` under `labels`, as a
/// link list, or `None` when no legal route exists.
///
/// This is the per-pair primitive behind [`route_all_updown`], exposed for
/// callers that re-route individual flows onto the up*/down* subgraph (e.g.
/// recovery-based deadlock reconfiguration, which drains the flows of a
/// cyclic dependency region and moves only those onto up*/down* paths).
/// `src == dst` yields an empty route.
///
/// The search is a BFS over `(switch, has_gone_down)` states respecting the
/// up*/down* rule, so the result is deterministic for a given topology.
pub fn updown_route(
    topology: &Topology,
    labels: &UpDownLabels,
    src: SwitchId,
    dst: SwitchId,
) -> Option<Vec<LinkId>> {
    updown_route_filtered(topology, labels, src, dst, None)
}

/// [`updown_route`] over the fabric surviving `faults`: only
/// [usable](FaultSet::link_usable) links are traversed.  Pair it with
/// [`UpDownLabels::surviving`] built on the same fault set — labels from the
/// intact fabric may label a route legal that detours through a failed
/// region.  `None` means the destination is unreachable on the surviving
/// up*/down* subgraph — the signal the simulator turns into a typed
/// `Unreachable` outcome.
pub fn updown_route_avoiding(
    topology: &Topology,
    labels: &UpDownLabels,
    src: SwitchId,
    dst: SwitchId,
    faults: &FaultSet,
) -> Option<Vec<LinkId>> {
    updown_route_filtered(topology, labels, src, dst, Some(faults))
}

fn updown_route_filtered(
    topology: &Topology,
    labels: &UpDownLabels,
    src: SwitchId,
    dst: SwitchId,
    faults: Option<&FaultSet>,
) -> Option<Vec<LinkId>> {
    let n = topology.switch_count();
    // visited[switch][phase]; phase 0 = still allowed to go up, 1 = down only.
    let mut visited = vec![[false; 2]; n];
    let mut parent: Vec<[Option<(SwitchId, usize, LinkId)>; 2]> = vec![[None; 2]; n];
    let mut queue = VecDeque::new();
    visited[src.index()][0] = true;
    queue.push_back((src, 0usize));
    while let Some((sw, phase)) = queue.pop_front() {
        if sw == dst {
            // Reconstruct.
            let mut links = Vec::new();
            let (mut cur, mut ph) = (sw, phase);
            while let Some((prev, prev_phase, link)) = parent[cur.index()][ph] {
                links.push(link);
                cur = prev;
                ph = prev_phase;
            }
            links.reverse();
            return Some(links);
        }
        for (link_id, link) in topology.links_from(sw) {
            if !faults.is_none_or(|f| f.link_usable(topology, link_id)) {
                continue;
            }
            let Some(dir) = labels.direction(topology, link_id) else {
                continue;
            };
            let next_phase = match (phase, dir) {
                (0, LinkDirection::Up) => 0,
                (_, LinkDirection::Down) => 1,
                (1, LinkDirection::Up) => continue, // illegal down→up turn
                _ => unreachable!(),
            };
            let next = link.target;
            if !visited[next.index()][next_phase] {
                visited[next.index()][next_phase] = true;
                parent[next.index()][next_phase] = Some((sw, phase, link_id));
                queue.push_back((next, next_phase));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_routes;
    use noc_topology::{generators, CommGraph, CoreMap, FlowId};

    fn all_to_all_design(
        generated: noc_topology::generators::Generated,
    ) -> (Topology, CommGraph, CoreMap) {
        let n = generated.switches.len();
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    comm.add_flow(cores[i], cores[j], 5.0);
                }
            }
        }
        let mut map = CoreMap::new(n);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        (generated.topology, comm, map)
    }

    #[test]
    fn updown_routes_a_mesh_completely_and_validly() {
        let (t, c, m) = all_to_all_design(generators::mesh2d(3, 3, 1.0));
        let routes = route_all_updown(&t, &c, &m, SwitchId::from_index(0)).unwrap();
        validate_routes(&t, &c, &m, &routes).unwrap();
        for (fid, _) in c.flows() {
            assert!(!routes.route(fid).unwrap().is_empty());
        }
    }

    #[test]
    fn no_route_ever_turns_from_down_to_up() {
        let (t, c, m) = all_to_all_design(generators::bidirectional_ring(6, 1.0));
        let root = SwitchId::from_index(0);
        let labels = UpDownLabels::new(&t, root);
        let routes = route_all_updown(&t, &c, &m, root).unwrap();
        for (_, route) in routes.iter() {
            let mut gone_down = false;
            for link in route.links() {
                match labels.direction(&t, link).unwrap() {
                    LinkDirection::Down => gone_down = true,
                    LinkDirection::Up => assert!(!gone_down, "illegal down→up turn"),
                }
            }
        }
    }

    #[test]
    fn levels_follow_bfs_distance() {
        let generated = generators::chain(4, 1.0);
        let labels = UpDownLabels::new(&generated.topology, generated.switches[0]);
        for (i, &sw) in generated.switches.iter().enumerate() {
            assert_eq!(labels.level(sw), Some(i));
        }
        assert_eq!(labels.root(), generated.switches[0]);
    }

    #[test]
    fn updown_route_finds_legal_paths_and_reports_dead_ends() {
        // Unidirectional 4-ring, tree rooted at SW0: the only physical path
        // SW1 -> SW3 (1→2→3) turns down→up, so no legal route exists, while
        // SW0 -> SW2 (0→1→2) is all-down and legal.
        let mut t = Topology::new();
        let sw: Vec<_> = (0..4).map(|i| t.add_switch(format!("s{i}"))).collect();
        for i in 0..4 {
            t.add_link(sw[i], sw[(i + 1) % 4], 1.0);
        }
        let labels = UpDownLabels::new(&t, sw[0]);
        let legal = updown_route(&t, &labels, sw[0], sw[2]).unwrap();
        assert_eq!(legal.len(), 2);
        assert!(updown_route(&t, &labels, sw[1], sw[3]).is_none());
        assert_eq!(updown_route(&t, &labels, sw[2], sw[2]), Some(Vec::new()));
    }

    #[test]
    fn disconnected_switch_is_unroutable() {
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        let f = comm.add_flow(a, b, 1.0);
        let mut map = CoreMap::new(2);
        map.assign(a, s0).unwrap();
        map.assign(b, s1).unwrap();
        let err = route_all_updown(&t, &comm, &map, s0).unwrap_err();
        assert!(matches!(err, RouteError::Unroutable { flow, .. } if flow == f));
    }

    #[test]
    fn updown_route_can_be_longer_than_shortest() {
        // On a ring, up*/down* cannot use the link crossing the "top" of the
        // tree in both directions, so some routes are non-minimal — but all
        // flows must still be routable.
        let (t, c, m) = all_to_all_design(generators::bidirectional_ring(8, 1.0));
        let routes = route_all_updown(&t, &c, &m, SwitchId::from_index(0)).unwrap();
        let shortest = crate::shortest::route_all_shortest(&t, &c, &m).unwrap();
        let mut some_longer = false;
        for (fid, _) in c.flows() {
            let ud = routes.route(fid).unwrap().hop_count();
            let sp = shortest.route(fid).unwrap().hop_count();
            assert!(ud >= sp);
            if ud > sp {
                some_longer = true;
            }
        }
        assert!(
            some_longer,
            "up*/down* on a ring should detour at least once"
        );
        let _ = FlowId::from_index(0);
    }

    #[test]
    fn surviving_labels_route_around_failed_links() {
        use noc_topology::FaultSet;
        // Bidirectional 6-ring with the 0-1 segment failed in both
        // directions: every pair is still reachable the long way around,
        // and no surviving route touches the failed links.
        let generated = generators::bidirectional_ring(6, 1.0);
        let t = generated.topology;
        let sw = generated.switches;
        let mut faults = FaultSet::new(&t);
        let fwd = t.find_link(sw[0], sw[1]).unwrap();
        let back = t.find_link(sw[1], sw[0]).unwrap();
        faults.fail_link(fwd);
        faults.fail_link(back);
        let labels = UpDownLabels::surviving(&t, sw[0], &faults);
        for i in 0..6 {
            for j in 0..6 {
                let route = updown_route_avoiding(&t, &labels, sw[i], sw[j], &faults)
                    .unwrap_or_else(|| panic!("{i} -> {j} must survive one dead segment"));
                assert!(!route.contains(&fwd) && !route.contains(&back));
            }
        }
        // The intact-fabric search would happily use the dead segment.
        let intact = UpDownLabels::new(&t, sw[0]);
        let through = updown_route(&t, &intact, sw[0], sw[1]).unwrap();
        assert_eq!(through, vec![fwd]);
    }

    #[test]
    fn surviving_labels_skip_failed_switches_and_partitions() {
        use noc_topology::FaultSet;
        // Chain 0-1-2-3 with switch 1 failed: 0 is cut off from {2, 3}.
        let generated = generators::chain(4, 1.0);
        let t = generated.topology;
        let sw = generated.switches;
        let mut faults = FaultSet::new(&t);
        faults.fail_switch(sw[1]);
        let labels = UpDownLabels::surviving(&t, sw[2], &faults);
        assert_eq!(labels.level(sw[1]), None, "failed switches get no level");
        assert_eq!(labels.level(sw[0]), None, "0 is unreachable past the hole");
        assert!(updown_route_avoiding(&t, &labels, sw[2], sw[0], &faults).is_none());
        assert!(updown_route_avoiding(&t, &labels, sw[2], sw[3], &faults).is_some());
        // A root that is itself failed labels nothing.
        let dead_root = UpDownLabels::surviving(&t, sw[1], &faults);
        assert_eq!(dead_root.level(sw[1]), None);
        assert_eq!(dead_root.level(sw[2]), None);
    }
}
