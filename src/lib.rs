//! Umbrella crate for the DATE 2010 deadlock-removal reproduction suite.
//!
//! Re-exports every member crate under a single dependency so the
//! repository-level examples and integration tests can exercise the whole
//! stack.  Downstream users normally depend on the individual crates
//! (`noc-deadlock`, `noc-sim`, ...) directly — or on [`flow`], the staged
//! pipeline API that drives the full benchmark → synthesis → routing →
//! deadlock-removal → power/simulation chain with pluggable
//! [`Router`](flow::Router) and [`DeadlockStrategy`](flow::DeadlockStrategy)
//! implementations.

#![forbid(unsafe_code)]

pub use noc_deadlock as deadlock;
pub use noc_flow as flow;
pub use noc_graph as graph;
pub use noc_jobs as jobs;
pub use noc_power as power;
pub use noc_routing as routing;
pub use noc_sim as sim;
pub use noc_synth as synth;
pub use noc_telemetry as telemetry;
pub use noc_topology as topology;
