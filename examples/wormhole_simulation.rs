//! Simulates a synthesized benchmark design before and after deadlock
//! removal and reports latency/throughput, showing that the repair costs
//! essentially nothing at runtime.
//!
//! Run with `cargo run --release --example wormhole_simulation`.

use noc_suite::flow::{CycleBreaking, DesignFlow, ShortestPathRouter};
use noc_suite::sim::{SimConfig, TrafficConfig};
use noc_suite::synth::SynthesisConfig;
use noc_suite::topology::benchmarks::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::D36x8;
    let routed = DesignFlow::from_benchmark(benchmark)
        .synthesize(SynthesisConfig::with_switches(12))?
        .route(&ShortestPathRouter::default())?;

    println!(
        "{benchmark}: {} cores, {} flows ({} active), 12-switch application-specific topology",
        routed.comm().core_count(),
        routed.comm().flow_count(),
        routed.active_flow_count()
    );
    match routed.deadlock_evidence() {
        None => println!("input routing is already deadlock-free"),
        Some(cycle) => println!("input routing can deadlock ({cycle})"),
    }

    let sim_config = SimConfig {
        buffer_depth: 2,
        deadlock_threshold: 1_000,
        max_cycles: 500_000,
    };
    let traffic = TrafficConfig {
        packets_per_flow: 4,
        packet_length: 5,
        mean_gap_cycles: 8,
        seed: 99,
        ..TrafficConfig::default()
    };

    let before = routed.simulate_with(&sim_config, &traffic);
    println!(
        "before removal: deadlocked = {}, delivered {}/{}, mean latency {:.1}",
        before.deadlocked,
        before.stats.delivered_packets,
        before.stats.injected_packets,
        before.stats.mean_latency()
    );

    let fixed = routed.resolve_deadlocks(&CycleBreaking::default())?;
    let after = fixed.simulate_with(&sim_config, &traffic)?.into_outcome();
    println!(
        "after removal ({} VCs added): deadlocked = {}, delivered {}/{}, mean latency {:.1}",
        fixed.resolution().added_vcs,
        after.deadlocked,
        after.stats.delivered_packets,
        after.stats.injected_packets,
        after.stats.mean_latency()
    );
    Ok(())
}
