//! Breadth-first and depth-first traversal over any [`GraphView`]
//! representation ([`DiGraph`](crate::DiGraph) or a frozen
//! [`CsrGraph`](crate::CsrGraph)).

use crate::csr::GraphView;
use crate::digraph::NodeId;
use std::collections::VecDeque;

/// Returns the nodes reachable from `start` (including `start`) in BFS order.
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, traversal};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, ());
/// let order = traversal::bfs_order(&g, a);
/// assert_eq!(order, vec![a, b]);
/// assert!(!order.contains(&c));
/// ```
pub fn bfs_order<G: GraphView>(graph: &G, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    if !graph.contains_node(start) {
        return order;
    }
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        order.push(node);
        for succ in graph.successors(node) {
            if !visited[succ.index()] {
                visited[succ.index()] = true;
                queue.push_back(succ);
            }
        }
    }
    order
}

/// Returns the nodes reachable from `start` in depth-first preorder.
pub fn dfs_preorder<G: GraphView>(graph: &G, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = Vec::new();
    if !graph.contains_node(start) {
        return order;
    }
    stack.push(start);
    while let Some(node) = stack.pop() {
        if visited[node.index()] {
            continue;
        }
        visited[node.index()] = true;
        order.push(node);
        // Push successors in reverse so the first successor is visited first.
        let succs: Vec<_> = graph.successors(node).collect();
        for succ in succs.into_iter().rev() {
            if !visited[succ.index()] {
                stack.push(succ);
            }
        }
    }
    order
}

/// Returns `true` if `target` is reachable from `source` following directed
/// edges (a node is always reachable from itself).
pub fn is_reachable<G: GraphView>(graph: &G, source: NodeId, target: NodeId) -> bool {
    if source == target {
        return graph.contains_node(source);
    }
    bfs_order(graph, source).contains(&target)
}

/// BFS shortest path (in hops) from `source` to `target`.
///
/// Returns the node sequence including both endpoints, or `None` if `target`
/// is unreachable.
pub fn bfs_path<G: GraphView>(graph: &G, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    if !graph.contains_node(source) || !graph.contains_node(target) {
        return None;
    }
    if source == target {
        return Some(vec![source]);
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut visited = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    while let Some(node) = queue.pop_front() {
        for succ in graph.successors(node) {
            if !visited[succ.index()] {
                visited[succ.index()] = true;
                parent[succ.index()] = Some(node);
                if succ == target {
                    let mut path = vec![target];
                    let mut cur = target;
                    while let Some(p) = parent[cur.index()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(succ);
            }
        }
    }
    None
}

/// Returns `true` if every node is reachable from every other node when edge
/// direction is ignored (weak connectivity).  An empty graph is connected.
pub fn is_weakly_connected<G: GraphView>(graph: &G) -> bool {
    let n = graph.node_count();
    if n <= 1 {
        return true;
    }
    let mut visited = vec![false; n];
    let start = NodeId::from_index(0);
    let mut queue = VecDeque::new();
    visited[0] = true;
    queue.push_back(start);
    let mut seen = 1usize;
    while let Some(node) = queue.pop_front() {
        let neighbors = graph
            .successors(node)
            .chain(graph.predecessors(node))
            .collect::<Vec<_>>();
        for next in neighbors {
            if !visited[next.index()] {
                visited[next.index()] = true;
                seen += 1;
                queue.push_back(next);
            }
        }
    }
    seen == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    fn chain(n: usize) -> (DiGraph<usize, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let nodes: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        (g, nodes)
    }

    #[test]
    fn bfs_visits_in_level_order() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let order = bfs_order(&g, a);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], a);
        assert_eq!(order[3], d);
    }

    #[test]
    fn dfs_preorder_follows_first_branch() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, d, ());
        g.add_edge(a, c, ());
        let order = dfs_preorder(&g, a);
        assert_eq!(order, vec![a, b, d, c]);
    }

    #[test]
    fn reachability_in_a_chain() {
        let (g, n) = chain(5);
        assert!(is_reachable(&g, n[0], n[4]));
        assert!(!is_reachable(&g, n[4], n[0]));
        assert!(is_reachable(&g, n[2], n[2]));
    }

    #[test]
    fn bfs_path_finds_shortest_route() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        // long way round 0->1->2->3, short cut 0->4->3
        g.add_edge(nodes[0], nodes[1], ());
        g.add_edge(nodes[1], nodes[2], ());
        g.add_edge(nodes[2], nodes[3], ());
        g.add_edge(nodes[0], nodes[4], ());
        g.add_edge(nodes[4], nodes[3], ());
        let path = bfs_path(&g, nodes[0], nodes[3]).unwrap();
        assert_eq!(path, vec![nodes[0], nodes[4], nodes[3]]);
    }

    #[test]
    fn bfs_path_handles_unreachable_and_self() {
        let (g, n) = chain(3);
        assert_eq!(bfs_path(&g, n[2], n[0]), None);
        assert_eq!(bfs_path(&g, n[1], n[1]), Some(vec![n[1]]));
    }

    #[test]
    fn weak_connectivity() {
        let (g, _) = chain(4);
        assert!(is_weakly_connected(&g));
        let mut g2: DiGraph<(), ()> = DiGraph::new();
        g2.add_node(());
        g2.add_node(());
        assert!(!is_weakly_connected(&g2));
        let empty: DiGraph<(), ()> = DiGraph::new();
        assert!(is_weakly_connected(&empty));
    }

    #[test]
    fn traversal_skips_removed_edges() {
        let (mut g, n) = chain(4);
        let e = g.find_edge(n[1], n[2]).unwrap();
        g.remove_edge(e);
        assert!(!is_reachable(&g, n[0], n[3]));
        assert_eq!(bfs_order(&g, n[0]), vec![n[0], n[1]]);
    }
}
