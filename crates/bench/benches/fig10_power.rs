//! Criterion bench regenerating the Figure 10 comparison (normalised power,
//! six benchmarks at 14 switches).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_bench::{power_comparison, sweeps};
use noc_topology::benchmarks::Benchmark;

fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_power");
    group.sample_size(10);
    for benchmark in [Benchmark::D26Media, Benchmark::D36x8] {
        group.bench_function(benchmark.name(), |b| {
            b.iter(|| power_comparison(benchmark, sweeps::FIG10_SWITCHES));
        });
    }
    group.finish();

    println!("\n== Figure 10 series (normalised power, 14 switches) ==");
    for benchmark in Benchmark::ALL {
        let c = power_comparison(benchmark, sweeps::FIG10_SWITCHES);
        println!(
            "{:>10}: removal=1.000 ordering={:.3} (removal VCs {}, ordering VCs {}, overhead {:.2}%)",
            c.benchmark,
            c.normalised_ordering_power(),
            c.removal_vcs,
            c.ordering_vcs,
            c.removal_power_overhead() * 100.0
        );
    }
}

criterion_group!(benches, fig10);
criterion_main!(benches);
