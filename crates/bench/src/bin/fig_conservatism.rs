//! The conservatism gap of the CDG check (beyond the paper): every Figure 8
//! (D26_media) and Figure 9 (D36_8) grid point plus a population of seeded
//! random designs, each run through the verifier triad —
//!
//! 1. the conservative check (is the CDG acyclic?),
//! 2. the certified verifier (is there an actual trappable long-worm
//!    configuration?), and
//! 3. the exact runtime wait-for-graph detector under the saturating
//!    long-worm workload the certified model assumes,
//!
//! then aggregated per benchmark: how many cyclic points are *certified*
//! deadlock-free (the false alarms), and how many VCs Algorithm 1 burns
//! repairing them.
//!
//! Pass `--threads <n>` to pin the executor worker count and
//! `--json <path>` to write the full report as a JSON artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{conservatism_sweep, DEFAULT_RANDOM_DESIGNS};

fn main() {
    let args = FigureCli::parse("fig_conservatism");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!(
        "# Conservatism of the CDG check vs. the certified verifier \
         (Figure 8/9 grids + {DEFAULT_RANDOM_DESIGNS} random designs)"
    );
    println!(
        "{:>10} {:>7} {:>7} {:>13} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "benchmark",
        "points",
        "cyclic",
        "deadlockable",
        "free(gap)",
        "unknown",
        "gap_vcs",
        "replays",
        "realized"
    );
    let report = conservatism_sweep(args.threads, DEFAULT_RANDOM_DESIGNS);
    for group in &report.benchmarks {
        println!(
            "{:>10} {:>7} {:>7} {:>13} {:>10} {:>8} {:>8} {:>9} {:>9}",
            group.benchmark,
            group.points.len(),
            group.cyclic_points,
            group.certified_deadlockable,
            group.certified_free_cyclic,
            group.unknown,
            group.gap_vcs,
            group.witness_attempts,
            group.witness_realized
        );
    }
    args.write_artifact(&report);
}
