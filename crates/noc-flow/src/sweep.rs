//! Batch driver for (benchmark × switch-count × strategy) grids.
//!
//! Replaces the old `noc_synth::sweep_switch_counts` helper and the
//! hand-rolled loops behind Figures 8, 9 and 10: one sweep description, any
//! number of deadlock strategies, one pass that synthesizes each design once
//! and charges every strategy against the same routed input.
//!
//! Grid points are independent — and within a point, the strategies are
//! too, because every strategy is charged against its own clone of the same
//! routed design — so the sweep can run on a pool of scoped worker threads:
//! [`FlowSweep::run_parallel`] and [`FlowSweep::run_streaming`] shard the
//! (grid point × strategy) work items across
//! [`worker_threads`](FlowSweep::worker_threads) workers (see [`executor`])
//! and still return points in deterministic grid order, byte-identical to
//! the serial [`run`](FlowSweep::run).

use crate::error::FlowError;
use crate::executor;
pub use crate::executor::SweepProgress;
use crate::router::Router;
use crate::stage::{DesignFlow, RoutedStage};
use crate::strategy::DeadlockStrategy;
use noc_deadlock::certify::CertifyReport;
use noc_deadlock::report::StrategyKind;
use noc_power::TechParams;
use noc_sim::{
    AssignedVc, FaultKind, FaultPlan, StormConfig, TrafficConfig, VcSimConfig, VcSimOutcome,
};
use noc_synth::SynthesisConfig;
use noc_topology::benchmarks::Benchmark;

/// Per-strategy VC-fidelity simulation summary, attached to a
/// [`StrategyOutcome`] when the sweep enables
/// [`FlowSweep::vc_simulation`].  The repaired design is simulated with the
/// [`AssignedVc`] policy — honouring exactly the VC assignment the
/// strategy paid for.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategySimStats {
    /// Packets handed to source queues.
    pub injected: usize,
    /// Packets fully delivered.
    pub delivered: usize,
    /// `true` if the run ended in an unrecovered deadlock (must stay
    /// `false` for correctly repaired designs).
    pub deadlocked: bool,
    /// Mean packet latency in cycles.
    pub mean_latency: f64,
    /// Median packet latency (nearest-rank p50).
    pub p50_latency: u64,
    /// 95th-percentile packet latency.
    pub p95_latency: u64,
    /// 99th-percentile packet latency.
    pub p99_latency: u64,
    /// Worst packet latency.
    pub max_latency: u64,
    /// Delivered flits per simulated cycle.
    pub throughput: f64,
    /// Cycles simulated.
    pub cycles: u64,
}

impl StrategySimStats {
    /// Summarises a VC-engine outcome.
    pub fn from_outcome(outcome: &VcSimOutcome) -> Self {
        Self::from_stats(&outcome.stats, outcome.deadlocked)
    }

    /// Summarises raw run statistics plus the deadlock verdict.
    pub fn from_stats(stats: &noc_sim::SimStats, deadlocked: bool) -> Self {
        let percentiles = stats.latency_percentiles(&[50.0, 95.0, 99.0]);
        StrategySimStats {
            injected: stats.injected_packets,
            delivered: stats.delivered_packets,
            deadlocked,
            mean_latency: stats.mean_latency(),
            p50_latency: percentiles[0],
            p95_latency: percentiles[1],
            p99_latency: percentiles[2],
            max_latency: stats.max_latency_cycles,
            throughput: stats.throughput_flits_per_cycle(),
            cycles: stats.cycles,
        }
    }
}

/// The VC-fidelity simulation a sweep optionally runs against every
/// repaired design ([`FlowSweep::vc_simulation`]).
#[derive(Debug, Clone, PartialEq)]
pub struct VcSweepSim {
    /// Engine parameters (buffer depth, credits, detection).
    pub sim: VcSimConfig,
    /// Workload parameters.
    pub traffic: TrafficConfig,
}

/// The fault-storm simulation a sweep optionally runs against every
/// repaired design ([`FlowSweep::fault_simulation`]): the same VC-fidelity
/// engine, armed with a seeded [`FaultPlan::storm`] over the repaired
/// topology, so each strategy's design is live-reconfigured through an
/// identical failure schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepSim {
    /// Engine parameters (buffer depth, credits, detection).
    pub sim: VcSimConfig,
    /// Workload parameters.
    pub traffic: TrafficConfig,
    /// Storm-generator parameters (fault count, schedule, seed).
    pub storm: StormConfig,
}

/// Per-strategy fault-storm summary, attached to a [`StrategyOutcome`]
/// when [`FlowSweep::fault_simulation`] is enabled: how the strategy's
/// repaired design survived a seeded link-failure storm under cycle-safe
/// live reconfiguration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRunStats {
    /// Failure events the plan scheduled (repairs not counted).
    pub faults_injected: usize,
    /// Reconfiguration epochs the run processed.
    pub reconfig_events: usize,
    /// Epochs committed (every one with an acyclic combined graph).
    pub epochs_committed: usize,
    /// Epochs whose combined graph was still cyclic at commit — the
    /// protocol's core invariant is that this stays zero.
    pub cyclic_commits: usize,
    /// Epochs that needed the scoped-drain / forced-reroute fallback.
    pub drain_fallbacks: usize,
    /// Packets pulled back to their sources by fault epochs.
    pub packets_drained: usize,
    /// Flow reroutes onto the surviving up*/down* function.
    pub flows_rerouted: usize,
    /// Flows left unreachable at the end of the run.
    pub unreachable_flows: usize,
    /// Packets charged to unreachable flows instead of delivery.
    pub unreachable_packets: usize,
    /// Packets handed to source queues.
    pub injected: usize,
    /// Packets fully delivered through the storm.
    pub delivered: usize,
    /// `delivered / injected` (1.0 for an idle workload).
    pub delivered_fraction: f64,
    /// Mean delivered-packet latency in cycles.
    pub mean_latency: f64,
    /// `true` when the plan's final failure state leaves every flow's
    /// endpoints connected (predicted by replaying the plan, not observed).
    pub connected: bool,
    /// `true` if the run ended in an unrecovered deadlock.
    pub deadlocked: bool,
}

impl FaultRunStats {
    /// Summarises a fault-armed VC-engine outcome.
    pub fn from_outcome(outcome: &VcSimOutcome, faults_injected: usize, connected: bool) -> Self {
        Self::from_parts(
            &outcome.stats,
            outcome.deadlocked,
            &outcome.reconfig,
            outcome.unreachable_flows.len(),
            outcome.unreachable_packets,
            faults_injected,
            connected,
        )
    }

    pub(crate) fn from_parts(
        stats: &noc_sim::SimStats,
        deadlocked: bool,
        reconfig: &noc_deadlock::report::ReconfigStats,
        unreachable_flows: usize,
        unreachable_packets: usize,
        faults_injected: usize,
        connected: bool,
    ) -> Self {
        let injected = stats.injected_packets;
        let delivered = stats.delivered_packets;
        FaultRunStats {
            faults_injected,
            reconfig_events: reconfig.events.len(),
            epochs_committed: reconfig.epochs_committed,
            cyclic_commits: reconfig.cyclic_commits,
            drain_fallbacks: reconfig.drain_fallbacks,
            packets_drained: reconfig.packets_drained,
            flows_rerouted: reconfig.flows_rerouted,
            unreachable_flows,
            unreachable_packets,
            injected,
            delivered,
            delivered_fraction: if injected == 0 {
                1.0
            } else {
                delivered as f64 / injected as f64
            },
            mean_latency: stats.mean_latency(),
            connected,
            deadlocked,
        }
    }
}

/// Summary of the certified static verifier's verdict on a repaired design,
/// attached to a [`StrategyOutcome`] when [`FlowSweep::certify`] is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyOutcome {
    /// The stable verdict name: `certified-free`, `certified-deadlockable`
    /// or `unknown` ([`noc_deadlock::certify::CertifyVerdict::name`]).
    pub verdict: String,
    /// Whether the repaired design's CDG was cyclic at all.
    pub cdg_cyclic: bool,
    /// Worms of the trap witness (0 unless certified deadlockable).
    pub witness_worms: usize,
    /// Worm placements the trap search tried.
    pub search_steps: usize,
}

impl CertifyOutcome {
    /// Summarises a certification report.
    pub fn from_report(report: &CertifyReport) -> Self {
        CertifyOutcome {
            verdict: report.verdict.name().to_string(),
            cdg_cyclic: report.cyclic_cdg,
            witness_worms: report.witness().map(|w| w.worms.len()).unwrap_or(0),
            search_steps: report.search_steps,
        }
    }
}

/// What one strategy did to one design of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// Strategy name ([`DeadlockStrategy::name`]).
    pub strategy: String,
    /// Which point of the deadlock design space the strategy occupies.
    pub kind: StrategyKind,
    /// VCs the strategy added.
    pub added_vcs: usize,
    /// CDG cycles it broke.
    pub cycles_broken: usize,
    /// Mean hop count of the repaired design's active flows.  Differs from
    /// the point's input [`mean_hops`](SweepPoint::mean_hops) only for
    /// strategies that change physical routes (recovery reconfiguration);
    /// the difference is that strategy's hop-inflation cost.
    pub mean_hops: f64,
    /// Total power of the repaired design in mW
    /// (`None` when [`FlowSweep::power_estimates`] is disabled).
    pub power_mw: Option<f64>,
    /// Total switch area of the repaired design in µm²
    /// (`None` when [`FlowSweep::power_estimates`] is disabled).
    pub area_um2: Option<f64>,
    /// VC-fidelity simulation summary of the repaired design
    /// (`None` unless [`FlowSweep::vc_simulation`] is enabled).
    pub sim: Option<StrategySimStats>,
    /// Certified static verdict on the repaired design
    /// (`None` unless [`FlowSweep::certify`] is enabled).
    pub certify: Option<CertifyOutcome>,
    /// Fault-storm survival summary of the repaired design
    /// (`None` unless [`FlowSweep::fault_simulation`] is enabled).
    pub fault: Option<FaultRunStats>,
}

/// One grid point of a [`FlowSweep`]: a synthesized design plus the outcome
/// of every strategy on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The benchmark the design was synthesized for.
    pub benchmark: Benchmark,
    /// Switch count of the synthesized topology.
    pub switch_count: usize,
    /// Flows that actually enter the switch network.
    pub active_flows: usize,
    /// Mean hop count over those active flows.
    pub mean_hops: f64,
    /// Power of the unmodified (possibly deadlock-prone) design in mW
    /// (`None` when [`FlowSweep::power_estimates`] is disabled).
    pub original_power_mw: Option<f64>,
    /// Area of the unmodified design in µm²
    /// (`None` when [`FlowSweep::power_estimates`] is disabled).
    pub original_area_um2: Option<f64>,
    /// Per-strategy outcomes, in the order the strategies were passed.
    pub outcomes: Vec<StrategyOutcome>,
}

impl SweepPoint {
    /// The outcome of the strategy with the given name, if it was part of
    /// the sweep.
    pub fn outcome(&self, strategy: &str) -> Option<&StrategyOutcome> {
        self.outcomes.iter().find(|o| o.strategy == strategy)
    }
}

/// A declarative sweep over (benchmark × switch-count) with any set of
/// deadlock strategies — the driver behind the Figure 8/9 VC-overhead
/// series and the Figure 10 power bars.
///
/// Switch counts that are infeasible for a benchmark (zero, or more
/// switches than cores) are skipped, exactly like the paper's sweeps only
/// plot feasible topologies.
///
/// # Example
///
/// ```
/// use noc_flow::{CycleBreaking, FlowSweep, ResourceOrdering};
/// use noc_topology::benchmarks::Benchmark;
///
/// let points = FlowSweep::new()
///     .benchmark(Benchmark::D26Media)
///     .switch_counts([6, 10, 14])
///     .run(&[&CycleBreaking::default(), &ResourceOrdering])?;
/// assert_eq!(points.len(), 3);
/// for p in &points {
///     let removal = p.outcome("cycle-breaking").unwrap();
///     let ordering = p.outcome("resource-ordering").unwrap();
///     assert!(removal.added_vcs <= ordering.added_vcs);
/// }
/// # Ok::<(), noc_flow::FlowError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowSweep {
    benchmarks: Vec<Benchmark>,
    switch_counts: Vec<usize>,
    template: SynthesisConfig,
    tech: TechParams,
    estimate_power: bool,
    threads: usize,
    vc_sim: Option<VcSweepSim>,
    fault_sim: Option<FaultSweepSim>,
    certify: bool,
}

impl Default for FlowSweep {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowSweep {
    /// An empty sweep with the default synthesis template and technology
    /// parameters.
    pub fn new() -> Self {
        FlowSweep {
            benchmarks: Vec::new(),
            switch_counts: Vec::new(),
            template: SynthesisConfig::with_switches(1),
            tech: TechParams::default(),
            estimate_power: true,
            threads: 0,
            vc_sim: None,
            fault_sim: None,
            certify: false,
        }
    }

    /// Adds one benchmark to the grid.
    ///
    /// Adding the same benchmark twice is harmless: the grid is deduplicated
    /// (preserving first-seen order), so each (benchmark, switch-count) pair
    /// produces exactly one [`SweepPoint`].
    pub fn benchmark(mut self, benchmark: Benchmark) -> Self {
        self.benchmarks.push(benchmark);
        self
    }

    /// Adds several benchmarks to the grid.
    ///
    /// Duplicates (within this call or across calls) are deduplicated,
    /// preserving first-seen order.
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.benchmarks.extend(benchmarks);
        self
    }

    /// Sets the switch counts to sweep.
    ///
    /// Duplicates (within this call or across calls) are deduplicated,
    /// preserving first-seen order.
    pub fn switch_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.switch_counts.extend(counts);
        self
    }

    /// Sets the number of worker threads for
    /// [`run_parallel`](Self::run_parallel) and
    /// [`run_streaming`](Self::run_streaming).
    ///
    /// `0` (the default) auto-sizes to the machine's available parallelism.
    /// The serial [`run`](Self::run) ignores this setting.
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the synthesis configuration template (its `switch_count`
    /// field is replaced per grid point).
    pub fn synthesis_template(mut self, template: SynthesisConfig) -> Self {
        self.template = template;
        self
    }

    /// Overrides the technology parameters used for the power estimates.
    pub fn tech_params(mut self, tech: TechParams) -> Self {
        self.tech = tech;
        self
    }

    /// Enables or disables per-point power/area estimation (on by default).
    /// VC-only sweeps like Figures 8 and 9 turn it off to skip three
    /// whole-network power-model passes per grid point.
    pub fn power_estimates(mut self, enabled: bool) -> Self {
        self.estimate_power = enabled;
        self
    }

    /// Additionally simulates every repaired design on the VC-fidelity
    /// engine (the [`AssignedVc`] policy, honouring the strategy's exact
    /// assignment) and attaches a [`StrategySimStats`] summary to each
    /// [`StrategyOutcome`].  Off by default — simulation costs far more
    /// than the repair itself.
    pub fn vc_simulation(mut self, spec: VcSweepSim) -> Self {
        self.vc_sim = Some(spec);
        self
    }

    /// Additionally runs every repaired design through a seeded fault storm
    /// on the fault-armed VC-fidelity engine and attaches a
    /// [`FaultRunStats`] summary to each [`StrategyOutcome`].  The storm is
    /// regenerated per repaired topology from the same [`StormConfig`], so
    /// every strategy faces the identical failure schedule whenever the
    /// strategies share a link numbering (all of the paper's strategies
    /// only add VCs or reroute — they never renumber links).  Off by
    /// default.
    pub fn fault_simulation(mut self, spec: FaultSweepSim) -> Self {
        self.fault_sim = Some(spec);
        self
    }

    /// Additionally runs the certified static verifier
    /// (`noc_deadlock::certify`) on every repaired design and attaches a
    /// [`CertifyOutcome`] to each [`StrategyOutcome`].  Off by default.
    pub fn certify(mut self, enabled: bool) -> Self {
        self.certify = enabled;
        self
    }

    /// Runs the grid: synthesizes each feasible (benchmark, switch-count)
    /// design once — keeping the routes the synthesizer computed under the
    /// template's `link_cost`, the paper's input routing — then charges
    /// every strategy against that same routed design.
    ///
    /// # Errors
    ///
    /// [`FlowError::EmptyStrategySet`] if `strategies` is empty (a sweep
    /// with no strategies would silently yield points with no outcomes);
    /// otherwise the first stage error of the grid.
    pub fn run(&self, strategies: &[&dyn DeadlockStrategy]) -> Result<Vec<SweepPoint>, FlowError> {
        self.run_inner(None, strategies)
    }

    /// Same as [`run`](Self::run), but re-routes every synthesized design
    /// with an explicit input [`Router`] instead of the synthesizer's
    /// default routes.
    pub fn run_with_router(
        &self,
        router: &dyn Router,
        strategies: &[&dyn DeadlockStrategy],
    ) -> Result<Vec<SweepPoint>, FlowError> {
        self.run_inner(Some(router), strategies)
    }

    /// Runs the grid on a pool of scoped worker threads — one task per
    /// (grid point × strategy) pair, so even a single grid point with
    /// several strategies parallelizes — and returns the points in the same
    /// deterministic grid order as [`run`](Self::run): the two are
    /// interchangeable, the parallel path is just faster on multi-core
    /// machines.
    ///
    /// The routed design of a point is prepared once, by whichever worker
    /// reaches the point first; the point's strategies then run against
    /// clones of it, exactly like the serial path.
    ///
    /// The pool size comes from [`worker_threads`](Self::worker_threads)
    /// (auto-sized by default).  On the first failing task the sweep stops
    /// handing out work and returns the error that the serial run would
    /// have reported.
    pub fn run_parallel(
        &self,
        strategies: &[&dyn DeadlockStrategy],
    ) -> Result<Vec<SweepPoint>, FlowError> {
        self.run_streaming(strategies, |_| {})
    }

    /// Same as [`run_parallel`](Self::run_parallel), but streams every
    /// completed point through `observer` as soon as its worker finishes —
    /// in completion order, which under parallelism is *not* grid order —
    /// so long sweeps can report progress while running.  The returned
    /// vector is still in deterministic grid order.
    ///
    /// The observer runs on the calling thread; workers keep computing
    /// while it executes.
    ///
    /// # Example
    ///
    /// ```
    /// use noc_flow::{CycleBreaking, FlowSweep};
    /// use noc_topology::benchmarks::Benchmark;
    ///
    /// let points = FlowSweep::new()
    ///     .benchmark(Benchmark::D26Media)
    ///     .switch_counts([6, 10, 14])
    ///     .power_estimates(false)
    ///     .worker_threads(2)
    ///     .run_streaming(&[&CycleBreaking::default()], |progress| {
    ///         eprintln!(
    ///             "[{}/{}] {} @ {} switches done",
    ///             progress.completed,
    ///             progress.total,
    ///             progress.point.benchmark,
    ///             progress.point.switch_count,
    ///         );
    ///     })?;
    /// assert_eq!(points.len(), 3);
    /// # Ok::<(), noc_flow::FlowError>(())
    /// ```
    pub fn run_streaming(
        &self,
        strategies: &[&dyn DeadlockStrategy],
        observer: impl FnMut(SweepProgress<'_>),
    ) -> Result<Vec<SweepPoint>, FlowError> {
        executor::run_sharded(self, None, strategies, observer)
    }

    /// Parallel + streaming sweep with an explicit input [`Router`], the
    /// parallel counterpart of [`run_with_router`](Self::run_with_router).
    pub fn run_streaming_with_router(
        &self,
        router: &dyn Router,
        strategies: &[&dyn DeadlockStrategy],
        observer: impl FnMut(SweepProgress<'_>),
    ) -> Result<Vec<SweepPoint>, FlowError> {
        executor::run_sharded(self, Some(router), strategies, observer)
    }

    /// The feasible, deduplicated (benchmark, switch-count) grid in
    /// deterministic sweep order: benchmarks in first-seen order, switch
    /// counts in first-seen order within each benchmark.
    ///
    /// Infeasible combinations (zero switches, or more switches than cores)
    /// are skipped; duplicate benchmarks or switch counts contribute a
    /// single grid point each.
    pub(crate) fn grid(&self) -> Vec<(Benchmark, usize)> {
        let benchmarks = dedup_preserving_order(&self.benchmarks);
        let counts = dedup_preserving_order(&self.switch_counts);
        let mut grid = Vec::with_capacity(benchmarks.len() * counts.len());
        for &benchmark in &benchmarks {
            for &switch_count in &counts {
                if switch_count == 0 || switch_count > benchmark.core_count() {
                    continue;
                }
                grid.push((benchmark, switch_count));
            }
        }
        grid
    }

    /// Number of worker threads a parallel run will use.
    pub(crate) fn requested_threads(&self) -> usize {
        self.threads
    }

    /// Prepares one grid point: synthesize, route, estimate the original
    /// design.  The returned [`PointSeed`] is what every strategy task of
    /// the point is charged against — shared by the serial path and the
    /// sharded executor so both produce identical points.
    pub(crate) fn prepare_point(
        &self,
        benchmark: Benchmark,
        switch_count: usize,
        router: Option<&dyn Router>,
    ) -> Result<PointSeed, FlowError> {
        let config = SynthesisConfig {
            switch_count,
            ..self.template.clone()
        };
        let stage = DesignFlow::from_benchmark(benchmark).synthesize(config)?;
        let routed = match router {
            Some(router) => stage.route(router)?,
            None => stage.route_default()?,
        };
        let original = self.estimate_power.then(|| routed.power(self.tech.clone()));
        Ok(PointSeed {
            benchmark,
            switch_count,
            original_power_mw: original.as_ref().map(|e| e.total_power_mw),
            original_area_um2: original.as_ref().map(|e| e.total_area_um2),
            routed,
        })
    }

    /// Charges one strategy against a prepared point (on a clone of the
    /// routed design, so outcomes are independent of execution order).
    pub(crate) fn strategy_outcome(
        &self,
        seed: &PointSeed,
        strategy: &dyn DeadlockStrategy,
    ) -> Result<StrategyOutcome, FlowError> {
        let fixed = seed.routed.resolve_deadlocks(strategy)?;
        let estimate = self.estimate_power.then(|| fixed.power(self.tech.clone()));
        let sim = match &self.vc_sim {
            Some(spec) => {
                let simulated = fixed.simulate_vc(&AssignedVc, &spec.sim, &spec.traffic)?;
                let outcome = simulated.outcome();
                Some(StrategySimStats::from_stats(
                    &outcome.stats,
                    outcome.deadlocked,
                ))
            }
            None => None,
        };
        let fault = match &self.fault_sim {
            Some(spec) => {
                let plan = FaultPlan::storm(fixed.topology(), &spec.storm);
                let faults_injected = plan
                    .events()
                    .iter()
                    .filter(|e| matches!(e.kind, FaultKind::LinkDown(_) | FaultKind::SwitchDown(_)))
                    .count();
                let down = plan.final_faults(fixed.topology());
                let connected = fixed
                    .topology()
                    .connectivity_after(&down)
                    .disconnected_flows(fixed.comm(), fixed.core_map())
                    .is_empty();
                let simulated =
                    fixed.simulate_vc_faulted(&AssignedVc, &spec.sim, &spec.traffic, plan)?;
                let outcome = simulated.outcome();
                let details = simulated
                    .vc_details()
                    .expect("fault simulation runs on the VC engine");
                Some(FaultRunStats::from_parts(
                    &outcome.stats,
                    outcome.deadlocked,
                    &details.reconfig,
                    details.unreachable_flows.len(),
                    details.unreachable_packets,
                    faults_injected,
                    connected,
                ))
            }
            None => None,
        };
        let certify = self
            .certify
            .then(|| CertifyOutcome::from_report(&fixed.certify()));
        let resolution = fixed.resolution();
        Ok(StrategyOutcome {
            strategy: resolution.strategy.clone(),
            kind: resolution.kind,
            added_vcs: resolution.added_vcs,
            cycles_broken: resolution.cycles_broken,
            mean_hops: fixed.routes().mean_hops(),
            power_mw: estimate.as_ref().map(|e| e.total_power_mw),
            area_um2: estimate.as_ref().map(|e| e.total_area_um2),
            sim,
            certify,
            fault,
        })
    }

    /// The feasible, deduplicated (benchmark, switch-count) grid in
    /// deterministic sweep order — the public face of `FlowSweep::grid`
    /// for callers (like the `noc-jobs` task decomposer) that need to
    /// enumerate a sweep's work units without running it.
    pub fn grid_points(&self) -> Vec<(Benchmark, usize)> {
        self.grid()
    }

    /// Prepares one grid point — synthesize, route, estimate — returning
    /// the shared design every strategy task of the point is charged
    /// against.  Together with [`FlowSweep::charge`] this lets external
    /// schedulers (the `noc-jobs` runner) drive a sweep one (point ×
    /// strategy) task at a time while producing points byte-identical to
    /// [`FlowSweep::run`].
    pub fn prepare(
        &self,
        benchmark: Benchmark,
        switch_count: usize,
    ) -> Result<PreparedPoint, FlowError> {
        self.prepare_point(benchmark, switch_count, None)
            .map(|seed| PreparedPoint { seed })
    }

    /// Charges one strategy against a prepared point (on a clone of the
    /// routed design, so outcomes are independent of execution order).
    pub fn charge(
        &self,
        point: &PreparedPoint,
        strategy: &dyn DeadlockStrategy,
    ) -> Result<StrategyOutcome, FlowError> {
        self.strategy_outcome(&point.seed, strategy)
    }

    fn run_inner(
        &self,
        router: Option<&dyn Router>,
        strategies: &[&dyn DeadlockStrategy],
    ) -> Result<Vec<SweepPoint>, FlowError> {
        if strategies.is_empty() {
            return Err(FlowError::EmptyStrategySet);
        }
        self.grid()
            .into_iter()
            .map(|(benchmark, switch_count)| {
                let seed = self.prepare_point(benchmark, switch_count, router)?;
                let outcomes = strategies
                    .iter()
                    .map(|&strategy| self.strategy_outcome(&seed, strategy))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(seed.point(outcomes))
            })
            .collect()
    }
}

/// A prepared grid point: the routed design every strategy of the point is
/// charged against, plus the point-level metadata the final [`SweepPoint`]
/// carries.
pub(crate) struct PointSeed {
    benchmark: Benchmark,
    switch_count: usize,
    original_power_mw: Option<f64>,
    original_area_um2: Option<f64>,
    routed: RoutedStage,
}

impl PointSeed {
    /// Assembles the final point from the per-strategy outcomes (in
    /// strategy declaration order).
    pub(crate) fn point(&self, outcomes: Vec<StrategyOutcome>) -> SweepPoint {
        SweepPoint {
            benchmark: self.benchmark,
            switch_count: self.switch_count,
            active_flows: self.routed.active_flow_count(),
            mean_hops: self.routed.routes().mean_hops(),
            original_power_mw: self.original_power_mw,
            original_area_um2: self.original_area_um2,
            outcomes,
        }
    }
}

/// A grid point prepared through [`FlowSweep::prepare`]: an opaque handle
/// over the routed design that [`FlowSweep::charge`] charges strategies
/// against and that [`PreparedPoint::assemble`] turns into the final
/// [`SweepPoint`].
pub struct PreparedPoint {
    seed: PointSeed,
}

impl PreparedPoint {
    /// The benchmark this point was prepared for.
    pub fn benchmark(&self) -> Benchmark {
        self.seed.benchmark
    }

    /// The switch count this point was prepared for.
    pub fn switch_count(&self) -> usize {
        self.seed.switch_count
    }

    /// Assembles the final point from the per-strategy outcomes (in
    /// strategy declaration order) — identical to what a full
    /// [`FlowSweep::run`] would have produced for this point.
    pub fn assemble(&self, outcomes: Vec<StrategyOutcome>) -> SweepPoint {
        self.seed.point(outcomes)
    }
}

/// First-seen-order deduplication for the grid axes.
fn dedup_preserving_order<T: Copy + PartialEq>(items: &[T]) -> Vec<T> {
    let mut seen = Vec::with_capacity(items.len());
    for &item in items {
        if !seen.contains(&item) {
            seen.push(item);
        }
    }
    seen
}
