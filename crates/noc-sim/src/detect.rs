//! Exact runtime deadlock detection over a flit wait-for graph.
//!
//! The timeout heuristic of the original engine declares deadlock after *N*
//! cycles without progress — a guess that is both slow (it must wait out
//! the threshold) and blind to partial deadlocks (a stuck ring keeps the
//! counter at zero as long as unrelated traffic still moves).  This module
//! decides the question exactly from a snapshot of the network state:
//!
//! * every **occupied channel** is a node; its head-of-line flit either can
//!   move right now, or *waits* on a set of targets — the channels whose
//!   drain would free a buffer slot, and the packets whose tail must pass
//!   to release a wormhole ownership;
//! * every **packet** is a node; it is live when any channel holding one of
//!   its flits is live, or when it can push its next flit into the network;
//! * liveness propagates backwards from the nodes that can move *now*
//!   (OR-semantics: one live candidate is enough, matching adaptive
//!   policies whose head flits re-evaluate every candidate VC each cycle).
//!
//! Packets with flits in the network that the fixed point never reaches can
//! **never move again** — no sequence of flit movements unblocks them — so
//! reporting them is exact, not heuristic: a snapshot containing a knot is
//! recognised immediately (the engine runs the check periodically and on
//! every idle cycle, so a knot is established within one detection period
//! of forming and never later than any timeout).  Ejection always counts
//! as movement (destinations sink flits unconditionally), and a credit
//! currently travelling back upstream counts as a move-enabler (it arrives
//! without anyone else making progress).

use crate::packet::PacketId;
use std::collections::{HashMap, VecDeque};

/// One thing a blocked flit is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitTarget {
    /// A buffer slot of the given channel (its head-of-line flit must
    /// advance before one frees).
    Channel(usize),
    /// The tail of the given packet must pass to release a wormhole
    /// ownership.
    Packet(PacketId),
}

/// The head-of-line flit of an occupied channel: either free to move this
/// cycle, or blocked on a set of wait targets (one per candidate VC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelWait {
    /// The packet the head-of-line flit belongs to.
    pub packet: PacketId,
    /// `true` when the flit can eject or advance right now (or a credit is
    /// already on its way back for one of its candidates).
    pub can_move: bool,
    /// What each blocked candidate waits for (empty iff `can_move`).
    pub waits: Vec<WaitTarget>,
}

/// A packet trying to push its next flit into the network from the source
/// queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionWait {
    /// The injecting packet.
    pub packet: PacketId,
    /// `true` when the flit can enter its first channel right now.
    pub can_move: bool,
    /// What each blocked candidate waits for (empty iff `can_move`).
    pub waits: Vec<WaitTarget>,
    /// `true` when the packet already owns channels (its head claimed a
    /// path).  Such a packet can pin a deadlock knot even with *zero* flits
    /// buffered in the network — a worm whose leading flits all ejected at
    /// the destination while its tail is still at the source keeps every
    /// claimed channel's ownership — so it belongs to the deadlocked set
    /// when it can never move again.
    pub holds_channels: bool,
}

/// A start-of-cycle snapshot of everything the detector needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitForSnapshot {
    /// Per channel (dense index): the head-of-line wait record, or `None`
    /// for an empty buffer.
    pub channels: Vec<Option<ChannelWait>>,
    /// One record per packet currently at the front of its flow's injection
    /// queue with flits left to inject.
    pub injections: Vec<InjectionWait>,
    /// For every packet with flits in the network: the channels holding at
    /// least one of its flits (any order; the engine emits ascending ids).
    pub flit_locations: Vec<(PacketId, Vec<usize>)>,
}

/// Node numbering for the liveness propagation: channels first, packets
/// after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Channel(usize),
    Packet(usize),
}

impl WaitForSnapshot {
    /// The packets that can never move again — the deadlocked set.  Empty
    /// iff the snapshot contains no deadlock.
    ///
    /// Runs one backwards reachability pass from the nodes that can move
    /// now, in `O(channels + packets + wait edges)`.
    pub fn deadlocked_packets(&self) -> Vec<PacketId> {
        let channel_count = self.channels.len();
        // Packet nodes: every packet with flits in the network, plus every
        // injecting packet (with or without network presence — an injector
        // can own channels while all its in-flight flits have already
        // ejected).  `in_dead_scope` marks the packets that hold network
        // resources and therefore belong to the reported deadlocked set.
        let mut packet_index: HashMap<PacketId, usize> = HashMap::new();
        let mut packets: Vec<(PacketId, bool)> = Vec::new();
        for (id, _) in &self.flit_locations {
            packet_index.entry(*id).or_insert_with(|| {
                packets.push((*id, true));
                packets.len() - 1
            });
        }
        for injection in &self.injections {
            if let Some(&index) = packet_index.get(&injection.packet) {
                packets[index].1 |= injection.holds_channels;
            } else {
                packet_index.insert(injection.packet, packets.len());
                packets.push((injection.packet, injection.holds_channels));
            }
        }
        let packet_count = packets.len();

        // Reverse wait edges: rev[target] = the nodes liberated when
        // `target` becomes live.
        let mut rev: Vec<Vec<Node>> = vec![Vec::new(); channel_count + packet_count];
        let target_slot = |target: &WaitTarget| match *target {
            WaitTarget::Channel(c) => Some(c),
            // An owner that is neither buffered nor injecting has released
            // everything already; ignore defensively.
            WaitTarget::Packet(p) => packet_index.get(&p).map(|&i| channel_count + i),
        };

        let mut live = vec![false; channel_count + packet_count];
        let mut queue: VecDeque<usize> = VecDeque::new();
        let seed = |slot: usize, live: &mut Vec<bool>, queue: &mut VecDeque<usize>| {
            if !live[slot] {
                live[slot] = true;
                queue.push_back(slot);
            }
        };

        for (channel, wait) in self.channels.iter().enumerate() {
            let Some(wait) = wait else { continue };
            if wait.can_move {
                seed(channel, &mut live, &mut queue);
            } else {
                for target in &wait.waits {
                    if let Some(slot) = target_slot(target) {
                        rev[slot].push(Node::Channel(channel));
                    }
                }
            }
        }
        for injection in &self.injections {
            let index = packet_index[&injection.packet];
            if injection.can_move {
                seed(channel_count + index, &mut live, &mut queue);
            } else {
                for target in &injection.waits {
                    if let Some(slot) = target_slot(target) {
                        rev[slot].push(Node::Packet(index));
                    }
                }
            }
        }
        // A packet is liberated whenever any channel holding its flits is.
        for (id, locations) in &self.flit_locations {
            let index = packet_index[id];
            for &channel in locations {
                rev[channel].push(Node::Packet(index));
            }
        }

        while let Some(slot) = queue.pop_front() {
            // Split borrow: take the edge list before mutating `live`.
            let dependents = std::mem::take(&mut rev[slot]);
            for node in dependents {
                let dependent = match node {
                    Node::Channel(c) => c,
                    Node::Packet(p) => channel_count + p,
                };
                if !live[dependent] {
                    live[dependent] = true;
                    queue.push_back(dependent);
                }
            }
        }

        let mut dead: Vec<PacketId> = packets
            .iter()
            .enumerate()
            .filter(|(index, (_, in_dead_scope))| *in_dead_scope && !live[channel_count + index])
            .map(|(_, (id, _))| *id)
            .collect();
        dead.sort();
        dead
    }

    /// The dense channel indices holding flits of the deadlocked set — the
    /// runtime counterpart of a static trap witness's claimed footprint,
    /// used to cross-check certified witnesses against what the detector
    /// actually saw.  Sorted and deduplicated; empty iff
    /// [`deadlocked_packets`](Self::deadlocked_packets) is empty.
    pub fn deadlocked_channels(&self) -> Vec<usize> {
        let dead = self.deadlocked_packets();
        let mut channels: Vec<usize> = self
            .flit_locations
            .iter()
            .filter(|(id, _)| dead.binary_search(id).is_ok())
            .flat_map(|(_, locations)| locations.iter().copied())
            .collect();
        channels.sort_unstable();
        channels.dedup();
        channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: usize) -> PacketId {
        PacketId(id)
    }

    /// Two packets each holding one channel and waiting for the other's
    /// channel slot: the textbook wormhole cycle.
    #[test]
    fn two_channel_cycle_is_deadlocked() {
        let snapshot = WaitForSnapshot {
            channels: vec![
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(1)],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(0)],
                }),
            ],
            injections: Vec::new(),
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1])],
        };
        assert_eq!(snapshot.deadlocked_packets(), vec![p(0), p(1)]);
        assert_eq!(snapshot.deadlocked_channels(), vec![0, 1]);
    }

    #[test]
    fn deadlocked_channels_skip_live_traffic() {
        // Dead cycle on channels 0/1; packet 2 lives on channel 2.
        let snapshot = WaitForSnapshot {
            channels: vec![
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(1)],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(0)],
                }),
                Some(ChannelWait {
                    packet: p(2),
                    can_move: true,
                    waits: Vec::new(),
                }),
            ],
            injections: Vec::new(),
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1]), (p(2), vec![2])],
        };
        assert_eq!(snapshot.deadlocked_channels(), vec![0, 1]);
    }

    #[test]
    fn a_live_head_unblocks_the_chain() {
        // 0 waits on 1, 1 waits on 2, 2 can move: everyone lives.
        let snapshot = WaitForSnapshot {
            channels: vec![
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(1)],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(2)],
                }),
                Some(ChannelWait {
                    packet: p(2),
                    can_move: true,
                    waits: Vec::new(),
                }),
            ],
            injections: Vec::new(),
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1]), (p(2), vec![2])],
        };
        assert!(snapshot.deadlocked_packets().is_empty());
    }

    #[test]
    fn or_semantics_one_live_candidate_suffices() {
        // Channel 0's head has two candidates: one inside a dead cycle with
        // channel 1, one waiting on the live channel 2.
        let snapshot = WaitForSnapshot {
            channels: vec![
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(1), WaitTarget::Channel(2)],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(0)],
                }),
                Some(ChannelWait {
                    packet: p(2),
                    can_move: true,
                    waits: Vec::new(),
                }),
            ],
            injections: Vec::new(),
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1]), (p(2), vec![2])],
        };
        // Packet 0 escapes through its second candidate; packet 1 is then
        // liberated because its wait target (channel 0) drains.
        assert!(snapshot.deadlocked_packets().is_empty());
    }

    #[test]
    fn ownership_waits_follow_the_owning_packet() {
        // Packet 0 waits for packet 1's ownership; packet 1 is live.
        let snapshot = WaitForSnapshot {
            channels: vec![
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Packet(p(1))],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: true,
                    waits: Vec::new(),
                }),
            ],
            injections: Vec::new(),
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1])],
        };
        assert!(snapshot.deadlocked_packets().is_empty());

        // Same shape, but packet 1 is itself stuck on packet 0: dead knot.
        let snapshot = WaitForSnapshot {
            channels: vec![
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Packet(p(1))],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: false,
                    waits: vec![WaitTarget::Packet(p(0))],
                }),
            ],
            injections: Vec::new(),
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1])],
        };
        assert_eq!(snapshot.deadlocked_packets(), vec![p(0), p(1)]);
    }

    #[test]
    fn partial_deadlock_is_found_while_other_traffic_moves() {
        let snapshot = WaitForSnapshot {
            channels: vec![
                // A dead 2-cycle...
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(1)],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: false,
                    waits: vec![WaitTarget::Channel(0)],
                }),
                // ...next to perfectly healthy traffic.
                Some(ChannelWait {
                    packet: p(2),
                    can_move: true,
                    waits: Vec::new(),
                }),
            ],
            injections: Vec::new(),
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1]), (p(2), vec![2])],
        };
        assert_eq!(snapshot.deadlocked_packets(), vec![p(0), p(1)]);
    }

    #[test]
    fn blocked_injections_of_network_packets_count() {
        // Packet 0 is mid-injection (one flit in channel 0, the rest at the
        // source); its next flit waits on channel 0's slot, whose head (its
        // own earlier flit) waits on the dead packet 1.
        let snapshot = WaitForSnapshot {
            channels: vec![
                Some(ChannelWait {
                    packet: p(0),
                    can_move: false,
                    waits: vec![WaitTarget::Packet(p(1))],
                }),
                Some(ChannelWait {
                    packet: p(1),
                    can_move: false,
                    waits: vec![WaitTarget::Packet(p(1))],
                }),
            ],
            injections: vec![InjectionWait {
                packet: p(0),
                can_move: false,
                waits: vec![WaitTarget::Channel(0)],
                holds_channels: true,
            }],
            flit_locations: vec![(p(0), vec![0]), (p(1), vec![1])],
        };
        assert_eq!(snapshot.deadlocked_packets(), vec![p(0), p(1)]);
    }

    #[test]
    fn queue_only_packets_are_not_deadlock_members() {
        // Packet 5 cannot inject (network ahead is dead) but holds nothing:
        // it is not reported; the network packet is.
        let snapshot = WaitForSnapshot {
            channels: vec![Some(ChannelWait {
                packet: p(1),
                can_move: false,
                waits: vec![WaitTarget::Packet(p(1))],
            })],
            injections: vec![InjectionWait {
                packet: p(5),
                can_move: false,
                waits: vec![WaitTarget::Channel(0)],
                holds_channels: false,
            }],
            flit_locations: vec![(p(1), vec![0])],
        };
        assert_eq!(snapshot.deadlocked_packets(), vec![p(1)]);
    }

    #[test]
    fn live_injection_keeps_a_partially_injected_packet_alive() {
        // Packet 0's network flit is stuck behind a full buffer, but the
        // packet can still inject into a second candidate — it is live, and
        // its liveness liberates channel 0 eventually.
        let snapshot = WaitForSnapshot {
            channels: vec![Some(ChannelWait {
                packet: p(0),
                can_move: false,
                waits: vec![WaitTarget::Packet(p(0))],
            })],
            injections: vec![InjectionWait {
                packet: p(0),
                can_move: true,
                waits: Vec::new(),
                holds_channels: true,
            }],
            flit_locations: vec![(p(0), vec![0])],
        };
        assert!(snapshot.deadlocked_packets().is_empty());
    }

    #[test]
    fn an_owner_with_no_buffered_flits_is_a_node_not_a_dropped_edge() {
        // Packet 0's worm has fully ejected its leading flits: nothing of
        // it is buffered, but it still owns its claimed channels and its
        // tail is at the source.  Packet 1 waits on that ownership.
        //
        // Live case: P0 can inject — both packets live (the regression the
        // ejected-head false positive came from).
        let live_case = WaitForSnapshot {
            channels: vec![Some(ChannelWait {
                packet: p(1),
                can_move: false,
                waits: vec![WaitTarget::Packet(p(0))],
            })],
            injections: vec![InjectionWait {
                packet: p(0),
                can_move: true,
                waits: Vec::new(),
                holds_channels: true,
            }],
            flit_locations: vec![(p(1), vec![0])],
        };
        assert!(live_case.deadlocked_packets().is_empty());

        // Dead case: P0's injection waits on the very channel P1 is stuck
        // in — a knot pinned by a packet with zero buffered flits.  P0 is
        // reported because it holds channels.
        let dead_case = WaitForSnapshot {
            channels: vec![Some(ChannelWait {
                packet: p(1),
                can_move: false,
                waits: vec![WaitTarget::Packet(p(0))],
            })],
            injections: vec![InjectionWait {
                packet: p(0),
                can_move: false,
                waits: vec![WaitTarget::Channel(0)],
                holds_channels: true,
            }],
            flit_locations: vec![(p(1), vec![0])],
        };
        assert_eq!(dead_case.deadlocked_packets(), vec![p(0), p(1)]);
    }

    #[test]
    fn empty_snapshot_has_no_deadlock() {
        assert!(WaitForSnapshot::default().deadlocked_packets().is_empty());
    }
}
