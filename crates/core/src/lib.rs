//! CDG-based deadlock removal for wormhole NoCs.
//!
//! This crate is the reproduction of the core contribution of
//! *"A Method to Remove Deadlocks in Networks-on-Chips with Wormhole Flow
//! Control"* (Seiculescu, Murali, Benini, De Micheli — DATE 2010):
//!
//! * [`cdg`] builds the **Channel Dependency Graph** of Definition 4 from a
//!   topology and a set of static routes,
//! * [`cost`] implements Algorithm 2 — the forward/backward cost tables that
//!   decide which dependency of a cycle is cheapest to break,
//! * [`removal`] implements Algorithm 1 — the smallest-cycle-first loop that
//!   adds virtual channels and re-routes flows until the CDG is acyclic,
//! * [`resource_ordering`] implements the baseline the paper compares
//!   against (ascending channel classes along every route),
//! * [`escape`] implements escape-channel *avoidance* (VC layers restricted
//!   to the up*/down* subgraph — the CDG is acyclic by construction),
//! * [`recovery`] implements DBR-style *recovery* (detect cyclic SCCs,
//!   drain their flows onto up*/down* routes; no VCs, hop inflation and
//!   reconfiguration events instead),
//! * [`verify`] checks deadlock freedom and route integrity after any of the
//!   transformations,
//! * [`vcmap`] snapshots the VC assignment a strategy produced (per-link VC
//!   counts + per-hop flow assignments) as the [`VcMap`] the VC-fidelity
//!   simulator consumes,
//! * [`report`] summarises what a removal run did (VCs added, cycles broken,
//!   direction choices) for the experiment harness, and names the strategy
//!   taxonomy ([`report::StrategyKind`]) the comparison sweeps use.
//!
//! # Quick start
//!
//! ```
//! use noc_topology::{Topology, CommGraph, CoreMap};
//! use noc_routing::shortest::route_all_shortest;
//! use noc_deadlock::{removal::{remove_deadlocks, RemovalConfig}, verify};
//!
//! // The 4-switch ring of Figure 1 with the four flows of the paper.
//! let mut topo = Topology::new();
//! let sw: Vec<_> = (0..4).map(|i| topo.add_switch(format!("SW{}", i + 1))).collect();
//! for i in 0..4 { topo.add_link(sw[i], sw[(i + 1) % 4], 1.0); }
//! let mut comm = CommGraph::new();
//! let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("c{i}"))).collect();
//! comm.add_flow(cores[0], cores[3], 1.0);
//! comm.add_flow(cores[2], cores[0], 1.0);
//! comm.add_flow(cores[3], cores[1], 1.0);
//! comm.add_flow(cores[0], cores[2], 1.0);
//! let mut map = CoreMap::new(4);
//! for (i, &c) in cores.iter().enumerate() { map.assign(c, sw[i])?; }
//! let mut routes = route_all_shortest(&topo, &comm, &map)?;
//!
//! // The ring CDG is cyclic; the removal algorithm fixes it with one VC.
//! assert!(verify::check_deadlock_free(&topo, &routes).is_err());
//! let report = remove_deadlocks(&mut topo, &mut routes, &RemovalConfig::default())?;
//! assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
//! assert_eq!(report.added_vcs, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # As a pipeline stage
//!
//! Most callers do not drive this crate directly: the `noc-flow` crate wraps
//! it as the [`CycleBreaking`](https://docs.rs/noc-flow) strategy of its
//! staged `DesignFlow` API, where the same ring repair is a chain with the
//! verification built into every stage transition:
//!
//! ```
//! use noc_flow::{CycleBreaking, DesignFlow, ShortestPathRouter};
//! use noc_synth::SynthesisConfig;
//! use noc_topology::benchmarks::Benchmark;
//!
//! let fixed = DesignFlow::from_benchmark(Benchmark::D36x8)
//!     .synthesize(SynthesisConfig::with_switches(10))?
//!     .route(&ShortestPathRouter::default())?
//!     .resolve_deadlocks(&CycleBreaking::default())?; // Algorithm 1 + re-verify
//! assert!(fixed.resolution().removal.is_some());
//! # Ok::<(), noc_flow::FlowError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdg;
pub mod certify;
pub mod cost;
pub mod escape;
pub mod recovery;
pub mod removal;
pub mod report;
pub mod resource_ordering;
pub mod vcmap;
pub mod verify;

pub use cdg::{Cdg, CdgDelta};
pub use certify::{
    certify_deadlock_free, certify_with, CertifyConfig, CertifyReport, CertifyVerdict, TrapWitness,
    TrapWorm, UnknownReason, WitnessError,
};
pub use escape::{apply_escape_channels, EscapeChannelResult, EscapeError};
pub use recovery::{apply_recovery_reconfig, RecoveryError, RecoveryResult, RecoveryStep};
pub use removal::{
    remove_deadlocks, CdgMode, CycleOrder, DirectionPolicy, RemovalConfig, RemovalError, SccMode,
};
pub use report::{
    CdgDeltaStats, CdgMaintenanceStats, ReconfigEvent, ReconfigStats, RemovalReport, StrategyKind,
};
pub use resource_ordering::{apply_resource_ordering, ResourceOrderingResult};
pub use vcmap::VcMap;
