//! Property-style tests for the VC-fidelity engine: the unsafe single-VC
//! baseline must deadlock on cyclic rings while every deadlock strategy's
//! VC assignment delivers the full workload, and the exact wait-for-graph
//! detector must never fire later than the idle-timeout heuristic.
//!
//! The crates.io `proptest` crate is unavailable in the offline build
//! environment, so the properties are checked over deterministic parameter
//! grids.

use noc_deadlock::escape::apply_escape_channels;
use noc_deadlock::recovery::apply_recovery_reconfig;
use noc_deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_deadlock::resource_ordering::apply_resource_ordering;
use noc_deadlock::vcmap::VcMap;
use noc_deadlock::verify::check_deadlock_free;
use noc_routing::{Route, RouteSet};
use noc_sim::{
    AdaptiveEscape, AssignedVc, DetectionKind, SingleVc, TrafficConfig, VcPolicy, VcSimConfig,
    VcSimulator,
};
use noc_topology::{generators, CommGraph, FlowId, LinkId, SwitchId, Topology};

/// The Figure 1 trap on a bidirectional ring: four flows forced the long
/// way around the clockwise links (two hops each), so the base CDG is the
/// classic 4-cycle — but the counter-clockwise links exist, so every
/// deadlock strategy (including the up*/down*-based ones) can repair it.
fn trapped_ring() -> (Topology, CommGraph, RouteSet) {
    let n = 4;
    let generated = generators::bidirectional_ring(n, 1.0);
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
    for i in 0..n {
        comm.add_flow(cores[i], cores[(i + 2) % n], 100.0);
    }
    let topo = generated.topology;
    let cw: Vec<LinkId> = (0..n)
        .map(|i| {
            topo.find_link(generated.switches[i], generated.switches[(i + 1) % n])
                .expect("ring link exists")
        })
        .collect();
    let mut routes = RouteSet::new(n);
    for i in 0..n {
        routes.set_route(
            FlowId::from_index(i),
            Route::from_links([cw[i], cw[(i + 1) % n]]),
        );
    }
    (topo, comm, routes)
}

fn pressure(packet_length: usize, seed: u64) -> TrafficConfig {
    TrafficConfig {
        packets_per_flow: 12,
        packet_length,
        mean_gap_cycles: 0,
        seed,
        ..TrafficConfig::default()
    }
}

/// (a) The unsafe single-VC baseline deadlocks on the cyclic ring for every
/// packet length and seed of the grid, while the VC map of *every* deadlock
/// strategy delivers 100 % of the same workload.
#[test]
fn unsafe_baseline_deadlocks_where_every_strategy_delivers() {
    for (packet_length, seed) in [(4usize, 1u64), (6, 2), (8, 3), (5, 7)] {
        let (topo, comm, routes) = trapped_ring();
        assert!(check_deadlock_free(&topo, &routes).is_err(), "cyclic input");
        let config = VcSimConfig {
            buffer_depth: 1,
            max_cycles: 300_000,
            ..VcSimConfig::default()
        };
        let traffic = pressure(packet_length, seed);
        let case = |policy: &str| format!("len={packet_length} seed={seed} policy={policy}");

        // The baseline: VC assignments discarded → deadlock, exactly.
        let base_map = VcMap::from_design(&topo, &routes);
        let unsafe_outcome =
            VcSimulator::new(&comm, &routes, &base_map, &SingleVc, &config).run(&traffic);
        assert!(unsafe_outcome.deadlocked, "{}", case("unsafe"));
        assert!(unsafe_outcome.stranded_packets > 0, "{}", case("unsafe"));
        assert_eq!(
            unsafe_outcome.detection.expect("detection recorded").kind,
            DetectionKind::WaitForGraph,
            "{}",
            case("unsafe")
        );

        // Every strategy's repaired design delivers the whole workload.
        let root = SwitchId::from_index(0);
        let mut repaired: Vec<(&str, Topology, RouteSet, &dyn VcPolicy)> = Vec::new();
        {
            let (mut t, mut r) = (topo.clone(), routes.clone());
            remove_deadlocks(&mut t, &mut r, &RemovalConfig::default()).unwrap();
            repaired.push(("cycle-breaking", t, r, &AssignedVc));
        }
        {
            let (mut t, mut r) = (topo.clone(), routes.clone());
            apply_resource_ordering(&mut t, &mut r).unwrap();
            repaired.push(("resource-ordering", t, r, &AssignedVc));
        }
        {
            let (mut t, mut r) = (topo.clone(), routes.clone());
            apply_escape_channels(&mut t, &mut r, root).unwrap();
            repaired.push(("escape-channel", t.clone(), r.clone(), &AssignedVc));
            repaired.push(("escape-channel-adaptive", t, r, &AdaptiveEscape));
        }
        {
            let (t, mut r) = (topo.clone(), routes.clone());
            apply_recovery_reconfig(&t, &mut r, root).unwrap();
            repaired.push(("recovery-reconfig", t, r, &AssignedVc));
        }
        for (name, t, r, policy) in &repaired {
            assert!(check_deadlock_free(t, r).is_ok(), "{}", case(name));
            let vc_map = VcMap::from_design(t, r);
            let outcome = VcSimulator::new(&comm, r, &vc_map, *policy, &config).run(&traffic);
            assert!(!outcome.deadlocked, "{}", case(name));
            assert!(outcome.detection.is_none(), "{}", case(name));
            assert_eq!(
                outcome.stats.delivered_packets,
                outcome.stats.injected_packets,
                "{}",
                case(name)
            );
            assert_eq!(outcome.stranded_packets, 0, "{}", case(name));
            // Flit conservation.
            assert_eq!(
                outcome.stats.delivered_flits,
                outcome.stats.delivered_packets * packet_length,
                "{}",
                case(name)
            );
        }
    }
}

/// (b) On seeded deadlocking workloads the exact wait-for-graph detector
/// fires no later than the idle-timeout heuristic, for every timeout
/// threshold of the grid.
#[test]
fn exact_detection_never_fires_later_than_the_timeout() {
    for (packet_length, seed, timeout) in [
        (4usize, 1u64, 64u64),
        (6, 2, 200),
        (8, 3, 500),
        (6, 9, 1_000),
    ] {
        let (topo, comm, routes) = trapped_ring();
        let vc_map = VcMap::from_design(&topo, &routes);
        let traffic = pressure(packet_length, seed);
        let case = format!("len={packet_length} seed={seed} timeout={timeout}");

        let exact = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &SingleVc,
            &VcSimConfig {
                buffer_depth: 1,
                idle_timeout: 0, // exact detector only
                ..VcSimConfig::default()
            },
        )
        .run(&traffic);
        let heuristic = VcSimulator::new(
            &comm,
            &routes,
            &vc_map,
            &SingleVc,
            &VcSimConfig {
                buffer_depth: 1,
                detect_period: 0, // exact detector disabled: heuristic only
                idle_timeout: timeout,
                ..VcSimConfig::default()
            },
        )
        .run(&traffic);
        assert!(exact.deadlocked && heuristic.deadlocked, "{case}");
        let exact_event = exact.detection.expect("exact detection fired");
        let heuristic_event = heuristic.detection.expect("heuristic detection fired");
        assert_eq!(exact_event.kind, DetectionKind::WaitForGraph, "{case}");
        assert_eq!(heuristic_event.kind, DetectionKind::IdleTimeout, "{case}");
        assert!(
            exact_event.cycle <= heuristic_event.cycle,
            "{case}: exact at {} vs heuristic at {}",
            exact_event.cycle,
            heuristic_event.cycle
        );
        assert!(exact_event.packets >= 2, "{case}: a knot has ≥ 2 packets");
        // The heuristic must wait out its threshold on top of the freeze,
        // so the exact detector wins by at least that margin minus one
        // detection period.
        assert!(
            heuristic_event.cycle + 1 >= timeout,
            "{case}: the heuristic cannot fire before its threshold"
        );
    }
}
