//! Telemetry exporters and the trace reader behind `noc_profile`.
//!
//! The write side turns a [`noc_telemetry::Snapshot`] into one file that is
//! simultaneously two things:
//!
//! * a schema-v[`SCHEMA_VERSION`] artifact — the usual `{"figure":
//!   "noc_trace", "schema", "data"}` envelope, where `data` carries the
//!   metrics summary (per-category phase totals, counters, log₂
//!   histograms, thread labels);
//! * a Chrome trace: a top-level `traceEvents` array of complete (`"ph":
//!   "X"`) events plus `thread_name` metadata, which Perfetto and
//!   `about://tracing` load directly.  [`ParsedArtifact`] ignores unknown
//!   envelope keys, so the extra array costs nothing on the artifact side.
//!
//! Every complete event also carries `seq`/`parent` (global enter-sequence
//! numbers from the recorder); trace viewers ignore them, while the read
//! side uses them to reconstruct exact nesting without trusting µs
//! timestamps to break ties.
//!
//! The read side ([`TraceSummary`]) parses a trace file back and answers
//! the profiling question directly: per-phase self time (nested
//! same-category spans are not double-counted) and the share of wall time
//! attributed to named phases, where wall time is the root span — see
//! [`TraceSummary::attribution_pct`].

use crate::json::{
    write_atomic, ArtifactError, JsonValue, ObjectWriter, ParsedArtifact, ToJson, SCHEMA_VERSION,
};
use noc_telemetry::{ArgValue, HistBucket, Snapshot, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Figure name carried in a trace file's artifact envelope.
pub const TRACE_FIGURE: &str = "noc_trace";

impl ToJson for ArgValue {
    fn write_json(&self, out: &mut String) {
        match self {
            ArgValue::U64(v) => v.write_json(out),
            ArgValue::F64(v) => v.write_json(out),
            ArgValue::Str(v) => v.write_json(out),
        }
    }
}

impl ToJson for HistBucket {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("lower", &self.lower)
            .field("upper", &self.upper)
            .field("count", &self.count)
            .finish();
    }
}

/// One span rendered as a Chrome complete event.
struct CompleteEvent<'a>(&'a SpanEvent);

impl ToJson for CompleteEvent<'_> {
    fn write_json(&self, out: &mut String) {
        let span = self.0;
        let mut args = String::new();
        {
            let mut object = ObjectWriter::new(&mut args);
            for (key, value) in &span.args {
                object = object.field(key, value);
            }
            object.finish();
        }
        ObjectWriter::new(out)
            .field("name", &span.name)
            .field("cat", &span.cat)
            .field("ph", &"X")
            .field("ts", &span.start_us)
            .field("dur", &span.dur_us)
            .field("pid", &1usize)
            .field("tid", &u64::from(span.tid))
            .field("seq", &span.enter_seq)
            .field("parent", &span.parent_seq)
            .field("args", &crate::json::RawJson(&args))
            .finish();
    }
}

/// The metrics summary serialized under the envelope's `data` key.
struct MetricsData<'a> {
    source: &'a str,
    snapshot: &'a Snapshot,
}

impl ToJson for MetricsData<'_> {
    fn write_json(&self, out: &mut String) {
        let phases = phase_totals(self.snapshot);
        let mut phase_json = String::new();
        {
            let mut sep = false;
            phase_json.push('[');
            for (cat, total_us) in &phases {
                if sep {
                    phase_json.push(',');
                }
                sep = true;
                ObjectWriter::new(&mut phase_json)
                    .field("cat", cat)
                    .field("total_us", total_us)
                    .finish();
            }
            phase_json.push(']');
        }
        let mut counter_json = String::new();
        {
            let mut sep = false;
            counter_json.push('[');
            for (name, value) in &self.snapshot.counters {
                if sep {
                    counter_json.push(',');
                }
                sep = true;
                ObjectWriter::new(&mut counter_json)
                    .field("name", name)
                    .field("value", value)
                    .finish();
            }
            counter_json.push(']');
        }
        let mut hist_json = String::new();
        {
            let mut sep = false;
            hist_json.push('[');
            for (name, buckets) in &self.snapshot.histograms {
                if sep {
                    hist_json.push(',');
                }
                sep = true;
                ObjectWriter::new(&mut hist_json)
                    .field("name", name)
                    .field("buckets", buckets)
                    .finish();
            }
            hist_json.push(']');
        }
        let mut thread_json = String::new();
        {
            let mut sep = false;
            thread_json.push('[');
            for (tid, label) in &self.snapshot.threads {
                if sep {
                    thread_json.push(',');
                }
                sep = true;
                ObjectWriter::new(&mut thread_json)
                    .field("tid", &u64::from(*tid))
                    .field("label", label)
                    .finish();
            }
            thread_json.push(']');
        }
        ObjectWriter::new(out)
            .field("source", &self.source)
            .field("span_count", &self.snapshot.spans.len())
            .field("dropped_spans", &self.snapshot.dropped_spans)
            .field("phases", &crate::json::RawJson(&phase_json))
            .field("counters", &crate::json::RawJson(&counter_json))
            .field("histograms", &crate::json::RawJson(&hist_json))
            .field("threads", &crate::json::RawJson(&thread_json))
            .finish();
    }
}

/// Per-category self time (µs), largest first; nested same-category spans
/// are excluded so a category's total is the time it actually covers.
fn phase_totals(snapshot: &Snapshot) -> Vec<(String, u64)> {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for span in &snapshot.spans {
        totals.entry(span.cat).or_insert(0);
    }
    for (cat, total) in &mut totals {
        *total = snapshot.category_self_us(cat);
    }
    let mut rows: Vec<(String, u64)> = totals
        .into_iter()
        .map(|(cat, total)| (cat.to_string(), total))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// A snapshot ready to serialize as one dual-format trace file.
pub struct TraceArtifact<'a> {
    /// The figure (or job) the trace was recorded from.
    pub source: &'a str,
    /// The recorder contents to export.
    pub snapshot: &'a Snapshot,
}

impl<'a> TraceArtifact<'a> {
    /// Pairs a source name with a snapshot.
    pub fn new(source: &'a str, snapshot: &'a Snapshot) -> Self {
        TraceArtifact { source, snapshot }
    }

    /// The full document: artifact envelope fields plus `traceEvents`,
    /// newline-terminated.  Complete events are sorted by start time (ties
    /// by enter sequence) so per-thread timestamps are monotone, with
    /// `thread_name` metadata events first.
    pub fn render(&self) -> String {
        let mut events: Vec<&SpanEvent> = self.snapshot.spans.iter().collect();
        events.sort_by_key(|s| (s.start_us, s.enter_seq));
        let mut event_json = String::new();
        event_json.push('[');
        let mut sep = false;
        for (tid, label) in &self.snapshot.threads {
            if sep {
                event_json.push(',');
            }
            sep = true;
            let mut args = String::new();
            ObjectWriter::new(&mut args).field("name", label).finish();
            ObjectWriter::new(&mut event_json)
                .field("name", &"thread_name")
                .field("ph", &"M")
                .field("pid", &1usize)
                .field("tid", &u64::from(*tid))
                .field("args", &crate::json::RawJson(&args))
                .finish();
        }
        for event in events {
            if sep {
                event_json.push(',');
            }
            sep = true;
            CompleteEvent(event).write_json(&mut event_json);
        }
        event_json.push(']');
        let data = MetricsData {
            source: self.source,
            snapshot: self.snapshot,
        };
        let mut out = String::new();
        ObjectWriter::new(&mut out)
            .field("figure", &TRACE_FIGURE)
            .field("schema", &SCHEMA_VERSION)
            .field("data", &data)
            .field("traceEvents", &crate::json::RawJson(&event_json))
            .finish();
        out.push('\n');
        out
    }

    /// Renders, self-validates (envelope parse), and writes atomically.
    pub fn write(&self, path: &Path) -> Result<(), ArtifactError> {
        let out = self.render();
        ParsedArtifact::parse(&out)?;
        write_atomic(path, out.as_bytes()).map_err(|source| ArtifactError::Io {
            path: path.to_path_buf(),
            source,
        })
    }
}

/// The metrics summary as newline-delimited JSON: one `counter`,
/// `histogram`, or `phase` object per line.  `noc_serve` streams these on
/// stderr as progress events; they carry the same numbers the trace file
/// folds into its envelope.
pub fn metrics_ndjson(source: &str, snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (cat, total_us) in phase_totals(snapshot) {
        ObjectWriter::new(&mut out)
            .field("event", &"phase")
            .field("source", &source)
            .field("cat", &cat)
            .field("total_us", &total_us)
            .finish();
        out.push('\n');
    }
    for (name, value) in &snapshot.counters {
        ObjectWriter::new(&mut out)
            .field("event", &"counter")
            .field("source", &source)
            .field("name", name)
            .field("value", value)
            .finish();
        out.push('\n');
    }
    for (name, buckets) in &snapshot.histograms {
        ObjectWriter::new(&mut out)
            .field("event", &"histogram")
            .field("source", &source)
            .field("name", name)
            .field("buckets", buckets)
            .finish();
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Read side
// ---------------------------------------------------------------------------

/// One complete event read back from a trace file.
#[derive(Debug, Clone, PartialEq)]
struct ReadEvent {
    name: String,
    cat: String,
    ts: u64,
    dur: u64,
    tid: u64,
    seq: u64,
    parent: u64,
}

/// One row of the per-phase breakdown table.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// Span category the row aggregates.
    pub cat: String,
    /// Spans counted into the row.
    pub spans: u64,
    /// Self time in microseconds (nested same-category spans excluded).
    pub total_us: u64,
}

/// A trace file reduced to the numbers `noc_profile` prints.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// The figure the trace was recorded from (`data.source`).
    pub source: String,
    /// Wall time in µs: the duration of the root span (the parentless span
    /// with the longest duration), or the overall event extent if no span
    /// is parentless.
    pub wall_us: u64,
    /// µs of the root span's window during which at least one named phase
    /// span was active on any thread (merged intervals, so overlapping
    /// workers are not double-counted).
    pub attributed_us: u64,
    /// Per-category self time, largest first.
    pub phases: Vec<PhaseRow>,
    /// Counters from the metrics summary.
    pub counters: Vec<(String, u64)>,
}

fn read_u64(value: &JsonValue, key: &str) -> Option<u64> {
    let number = value.get(key)?.as_number()?;
    if number.is_finite() && number >= 0.0 {
        Some(number as u64)
    } else {
        None
    }
}

impl TraceSummary {
    /// Parses a trace file (envelope + `traceEvents`) into a summary.
    pub fn parse(text: &str) -> Result<TraceSummary, ArtifactError> {
        let envelope = ParsedArtifact::parse(text)?;
        if envelope.figure != TRACE_FIGURE {
            return Err(ArtifactError::Envelope(format!(
                "expected figure {TRACE_FIGURE:?}, found {:?}",
                envelope.figure
            )));
        }
        let source = envelope
            .data
            .get("source")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ArtifactError::Envelope("missing data field \"source\"".into()))?
            .to_string();
        let counters = envelope
            .data
            .get("counters")
            .and_then(JsonValue::as_array)
            .map(|rows| {
                rows.iter()
                    .filter_map(|row| {
                        let name = row.get("name")?.as_str()?.to_string();
                        Some((name, read_u64(row, "value")?))
                    })
                    .collect()
            })
            .unwrap_or_default();
        // The envelope parse drops unknown keys; re-parse for traceEvents.
        let document = JsonValue::parse(text)?;
        let raw_events = document
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ArtifactError::Envelope("missing array \"traceEvents\"".into()))?;
        let mut events: Vec<ReadEvent> = Vec::new();
        for raw in raw_events {
            if raw.get("ph").and_then(JsonValue::as_str) != Some("X") {
                continue;
            }
            let event = (|| {
                Some(ReadEvent {
                    name: raw.get("name")?.as_str()?.to_string(),
                    cat: raw.get("cat")?.as_str()?.to_string(),
                    ts: read_u64(raw, "ts")?,
                    dur: read_u64(raw, "dur")?,
                    tid: read_u64(raw, "tid")?,
                    seq: read_u64(raw, "seq")?,
                    parent: read_u64(raw, "parent")?,
                })
            })();
            let event =
                event.ok_or_else(|| ArtifactError::Envelope("malformed complete event".into()))?;
            events.push(event);
        }
        Ok(TraceSummary::from_events(source, counters, &events))
    }

    fn from_events(
        source: String,
        counters: Vec<(String, u64)>,
        events: &[ReadEvent],
    ) -> TraceSummary {
        let cat_of: BTreeMap<u64, &str> = events.iter().map(|e| (e.seq, e.cat.as_str())).collect();
        let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for event in events {
            let row = totals.entry(event.cat.as_str()).or_insert((0, 0));
            row.0 += 1;
            if cat_of.get(&event.parent).copied() != Some(event.cat.as_str()) {
                row.1 += event.dur;
            }
        }
        let mut phases: Vec<PhaseRow> = totals
            .into_iter()
            .map(|(cat, (spans, total_us))| PhaseRow {
                cat: cat.to_string(),
                spans,
                total_us,
            })
            .collect();
        phases.sort_by(|a, b| b.total_us.cmp(&a.total_us).then_with(|| a.cat.cmp(&b.cat)));

        let root = events
            .iter()
            .filter(|e| e.parent == 0)
            .max_by_key(|e| (e.dur, std::cmp::Reverse(e.seq)));
        let (wall_us, attributed_us) = match root {
            Some(root) => {
                // Union of every non-root span's interval, across all
                // threads, clipped to the root window: the share of wall
                // time during which at least one named phase was active
                // somewhere in the process.  Work mostly happens on
                // executor worker threads while the root span sits on
                // main, so a same-thread filter would see nothing.
                let window = (root.ts, root.ts + root.dur);
                let mut intervals: Vec<(u64, u64)> = events
                    .iter()
                    .filter(|e| e.seq != root.seq)
                    .map(|e| (e.ts.max(window.0), (e.ts + e.dur).min(window.1)))
                    .filter(|(lo, hi)| lo < hi)
                    .collect();
                intervals.sort_unstable();
                let mut covered = 0u64;
                let mut cursor = window.0;
                for (lo, hi) in intervals {
                    let lo = lo.max(cursor);
                    if hi > lo {
                        covered += hi - lo;
                        cursor = hi;
                    }
                }
                (root.dur, covered)
            }
            None => {
                let lo = events.iter().map(|e| e.ts).min().unwrap_or(0);
                let hi = events.iter().map(|e| e.ts + e.dur).max().unwrap_or(0);
                (hi - lo, 0)
            }
        };
        TraceSummary {
            source,
            wall_us,
            attributed_us,
            phases,
            counters,
        }
    }

    /// Share of root-span wall time covered by named phases, in percent
    /// (100.0 when the trace has no wall time at all).
    pub fn attribution_pct(&self) -> f64 {
        if self.wall_us == 0 {
            return 100.0;
        }
        100.0 * self.attributed_us as f64 / self.wall_us as f64
    }

    /// The human-readable breakdown `noc_profile summary` prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace source: {}", self.source);
        let _ = writeln!(
            out,
            "wall time: {:.3} ms  attributed to named phases: {:.1}%",
            self.wall_us as f64 / 1000.0,
            self.attribution_pct()
        );
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>12} {:>7}",
            "phase", "spans", "ms", "%"
        );
        for row in &self.phases {
            let pct = if self.wall_us == 0 {
                0.0
            } else {
                100.0 * row.total_us as f64 / self.wall_us as f64
            };
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>12.3} {:>6.1}%",
                row.cat,
                row.spans,
                row.total_us as f64 / 1000.0,
                pct
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<40} {:>12}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<40} {value:>12}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_telemetry::SpanEvent;

    fn span(
        name: &str,
        cat: &'static str,
        start_us: u64,
        dur_us: u64,
        tid: u32,
        (enter_seq, exit_seq, parent_seq): (u64, u64, u64),
    ) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            cat,
            start_us,
            dur_us,
            tid,
            enter_seq,
            exit_seq,
            parent_seq,
            args: vec![("k".to_string(), ArgValue::U64(1))],
        }
    }

    fn sample_snapshot() -> Snapshot {
        let mut counters = BTreeMap::new();
        counters.insert("scc.full_recomputes".to_string(), 3u64);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "removal.dirty_region".to_string(),
            vec![HistBucket {
                lower: 0,
                upper: 0,
                count: 2,
            }],
        );
        let mut threads = BTreeMap::new();
        threads.insert(1u32, "main".to_string());
        threads.insert(2u32, "worker-0".to_string());
        Snapshot {
            spans: vec![
                // Root covers [0, 1000]; children tile [0, 990].
                span("sweep", "sweep", 0, 900, 1, (2, 7, 1)),
                span("point", "sweep", 10, 200, 2, (3, 4, 0)),
                span("write", "artifact", 900, 90, 1, (8, 9, 1)),
                span("fig8", "figure", 0, 1000, 1, (1, 10, 0)),
            ],
            counters,
            histograms,
            threads,
            dropped_spans: 0,
        }
    }

    #[test]
    fn trace_file_is_both_artifact_and_chrome_trace() {
        let snapshot = sample_snapshot();
        let text = TraceArtifact::new("fig8_d26_media", &snapshot).render();
        let envelope = ParsedArtifact::parse(&text).expect("valid artifact envelope");
        assert_eq!(envelope.figure, TRACE_FIGURE);
        assert_eq!(
            envelope.data.get("source").and_then(JsonValue::as_str),
            Some("fig8_d26_media")
        );
        let document = JsonValue::parse(&text).expect("valid JSON");
        let events = document
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        // 2 thread_name metadata events + 4 complete events.
        assert_eq!(events.len(), 6);
        let metadata: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .collect();
        assert_eq!(metadata.len(), 2);
        // Complete events are sorted by ts: per-thread timestamps monotone.
        let complete: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .map(|e| read_u64(e, "ts").expect("ts"))
            .collect();
        assert!(complete.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn summary_attributes_phase_time_to_the_root_window() {
        let snapshot = sample_snapshot();
        let text = TraceArtifact::new("fig8_d26_media", &snapshot).render();
        let summary = TraceSummary::parse(&text).expect("summary parses");
        assert_eq!(summary.source, "fig8_d26_media");
        assert_eq!(summary.wall_us, 1000);
        // Root-thread children: sweep [0,900] + write [900,990].
        assert_eq!(summary.attributed_us, 990);
        assert!((summary.attribution_pct() - 99.0).abs() < 1e-9);
        // Self time: "sweep" counts the worker point span too (its parent
        // is outside the trace), but not nested same-category spans.
        let sweep = summary.phases.iter().find(|p| p.cat == "sweep").unwrap();
        assert_eq!(sweep.spans, 2);
        assert_eq!(sweep.total_us, 1100);
        assert_eq!(summary.counters, vec![("scc.full_recomputes".into(), 3)]);
        let table = summary.render_table();
        assert!(table.contains("attributed to named phases: 99.0%"));
        assert!(table.contains("scc.full_recomputes"));
    }

    #[test]
    fn nested_same_category_spans_count_once() {
        let events = vec![
            ReadEvent {
                name: "outer".into(),
                cat: "removal".into(),
                ts: 0,
                dur: 100,
                tid: 1,
                seq: 1,
                parent: 0,
            },
            ReadEvent {
                name: "inner".into(),
                cat: "removal".into(),
                ts: 10,
                dur: 50,
                tid: 1,
                seq: 2,
                parent: 1,
            },
        ];
        let summary = TraceSummary::from_events("s".into(), Vec::new(), &events);
        let removal = summary.phases.iter().find(|p| p.cat == "removal").unwrap();
        assert_eq!(removal.spans, 2);
        assert_eq!(removal.total_us, 100);
    }

    #[test]
    fn metrics_ndjson_is_one_valid_object_per_line() {
        let snapshot = sample_snapshot();
        let ndjson = metrics_ndjson("fig8", &snapshot);
        let lines: Vec<&str> = ndjson.lines().collect();
        // 3 phase categories + 1 counter + 1 histogram.
        assert_eq!(lines.len(), 5);
        for line in lines {
            let value = JsonValue::parse(line).expect("valid NDJSON line");
            assert!(value.get("event").and_then(JsonValue::as_str).is_some());
        }
        assert!(ndjson.contains("\"event\":\"counter\""));
        assert!(ndjson.contains("\"event\":\"histogram\""));
    }
}
