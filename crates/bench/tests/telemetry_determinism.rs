//! Pins the telemetry determinism constraint: instrumentation is
//! observe-only, so installing the recording collector must not change any
//! artifact *data* payload — byte for byte — while the figure sweeps run
//! under the threaded executor.  Traces may (and do) differ between runs;
//! the science must not.

use noc_bench::vc_overhead_sweep_streaming;
use noc_flow::json::ToJson;
use noc_telemetry::RecorderScope;
use noc_topology::benchmarks::Benchmark;

/// Renders the Fig 8/9 sweep series exactly as `write_artifact` would
/// place it in the envelope's `data` field.
fn sweep_data_json(benchmark: Benchmark, counts: [usize; 3], threads: usize) -> String {
    let points = vc_overhead_sweep_streaming(benchmark, counts, threads, |_| {});
    let mut out = String::new();
    points.write_json(&mut out);
    out
}

#[test]
fn artifact_data_is_byte_identical_with_collector_on_and_off() {
    for (benchmark, counts) in [
        (Benchmark::D26Media, [5, 9, 14]),
        (Benchmark::D36x8, [10, 17, 25]),
    ] {
        let silent = sweep_data_json(benchmark, counts, 3);

        let scope = RecorderScope::new();
        let recorded = sweep_data_json(benchmark, counts, 3);
        let snapshot = scope.recorder().snapshot();
        drop(scope);

        assert_eq!(
            silent, recorded,
            "{benchmark:?}: enabling the collector changed the data payload"
        );
        // The run above must actually have been observed — a vacuous pass
        // (nothing instrumented, nothing recorded) would prove nothing.
        assert!(
            !snapshot.spans.is_empty(),
            "{benchmark:?}: recorded run produced no spans"
        );
        assert!(
            snapshot.spans.iter().any(|s| s.cat == "removal"),
            "{benchmark:?}: removal loop left no spans"
        );

        // And a third run with the collector gone again still agrees.
        let silent_again = sweep_data_json(benchmark, counts, 3);
        assert_eq!(silent, silent_again);
    }
}
