//! Zero-dependency observability: structured spans, typed counters, and
//! log₂ histograms behind a process-global collector seam.
//!
//! The seam defaults to a no-op: every instrumentation call first loads one
//! relaxed [`AtomicBool`], so an uninstrumented run pays a handful of
//! nanoseconds per site and allocates nothing.  Installing the
//! [`Recorder`] (see [`install_recorder`]) flips the flag and routes spans
//! into a bounded ring buffer and counters/histograms into aggregated
//! maps, all snapshotable at any time via [`Recorder::snapshot`].
//!
//! Spans are RAII guards ([`span`] returns a [`SpanGuard`] that records on
//! drop), nest naturally through a thread-local parent stack, and carry
//! the recording thread's id plus an optional human label (the executor
//! labels its workers `worker-0`, `worker-1`, … via [`set_thread_label`]).
//! Sequence numbers from one global counter give every span an exact
//! enter/exit order, which the balance and nesting property tests — and
//! the Chrome-trace exporter — rely on.
//!
//! This crate is a leaf: it serializes nothing.  The trace/NDJSON
//! exporters live in `noc_flow::trace`, next to the artifact machinery
//! they reuse.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Spans kept in the recording ring buffer; the oldest are dropped (and
/// counted) beyond this, so a runaway loop cannot exhaust memory.
pub const RING_CAPACITY: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);
static SEQ: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static PARENTS: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Microseconds since the process-local trace epoch (pinned at first use).
pub fn now_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Whether a recorder is installed.  The fast path of every
/// instrumentation site; a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the recording collector (idempotent: a second call returns the
/// recorder already installed).  Pins the trace epoch so timestamps start
/// near zero.
pub fn install_recorder() -> Arc<Recorder> {
    let _ = EPOCH.get_or_init(Instant::now);
    let mut slot = RECORDER.write().expect("telemetry seam poisoned");
    let recorder = slot
        .get_or_insert_with(|| Arc::new(Recorder::new()))
        .clone();
    ENABLED.store(true, Ordering::Relaxed);
    recorder
}

/// Uninstalls the collector, returning it (with everything it recorded)
/// if one was installed.  Live [`SpanGuard`]s keep their handle and still
/// record into it on drop, so balance holds across an uninstall.
pub fn uninstall_recorder() -> Option<Arc<Recorder>> {
    let mut slot = RECORDER.write().expect("telemetry seam poisoned");
    ENABLED.store(false, Ordering::Relaxed);
    slot.take()
}

fn current_recorder() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    RECORDER.read().expect("telemetry seam poisoned").clone()
}

/// The integer id of the calling thread (stable for the thread's life,
/// assigned on first use).
pub fn thread_id() -> u32 {
    TID.with(|t| *t)
}

/// Attaches a human-readable label to the calling thread; shown as the
/// thread name in trace exports.  No-op when disabled.
pub fn set_thread_label(label: impl Into<String>) {
    if let Some(recorder) = current_recorder() {
        recorder.label_thread(thread_id(), label.into());
    }
}

/// Adds `delta` to the named monotonic counter.  No-op when disabled.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if enabled() {
        if let Some(recorder) = current_recorder() {
            recorder.add_counter(name, delta);
        }
    }
}

/// Records one sample into the named log₂ histogram.  No-op when disabled.
#[inline]
pub fn histogram(name: &str, value: u64) {
    if enabled() {
        if let Some(recorder) = current_recorder() {
            recorder.record_histogram(name, value);
        }
    }
}

/// Opens a span: an interval that closes (and is recorded) when the
/// returned guard drops.  When no recorder is installed this allocates
/// nothing and the guard's drop is a no-op.
#[inline]
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    match current_recorder() {
        None => SpanGuard { open: None },
        Some(recorder) => SpanGuard::open(recorder, cat, name.into()),
    }
}

/// A typed span argument; rendered into the trace event's `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One closed span as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (the specific operation).
    pub name: String,
    /// Category (the phase family; trace viewers group and color by it).
    pub cat: &'static str,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread (see [`thread_id`]).
    pub tid: u32,
    /// Global sequence number taken when the span opened.
    pub enter_seq: u64,
    /// Global sequence number taken when the span closed.
    pub exit_seq: u64,
    /// `enter_seq` of the innermost span open on the same thread when this
    /// one opened; 0 at top level.
    pub parent_seq: u64,
    /// Typed key/value arguments attached via [`SpanGuard::arg`].
    pub args: Vec<(String, ArgValue)>,
}

struct OpenSpan {
    recorder: Arc<Recorder>,
    name: String,
    cat: &'static str,
    start_us: u64,
    enter_seq: u64,
    parent_seq: u64,
    args: Vec<(String, ArgValue)>,
}

/// RAII guard for an open span; records the closed [`SpanEvent`] on drop.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    fn open(recorder: Arc<Recorder>, cat: &'static str, name: String) -> Self {
        let enter_seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let parent_seq = PARENTS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            stack.push(enter_seq);
            parent
        });
        recorder.opened.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            open: Some(OpenSpan {
                recorder,
                name,
                cat,
                start_us: now_us(),
                enter_seq,
                parent_seq,
                args: Vec::new(),
            }),
        }
    }

    /// Attaches a typed argument to the span (kept in attach order).
    pub fn arg(&mut self, key: &str, value: impl Into<ArgValue>) -> &mut Self {
        if let Some(open) = &mut self.open {
            open.args.push((key.to_string(), value.into()));
        }
        self
    }

    /// Whether this guard is actually recording (false when the collector
    /// was disabled at open time).
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }

    /// The span's global enter sequence number, `None` when not recording.
    /// Lets callers find this span (and everything sequenced inside it) in
    /// a later [`Recorder::snapshot`], e.g. to attribute one timed run's
    /// wall time to phases.
    pub fn enter_seq(&self) -> Option<u64> {
        self.open.as_ref().map(|open| open.enter_seq)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        PARENTS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are dropped in reverse open order on a thread; pop to
            // (and including) our own entry to stay balanced even if an
            // inner guard leaked past us via mem::forget.
            if let Some(pos) = stack.iter().rposition(|&s| s == open.enter_seq) {
                stack.truncate(pos);
            }
        });
        let exit_seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let end_us = now_us();
        open.recorder.closed.fetch_add(1, Ordering::Relaxed);
        open.recorder.push_span(SpanEvent {
            name: open.name,
            cat: open.cat,
            start_us: open.start_us,
            dur_us: end_us.saturating_sub(open.start_us),
            tid: thread_id(),
            enter_seq: open.enter_seq,
            exit_seq,
            parent_seq: open.parent_seq,
            args: open.args,
        });
    }
}

/// One bucket of a log₂ histogram, mirroring `SimStats::latency_histogram`:
/// bucket 0 covers exactly 0, bucket k ≥ 1 covers `[2^(k-1), 2^k - 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive lower bound of the bucket.
    pub lower: u64,
    /// Inclusive upper bound of the bucket.
    pub upper: u64,
    /// Samples that fell into the bucket.
    pub count: u64,
}

#[derive(Default)]
struct Aggregates {
    counters: BTreeMap<String, u64>,
    // Histogram = per-bucket counts indexed by log₂ bucket number.
    histograms: BTreeMap<String, Vec<u64>>,
    threads: BTreeMap<u32, String>,
}

/// The recording collector: a bounded span ring buffer plus aggregated
/// counters, histograms, and thread labels.
pub struct Recorder {
    spans: Mutex<VecDeque<SpanEvent>>,
    aggregates: Mutex<Aggregates>,
    dropped: AtomicU64,
    opened: AtomicU64,
    closed: AtomicU64,
    capacity: usize,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            spans: Mutex::new(VecDeque::new()),
            aggregates: Mutex::new(Aggregates::default()),
            dropped: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            capacity: RING_CAPACITY,
        }
    }

    fn push_span(&self, event: SpanEvent) {
        let mut spans = self.spans.lock().expect("span ring poisoned");
        if spans.len() == self.capacity {
            spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(event);
    }

    fn add_counter(&self, name: &str, delta: u64) {
        let mut agg = self.aggregates.lock().expect("aggregates poisoned");
        match agg.counters.get_mut(name) {
            Some(total) => *total = total.saturating_add(delta),
            None => {
                agg.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn record_histogram(&self, name: &str, value: u64) {
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        let mut agg = self.aggregates.lock().expect("aggregates poisoned");
        let counts = agg.histograms.entry(name.to_string()).or_default();
        if counts.len() <= bucket {
            counts.resize(bucket + 1, 0);
        }
        counts[bucket] += 1;
    }

    fn label_thread(&self, tid: u32, label: String) {
        let mut agg = self.aggregates.lock().expect("aggregates poisoned");
        agg.threads.insert(tid, label);
    }

    /// Spans opened so far (including still-open ones).
    pub fn spans_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Spans closed (recorded) so far.
    pub fn spans_closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of everything recorded.
    pub fn snapshot(&self) -> Snapshot {
        let spans: Vec<SpanEvent> = {
            let ring = self.spans.lock().expect("span ring poisoned");
            ring.iter().cloned().collect()
        };
        let agg = self.aggregates.lock().expect("aggregates poisoned");
        let histograms = agg
            .histograms
            .iter()
            .map(|(name, counts)| {
                let buckets = counts
                    .iter()
                    .enumerate()
                    .map(|(k, &count)| HistBucket {
                        lower: if k == 0 { 0 } else { 1u64 << (k - 1) },
                        upper: if k == 0 { 0 } else { (1u64 << k) - 1 },
                        count,
                    })
                    .collect();
                (name.clone(), buckets)
            })
            .collect();
        Snapshot {
            spans,
            counters: agg.counters.clone(),
            histograms,
            threads: agg.threads.clone(),
            dropped_spans: self.dropped.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Recorder`]'s contents; what the exporters
/// serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Closed spans, oldest first (ring order).
    pub spans: Vec<SpanEvent>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Log₂ histograms by name.
    pub histograms: BTreeMap<String, Vec<HistBucket>>,
    /// Thread labels by thread id.
    pub threads: BTreeMap<u32, String>,
    /// Spans evicted from the ring buffer because it was full.
    pub dropped_spans: u64,
}

impl Snapshot {
    /// Total time attributed to a category: the sum of `dur_us` over spans
    /// in `cat` that have no parent in the same category (so nested
    /// same-category spans are not double-counted).
    pub fn category_self_us(&self, cat: &str) -> u64 {
        let in_cat: BTreeMap<u64, ()> = self
            .spans
            .iter()
            .filter(|s| s.cat == cat)
            .map(|s| (s.enter_seq, ()))
            .collect();
        self.spans
            .iter()
            .filter(|s| s.cat == cat && !in_cat.contains_key(&s.parent_seq))
            .map(|s| s.dur_us)
            .sum()
    }
}

/// Guard that installs the recorder for a scope and uninstalls on drop.
/// Test-oriented: keeps collector state from leaking between `#[test]`s
/// that share a process.
pub struct RecorderScope {
    recorder: Arc<Recorder>,
}

impl RecorderScope {
    /// Installs the global recorder (or adopts the one already installed).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        RecorderScope {
            recorder: install_recorder(),
        }
    }

    /// The recorder this scope installed.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }
}

impl Drop for RecorderScope {
    fn drop(&mut self) {
        let _ = uninstall_recorder();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this file share the process-global seam; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _guard = lock();
        assert!(!enabled());
        {
            let mut span = span("test", "noop");
            span.arg("k", 1u64);
            assert!(!span.is_recording());
        }
        counter("test.count", 3);
        histogram("test.hist", 9);
        let scope = RecorderScope::new();
        let snapshot = scope.recorder().snapshot();
        assert!(snapshot.spans.is_empty());
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.histograms.is_empty());
    }

    #[test]
    fn spans_nest_and_carry_args() {
        let _guard = lock();
        let scope = RecorderScope::new();
        {
            let mut outer = span("phase", "outer");
            outer.arg("n", 7u64).arg("label", "abc");
            {
                let _inner = span("phase", "inner");
            }
        }
        let snapshot = scope.recorder().snapshot();
        assert_eq!(snapshot.spans.len(), 2);
        // Ring order is close order: inner first.
        let inner = &snapshot.spans[0];
        let outer = &snapshot.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent_seq, outer.enter_seq);
        assert_eq!(outer.parent_seq, 0);
        assert!(outer.enter_seq < inner.enter_seq);
        assert!(inner.exit_seq < outer.exit_seq);
        assert_eq!(outer.args.len(), 2);
        assert_eq!(outer.args[0], ("n".to_string(), ArgValue::U64(7)));
        assert_eq!(
            outer.args[1],
            ("label".to_string(), ArgValue::Str("abc".to_string()))
        );
    }

    #[test]
    fn counters_aggregate_and_histograms_bucket_by_log2() {
        let _guard = lock();
        let scope = RecorderScope::new();
        counter("c", 2);
        counter("c", 3);
        for v in [0u64, 1, 2, 3, 4, 9, 9] {
            histogram("h", v);
        }
        let snapshot = scope.recorder().snapshot();
        assert_eq!(snapshot.counters.get("c"), Some(&5));
        let buckets = &snapshot.histograms["h"];
        // Buckets: [0,0], [1,1], [2,3], [4,7], [8,15] — mirrors SimStats.
        assert_eq!(buckets.len(), 5);
        assert_eq!((buckets[0].lower, buckets[0].upper), (0, 0));
        assert_eq!((buckets[2].lower, buckets[2].upper), (2, 3));
        assert_eq!((buckets[4].lower, buckets[4].upper), (8, 15));
        let counts: Vec<u64> = buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 1, 2, 1, 2]);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let _guard = lock();
        let scope = RecorderScope::new();
        let recorder = scope.recorder().clone();
        // Fill past capacity through the private path to keep the test fast.
        for i in 0..(8 + 3) {
            recorder.push_span(SpanEvent {
                name: format!("s{i}"),
                cat: "t",
                start_us: i,
                dur_us: 0,
                tid: 0,
                enter_seq: i + 1,
                exit_seq: i + 2,
                parent_seq: 0,
                args: Vec::new(),
            });
        }
        // The real capacity is large; emulate the drop path by checking the
        // accounting fields directly on a synthetic small ring.
        let small = Recorder {
            spans: Mutex::new(VecDeque::new()),
            aggregates: Mutex::new(Aggregates::default()),
            dropped: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            capacity: 4,
        };
        for i in 0..10u64 {
            small.push_span(SpanEvent {
                name: format!("s{i}"),
                cat: "t",
                start_us: i,
                dur_us: 0,
                tid: 0,
                enter_seq: i + 1,
                exit_seq: i + 2,
                parent_seq: 0,
                args: Vec::new(),
            });
        }
        let snapshot = small.snapshot();
        assert_eq!(snapshot.spans.len(), 4);
        assert_eq!(snapshot.dropped_spans, 6);
        assert_eq!(snapshot.spans[0].name, "s6");
    }

    #[test]
    fn thread_labels_and_ids_are_per_thread() {
        let _guard = lock();
        let scope = RecorderScope::new();
        set_thread_label("main-test");
        let main_tid = thread_id();
        let worker_tid = std::thread::scope(|s| {
            s.spawn(|| {
                set_thread_label("worker-test");
                let _span = span("t", "on-worker");
                thread_id()
            })
            .join()
            .expect("worker panicked")
        });
        assert_ne!(main_tid, worker_tid);
        let snapshot = scope.recorder().snapshot();
        assert_eq!(
            snapshot.threads.get(&main_tid).map(String::as_str),
            Some("main-test")
        );
        assert_eq!(
            snapshot.threads.get(&worker_tid).map(String::as_str),
            Some("worker-test")
        );
        let on_worker = snapshot
            .spans
            .iter()
            .find(|s| s.name == "on-worker")
            .expect("worker span recorded");
        assert_eq!(on_worker.tid, worker_tid);
    }

    #[test]
    fn balance_holds_across_threads() {
        let _guard = lock();
        let scope = RecorderScope::new();
        let recorder = scope.recorder().clone();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..50 {
                        let mut outer = span("load", format!("outer-{t}-{i}"));
                        outer.arg("i", i as u64);
                        let _inner = span("load", "inner");
                    }
                });
            }
        });
        assert_eq!(recorder.spans_opened(), recorder.spans_closed());
        assert_eq!(recorder.spans_opened(), 400);
        let snapshot = recorder.snapshot();
        // Every span balanced: enter < exit, and parents outlive children.
        let by_enter: BTreeMap<u64, &SpanEvent> =
            snapshot.spans.iter().map(|s| (s.enter_seq, s)).collect();
        for span in &snapshot.spans {
            assert!(span.enter_seq < span.exit_seq);
            if span.parent_seq != 0 {
                let parent = by_enter[&span.parent_seq];
                assert!(parent.enter_seq < span.enter_seq);
                assert!(span.exit_seq < parent.exit_seq);
                assert_eq!(parent.tid, span.tid);
            }
        }
    }

    #[test]
    fn category_self_time_skips_nested_same_category_spans() {
        let snapshot = Snapshot {
            spans: vec![
                SpanEvent {
                    name: "outer".into(),
                    cat: "a",
                    start_us: 0,
                    dur_us: 100,
                    tid: 1,
                    enter_seq: 1,
                    exit_seq: 6,
                    parent_seq: 0,
                    args: Vec::new(),
                },
                SpanEvent {
                    name: "inner-same".into(),
                    cat: "a",
                    start_us: 10,
                    dur_us: 40,
                    tid: 1,
                    enter_seq: 2,
                    exit_seq: 3,
                    parent_seq: 1,
                    args: Vec::new(),
                },
                SpanEvent {
                    name: "other".into(),
                    cat: "b",
                    start_us: 60,
                    dur_us: 20,
                    tid: 1,
                    enter_seq: 4,
                    exit_seq: 5,
                    parent_seq: 1,
                    args: Vec::new(),
                },
            ],
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            threads: BTreeMap::new(),
            dropped_spans: 0,
        };
        assert_eq!(snapshot.category_self_us("a"), 100);
        assert_eq!(snapshot.category_self_us("b"), 20);
    }
}
