//! Deadlock-oblivious minimum-cost routing.
//!
//! This is how the paper's *input* routes are produced: each flow follows a
//! minimum-cost path over the switch graph with no turn restrictions, so the
//! resulting channel dependency graph may contain cycles.  The
//! deadlock-removal algorithm (or a baseline) then has to make the design
//! safe.

use crate::route::{Route, RouteSet};
use crate::validate::RouteError;
use noc_graph::{shortest_path, NodeId};
use noc_topology::{CommGraph, CoreMap, LinkId, Topology};

/// Cost model for link selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkCost {
    /// Every link costs 1: pure hop-count minimisation.
    #[default]
    Hops,
    /// Link cost is inversely proportional to its bandwidth, so wide links
    /// are preferred.
    InverseBandwidth,
}

/// Routes every flow of `comm` over `topology` along a minimum-cost path.
///
/// All routes use VC 0 of each link; extra VCs only come into play when a
/// deadlock-removal scheme assigns them.  Flows whose endpoints share a
/// switch get an empty route.
///
/// # Errors
///
/// * [`RouteError::Unroutable`] if some flow has no path between its switches.
/// * [`RouteError::Topology`] if a core is unmapped.
pub fn route_all_shortest(
    topology: &Topology,
    comm: &CommGraph,
    map: &CoreMap,
) -> Result<RouteSet, RouteError> {
    route_all_with_cost(topology, comm, map, LinkCost::Hops)
}

/// Same as [`route_all_shortest`] but with an explicit [`LinkCost`] model.
pub fn route_all_with_cost(
    topology: &Topology,
    comm: &CommGraph,
    map: &CoreMap,
    cost: LinkCost,
) -> Result<RouteSet, RouteError> {
    let graph = topology.to_switch_graph();
    let mut routes = RouteSet::new(comm.flow_count());

    // Cache one Dijkstra run per distinct source switch.
    let mut cache: Vec<Option<shortest_path::ShortestPaths>> = vec![None; topology.switch_count()];

    for (flow_id, flow) in comm.flows() {
        let src = map.require(flow.source).map_err(RouteError::Topology)?;
        let dst = map
            .require(flow.destination)
            .map_err(RouteError::Topology)?;
        if src == dst {
            routes.set_route(flow_id, Route::empty());
            continue;
        }
        let sp = cache[src.index()].get_or_insert_with(|| {
            shortest_path::dijkstra(&graph, NodeId::from_index(src.index()), |e| {
                let link = topology
                    .link(*e.weight)
                    .expect("switch graph edges reference valid links");
                Some(match cost {
                    LinkCost::Hops => 1,
                    LinkCost::InverseBandwidth => {
                        // Map bandwidth to an integer cost; wider links cost less.
                        (1_000_000.0 / link.bandwidth.max(1e-6)).round() as u64
                    }
                })
            })
        });
        let edge_path =
            sp.edge_path_to(NodeId::from_index(dst.index()))
                .ok_or(RouteError::Unroutable {
                    flow: flow_id,
                    from: src,
                    to: dst,
                })?;
        let links: Vec<LinkId> = edge_path
            .iter()
            .map(|&e| {
                *graph
                    .edge_weight(e)
                    .expect("edge ids from the path are live")
            })
            .collect();
        routes.set_route(flow_id, Route::from_links(links));
    }
    Ok(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{generators, CommGraph, CoreMap};

    fn ring_design() -> (
        noc_topology::Topology,
        CommGraph,
        CoreMap,
        Vec<noc_topology::SwitchId>,
    ) {
        let generated = generators::unidirectional_ring(4, 1.0);
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("c{i}"))).collect();
        // Flows matching the paper's Figure 1/2 example.
        comm.add_flow(cores[0], cores[3], 10.0); // R1 = L0 L1 L2
        comm.add_flow(cores[2], cores[0], 10.0); // R2 = L2 L3
        comm.add_flow(cores[3], cores[1], 10.0); // R3 = L3 L0
        comm.add_flow(cores[0], cores[2], 10.0); // R4 = L0 L1
        let mut map = CoreMap::new(4);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        (generated.topology, comm, map, generated.switches)
    }

    #[test]
    fn ring_routes_follow_the_only_path() {
        let (t, c, m, _) = ring_design();
        let routes = route_all_shortest(&t, &c, &m).unwrap();
        assert_eq!(
            routes
                .route(noc_topology::FlowId::from_index(0))
                .unwrap()
                .hop_count(),
            3
        );
        assert_eq!(
            routes
                .route(noc_topology::FlowId::from_index(1))
                .unwrap()
                .hop_count(),
            2
        );
        assert_eq!(
            routes
                .route(noc_topology::FlowId::from_index(2))
                .unwrap()
                .hop_count(),
            2
        );
        assert_eq!(
            routes
                .route(noc_topology::FlowId::from_index(3))
                .unwrap()
                .hop_count(),
            2
        );
    }

    #[test]
    fn same_switch_flow_gets_empty_route() {
        let generated = generators::bidirectional_ring(3, 1.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        let f = comm.add_flow(a, b, 1.0);
        let mut map = CoreMap::new(2);
        map.assign(a, generated.switches[0]).unwrap();
        map.assign(b, generated.switches[0]).unwrap();
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        assert!(routes.route(f).unwrap().is_empty());
    }

    #[test]
    fn unroutable_flow_is_an_error() {
        let mut t = noc_topology::Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        let f = comm.add_flow(a, b, 1.0);
        let mut map = CoreMap::new(2);
        map.assign(a, s0).unwrap();
        map.assign(b, s1).unwrap();
        let err = route_all_shortest(&t, &comm, &map).unwrap_err();
        match err {
            RouteError::Unroutable { flow, from, to } => {
                assert_eq!(flow, f);
                assert_eq!(from, s0);
                assert_eq!(to, s1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unmapped_core_is_an_error() {
        let (t, c, _, _) = ring_design();
        let empty = CoreMap::new(c.core_count());
        assert!(matches!(
            route_all_shortest(&t, &c, &empty),
            Err(RouteError::Topology(_))
        ));
    }

    #[test]
    fn inverse_bandwidth_prefers_wide_links() {
        // Two parallel 2-hop paths; the wide one should win even though hops tie.
        let mut t = noc_topology::Topology::new();
        let s = [
            t.add_switch("src"),
            t.add_switch("narrow"),
            t.add_switch("wide"),
            t.add_switch("dst"),
        ];
        t.add_link(s[0], s[1], 1.0);
        t.add_link(s[1], s[3], 1.0);
        let wide_a = t.add_link(s[0], s[2], 100.0);
        let wide_b = t.add_link(s[2], s[3], 100.0);
        let mut comm = CommGraph::new();
        let a = comm.add_core("a");
        let b = comm.add_core("b");
        let f = comm.add_flow(a, b, 1.0);
        let mut map = CoreMap::new(2);
        map.assign(a, s[0]).unwrap();
        map.assign(b, s[3]).unwrap();
        let routes = route_all_with_cost(&t, &comm, &map, LinkCost::InverseBandwidth).unwrap();
        let links: Vec<_> = routes.route(f).unwrap().links().collect();
        assert_eq!(links, vec![wide_a, wide_b]);
    }

    #[test]
    fn all_routes_are_contiguous_switch_paths() {
        let (t, c, m, _) = ring_design();
        let routes = route_all_shortest(&t, &c, &m).unwrap();
        for (_, r) in routes.iter() {
            let path = r.switch_path(&t).unwrap();
            for (i, link) in r.links().enumerate() {
                let l = t.link(link).unwrap();
                assert_eq!(l.source, path[i]);
                assert_eq!(l.target, path[i + 1]);
            }
        }
    }
}
