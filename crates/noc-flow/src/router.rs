//! The pluggable routing seam of the pipeline.
//!
//! The paper's method accepts *any* routing function as input (Section 3):
//! deadlock-oblivious shortest-path routes are what its evaluation uses, but
//! the analysis only needs the route set.  [`Router`] captures that contract
//! so a flow can swap routing schemes without touching the rest of the
//! pipeline, mirroring how related deadlock-avoidance work compares schemes
//! on a fixed substrate.

use crate::FlowError;
use noc_routing::shortest::{route_all_with_cost, LinkCost};
use noc_routing::updown::route_all_updown;
use noc_routing::xy::{route_all_xy, MeshCoords};
use noc_routing::RouteSet;
use noc_topology::{CommGraph, CoreMap, SwitchId, Topology};

/// A routing scheme: produces one route per flow over a fixed design triple.
///
/// Implementations must return a route set that passes
/// [`noc_routing::validate::validate_routes`]; the
/// [`route`](crate::SynthesizedStage::route) stage re-checks this after
/// every call, so a broken implementation fails fast instead of corrupting
/// downstream stages.
///
/// Routers are shared by reference across the worker threads of a parallel
/// [`FlowSweep`](crate::FlowSweep), hence the `Sync` bound; routing itself
/// takes `&self`, so implementations are naturally immutable.
pub trait Router: Sync {
    /// Human-readable scheme name (used in sweep output and diagnostics).
    fn name(&self) -> &str;

    /// Routes every flow of `comm` over `topology`.
    fn route(
        &self,
        topology: &Topology,
        comm: &CommGraph,
        map: &CoreMap,
    ) -> Result<RouteSet, FlowError>;
}

/// Deadlock-oblivious minimum-cost routing — the paper's input routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShortestPathRouter {
    /// Link cost model (hop count by default).
    pub cost: LinkCost,
}

impl ShortestPathRouter {
    /// A shortest-path router with an explicit cost model.
    pub fn with_cost(cost: LinkCost) -> Self {
        ShortestPathRouter { cost }
    }
}

impl Router for ShortestPathRouter {
    fn name(&self) -> &str {
        match self.cost {
            LinkCost::Hops => "shortest-path",
            LinkCost::InverseBandwidth => "shortest-path-bw",
        }
    }

    fn route(
        &self,
        topology: &Topology,
        comm: &CommGraph,
        map: &CoreMap,
    ) -> Result<RouteSet, FlowError> {
        Ok(route_all_with_cost(topology, comm, map, self.cost)?)
    }
}

/// Dimension-order XY routing for 2-D meshes (deadlock-free by
/// construction, so [`CycleBreaking`](crate::CycleBreaking) must add zero
/// VCs after it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XyRouter {
    /// Row-major coordinates of the mesh being routed.
    pub coords: MeshCoords,
}

impl XyRouter {
    /// An XY router for the mesh described by `coords`.
    pub fn new(coords: MeshCoords) -> Self {
        XyRouter { coords }
    }
}

impl Router for XyRouter {
    fn name(&self) -> &str {
        "xy"
    }

    fn route(
        &self,
        topology: &Topology,
        comm: &CommGraph,
        map: &CoreMap,
    ) -> Result<RouteSet, FlowError> {
        Ok(route_all_xy(topology, comm, map, &self.coords)?)
    }
}

/// Up*/down* routing relative to a BFS spanning tree — a classic
/// deadlock-free scheme for arbitrary topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpDownRouter {
    /// Root switch of the spanning tree.
    pub root: SwitchId,
}

impl UpDownRouter {
    /// An up*/down* router rooted at `root`.
    pub fn rooted_at(root: SwitchId) -> Self {
        UpDownRouter { root }
    }
}

impl Default for UpDownRouter {
    /// Roots the spanning tree at switch 0, which exists in every non-empty
    /// topology.
    fn default() -> Self {
        UpDownRouter {
            root: SwitchId::from_index(0),
        }
    }
}

impl Router for UpDownRouter {
    fn name(&self) -> &str {
        "up-down"
    }

    fn route(
        &self,
        topology: &Topology,
        comm: &CommGraph,
        map: &CoreMap,
    ) -> Result<RouteSet, FlowError> {
        Ok(route_all_updown(topology, comm, map, self.root)?)
    }
}
