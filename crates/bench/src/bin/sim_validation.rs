//! Dynamic validation (beyond the paper's analytical argument): simulate
//! each benchmark design before and after deadlock removal under a
//! high-pressure wormhole workload and report whether deadlocks occur.
//!
//! Both runs use the VC-fidelity engine (`noc_sim::vc_engine`) with the
//! `AssignedVc` policy, so the "after" run actually rides the VCs the
//! removal algorithm assigned, and deadlock is decided by the exact
//! wait-for-graph detector rather than a timeout guess.
//!
//! The per-benchmark simulations run sharded across worker threads; pass
//! `--threads <n>` to pin the worker count (default: auto-size to the
//! machine) and `--json <path>` to write the per-benchmark outcomes as a
//! JSON artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{simulate_before_after_all, sweeps, SimValidation};
use noc_topology::benchmarks::Benchmark;

fn main() {
    let args = FigureCli::parse("sim_validation");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!("# Wormhole simulation: deadlock behaviour before/after removal (10-switch designs)");
    println!(
        "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16} {:>12}",
        "benchmark",
        "cdg_cyclic",
        "original_deadlock",
        "fixed_deadlock",
        "fixed_delivered",
        "fixed_latency",
        "fixed_p95"
    );
    let validations: Vec<SimValidation> =
        simulate_before_after_all(&Benchmark::ALL, sweeps::SIM_SWITCHES, args.threads);
    for v in &validations {
        println!(
            "{:>12} {:>14} {:>20} {:>18} {:>16} {:>16.1} {:>12}",
            v.benchmark,
            v.original_cdg_cyclic,
            v.original_deadlocked,
            v.fixed_deadlocked,
            v.fixed_delivered,
            v.fixed_mean_latency,
            v.fixed_p95_latency
        );
    }
    args.write_artifact(&validations);
}
