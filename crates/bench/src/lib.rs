//! Experiment harness reproducing the evaluation of the DATE 2010 paper.
//!
//! Each public function regenerates the data behind one figure or one prose
//! claim of the paper's Section 5 by driving the [`noc_flow`] pipeline API;
//! the binaries in `src/bin/` print the corresponding rows/series and the
//! Criterion benches in `benches/` measure the algorithm's runtime (the
//! paper's "runs within minutes" claim) and the ablations.
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Figure 8 (D26_media, VCs vs. switch count) | [`vc_overhead_sweep`] | `fig8_d26_media` |
//! | Figure 9 (D36_8, VCs vs. switch count) | [`vc_overhead_sweep`] | `fig9_d36_8` |
//! | Figure 10 (normalised power, 6 benchmarks @ 14 switches) | [`power_comparison`] | `fig10_power` |
//! | 88 % VC / 66 % area / 8.6 % power savings, < 5 % overhead | [`summary`] | `summary_table` |
//! | dynamic deadlock validation (beyond the paper) | [`simulate_before_after`] | `sim_validation` |
//! | four-way strategy comparison (beyond the paper) | [`strategy_matrix_sweep`] | `fig_strategy_matrix` |
//! | VC-aware per-strategy simulation sweep (beyond the paper) | [`sim_strategy_sweep`] | `fig_sim_strategies` |
//! | certified-verifier conservatism gap (beyond the paper) | [`conservatism_sweep`] | `fig_conservatism` |
//! | fault-storm survivability per strategy (beyond the paper) | [`fault_strategy_sweep`] | `fig_faults` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use noc_deadlock::cdg::Cdg;
use noc_deadlock::certify::TrapWitness;
use noc_deadlock::removal::RemovalConfig;
use noc_deadlock::report::RemovalReport;
use noc_flow::json::{ObjectWriter, ToJson};
use noc_flow::{
    CycleBreaking, DeadlockFreeStage, DeadlockStrategy, DesignFlow, EscapeChannel, FaultRunStats,
    FlowSweep, RecoveryReconfig, ResourceOrdering, RoutedStage, ShortestPathRouter,
    StrategySimStats, SweepPoint, SweepProgress,
};
use noc_rng::SmallRng;
use noc_routing::shortest::route_all_shortest;
use noc_routing::updown::route_all_updown;
use noc_routing::RouteSet;
use noc_sim::traffic::{generate_workload, Workload};
use noc_sim::{
    AdaptiveEscape, AssignedVc, DetectionKind, FaultKind, FaultPlan, Packet, PacketId, SingleVc,
    StormConfig, TrafficConfig, VcSimConfig, VcSimOutcome, VcSimulator,
};
use noc_synth::{synthesize, SynthesisConfig, SynthesisError, SynthesizedDesign};
use noc_topology::benchmarks::Benchmark;
use noc_topology::{generators, CommGraph, CoreMap, FlowId, SwitchId, Topology};

/// One point of the Figure 8 / Figure 9 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VcSweepPoint {
    /// Switch count of the synthesized topology.
    pub switch_count: usize,
    /// Extra VCs required by the resource-ordering baseline.
    pub resource_ordering_vcs: usize,
    /// Extra VCs added by the deadlock-removal algorithm.
    pub deadlock_removal_vcs: usize,
    /// Number of CDG cycles the removal algorithm had to break.
    pub cycles_broken: usize,
}

/// Synthesizes the benchmark at the given switch count with the default
/// (spanning-tree backbone) synthesis configuration.
pub fn synthesize_benchmark(
    benchmark: Benchmark,
    switch_count: usize,
) -> Result<SynthesizedDesign, SynthesisError> {
    let comm = benchmark.comm_graph();
    synthesize(&comm, &SynthesisConfig::with_switches(switch_count))
}

/// Regenerates the data of Figures 8 and 9: for each switch count, the VC
/// overhead of resource ordering versus the deadlock-removal algorithm.
///
/// Infeasible switch counts (zero, or more switches than cores) are skipped,
/// like the paper's figures only plot feasible topologies.
///
/// # Panics
///
/// Panics if synthesis or removal fails, which does not happen for the
/// bundled benchmarks (they are exercised by the test suite).
pub fn vc_overhead_sweep(
    benchmark: Benchmark,
    switch_counts: impl IntoIterator<Item = usize>,
) -> Vec<VcSweepPoint> {
    vc_overhead_sweep_streaming(benchmark, switch_counts, 0, |_| {})
}

/// [`vc_overhead_sweep`] on the parallel executor, streaming a progress
/// notification to `observer` as each grid point completes (completion
/// order); the returned points are in switch-count order regardless.
///
/// `threads` is the executor worker count (`0` auto-sizes to the machine,
/// the figure binaries expose it as `--threads N`).
pub fn vc_overhead_sweep_streaming(
    benchmark: Benchmark,
    switch_counts: impl IntoIterator<Item = usize>,
    threads: usize,
    observer: impl FnMut(SweepProgress<'_>),
) -> Vec<VcSweepPoint> {
    let removal = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let points = FlowSweep::new()
        .benchmark(benchmark)
        .switch_counts(switch_counts)
        .power_estimates(false) // Figures 8/9 only plot VC counts
        .worker_threads(threads)
        .run_streaming(&[&removal, &ordering], observer)
        .unwrap_or_else(|e| panic!("sweep failed for {benchmark}: {e}"));
    points
        .into_iter()
        .map(|p| {
            let removal = p.outcome(removal.name()).expect("strategy ran");
            let ordering = p.outcome(ordering.name()).expect("strategy ran");
            VcSweepPoint {
                switch_count: p.switch_count,
                resource_ordering_vcs: ordering.added_vcs,
                deadlock_removal_vcs: removal.added_vcs,
                cycles_broken: removal.cycles_broken,
            }
        })
        .collect()
}

/// One bar group of Figure 10 plus the area/overhead numbers quoted in the
/// paper's prose.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerComparison {
    /// Benchmark name as used in the paper.
    pub benchmark: String,
    /// Power (mW) of the unmodified, deadlock-prone design.
    pub original_power_mw: f64,
    /// Power (mW) after the deadlock-removal algorithm.
    pub removal_power_mw: f64,
    /// Power (mW) after resource ordering.
    pub ordering_power_mw: f64,
    /// Area (µm²) of the unmodified design.
    pub original_area_um2: f64,
    /// Area (µm²) after the deadlock-removal algorithm.
    pub removal_area_um2: f64,
    /// Area (µm²) after resource ordering.
    pub ordering_area_um2: f64,
    /// Extra VCs: removal algorithm.
    pub removal_vcs: usize,
    /// Extra VCs: resource ordering.
    pub ordering_vcs: usize,
}

impl PowerComparison {
    /// Resource-ordering power normalised to the removal algorithm (the bar
    /// plotted in Figure 10; > 1 means ordering burns more power).
    pub fn normalised_ordering_power(&self) -> f64 {
        self.ordering_power_mw / self.removal_power_mw
    }

    /// Power overhead of the removal algorithm over the original design.
    pub fn removal_power_overhead(&self) -> f64 {
        self.removal_power_mw / self.original_power_mw - 1.0
    }

    /// Area overhead of the removal algorithm over the original design.
    pub fn removal_area_overhead(&self) -> f64 {
        self.removal_area_um2 / self.original_area_um2 - 1.0
    }

    /// Area saving of the removal algorithm versus resource ordering,
    /// counted (as the paper does) on the VC-buffer area the two schemes add.
    pub fn area_saving_vs_ordering(&self) -> f64 {
        let removal_added = self.removal_area_um2 - self.original_area_um2;
        let ordering_added = self.ordering_area_um2 - self.original_area_um2;
        if ordering_added <= 0.0 {
            0.0
        } else {
            1.0 - removal_added / ordering_added
        }
    }

    /// VC saving of the removal algorithm versus resource ordering.
    pub fn vc_saving_vs_ordering(&self) -> f64 {
        if self.ordering_vcs == 0 {
            0.0
        } else {
            1.0 - self.removal_vcs as f64 / self.ordering_vcs as f64
        }
    }

    /// Power saving of the removal algorithm versus resource ordering.
    pub fn power_saving_vs_ordering(&self) -> f64 {
        1.0 - self.removal_power_mw / self.ordering_power_mw
    }
}

/// Regenerates one bar group of Figure 10 (default: 14-switch topologies, as
/// in the paper).
pub fn power_comparison(benchmark: Benchmark, switch_count: usize) -> PowerComparison {
    power_comparisons([benchmark], switch_count, 0, |_| {})
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("switch count {switch_count} infeasible for {benchmark}"))
}

/// Regenerates a whole Figure 10 bar row in one parallel sweep: every
/// benchmark at the same switch count, sharded across `threads` worker
/// threads (`0` auto-sizes), with per-point progress streamed to
/// `observer`.  Infeasible benchmarks are skipped, so the result can be
/// shorter than the input.
pub fn power_comparisons(
    benchmarks: impl IntoIterator<Item = Benchmark>,
    switch_count: usize,
    threads: usize,
    observer: impl FnMut(SweepProgress<'_>),
) -> Vec<PowerComparison> {
    let removal_strategy = CycleBreaking::default();
    let ordering_strategy = ResourceOrdering;
    let points = FlowSweep::new()
        .benchmarks(benchmarks)
        .switch_counts([switch_count])
        .worker_threads(threads)
        .run_streaming(&[&removal_strategy, &ordering_strategy], observer)
        .unwrap_or_else(|e| panic!("flow failed at {switch_count} switches: {e}"));
    points
        .iter()
        .map(|p| comparison_from_point(p, removal_strategy.name(), ordering_strategy.name()))
        .collect()
}

/// Extracts the Figure 10 numbers from one power-enabled sweep point.
fn comparison_from_point(
    point: &SweepPoint,
    removal_name: &str,
    ordering_name: &str,
) -> PowerComparison {
    let removal = point.outcome(removal_name).expect("strategy ran");
    let ordering = point.outcome(ordering_name).expect("strategy ran");
    let enabled = "power estimates are on by default";
    PowerComparison {
        benchmark: point.benchmark.name().to_string(),
        original_power_mw: point.original_power_mw.expect(enabled),
        removal_power_mw: removal.power_mw.expect(enabled),
        ordering_power_mw: ordering.power_mw.expect(enabled),
        original_area_um2: point.original_area_um2.expect(enabled),
        removal_area_um2: removal.area_um2.expect(enabled),
        ordering_area_um2: ordering.area_um2.expect(enabled),
        removal_vcs: removal.added_vcs,
        ordering_vcs: ordering.added_vcs,
    }
}

/// Aggregate savings over a set of comparisons — the numbers quoted in the
/// paper's abstract and Section 5 prose (88 % fewer VCs, 66 % less area,
/// 8.6 % less power, < 5 % overhead versus no removal).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Mean VC saving of the removal algorithm versus resource ordering.
    pub mean_vc_saving: f64,
    /// Mean added-area saving versus resource ordering.
    pub mean_area_saving: f64,
    /// Mean power saving versus resource ordering.
    pub mean_power_saving: f64,
    /// Mean power overhead versus the unmodified (deadlock-prone) design.
    pub mean_power_overhead: f64,
    /// Mean area overhead versus the unmodified design.
    pub mean_area_overhead: f64,
}

/// Aggregates per-benchmark comparisons into the headline percentages.
pub fn summary(comparisons: &[PowerComparison]) -> Summary {
    let n = comparisons.len().max(1) as f64;
    // Benchmarks where neither scheme adds anything are excluded from the
    // saving averages (0/0), matching how the paper reports averages over
    // benchmarks that need deadlock handling.
    let saving_set: Vec<&PowerComparison> =
        comparisons.iter().filter(|c| c.ordering_vcs > 0).collect();
    let saving_n = saving_set.len().max(1) as f64;
    Summary {
        mean_vc_saving: saving_set
            .iter()
            .map(|c| c.vc_saving_vs_ordering())
            .sum::<f64>()
            / saving_n,
        mean_area_saving: saving_set
            .iter()
            .map(|c| c.area_saving_vs_ordering())
            .sum::<f64>()
            / saving_n,
        mean_power_saving: saving_set
            .iter()
            .map(|c| c.power_saving_vs_ordering())
            .sum::<f64>()
            / saving_n,
        mean_power_overhead: comparisons
            .iter()
            .map(|c| c.removal_power_overhead())
            .sum::<f64>()
            / n,
        mean_area_overhead: comparisons
            .iter()
            .map(|c| c.removal_area_overhead())
            .sum::<f64>()
            / n,
    }
}

/// Outcome of the dynamic (simulation) validation of one design.
#[derive(Debug, Clone, PartialEq)]
pub struct SimValidation {
    /// Benchmark name.
    pub benchmark: String,
    /// Whether the CDG of the original design is cyclic.
    pub original_cdg_cyclic: bool,
    /// Whether the original design deadlocked in simulation.
    pub original_deadlocked: bool,
    /// Whether the removal-fixed design deadlocked in simulation (must be
    /// `false`).
    pub fixed_deadlocked: bool,
    /// Packets delivered by the fixed design.
    pub fixed_delivered: usize,
    /// Mean packet latency of the fixed design in cycles.
    pub fixed_mean_latency: f64,
    /// 95th-percentile packet latency of the fixed design in cycles.
    pub fixed_p95_latency: u64,
}

/// Simulates a benchmark design before and after deadlock removal under a
/// high-pressure workload (the experiment behind the `sim_validation`
/// binary; the paper argues this analytically, we also check it dynamically).
///
/// Both runs use the VC-fidelity engine with the [`AssignedVc`] policy and
/// exact wait-for-graph detection, so the "after" run genuinely rides the
/// VCs the removal algorithm assigned (per-(link × VC) buffers, credit
/// backpressure), not just the physical links.
pub fn simulate_before_after(benchmark: Benchmark, switch_count: usize) -> SimValidation {
    let routed = routed_benchmark(benchmark, switch_count);
    let sim_config = VcSimConfig {
        buffer_depth: 1,
        max_cycles: 400_000,
        ..VcSimConfig::default()
    };
    let traffic = TrafficConfig {
        packets_per_flow: 6,
        packet_length: 8,
        mean_gap_cycles: 0,
        seed: 7,
        ..TrafficConfig::default()
    };

    let original_cdg_cyclic = !routed.is_deadlock_free();
    let original = routed.simulate_vc(&AssignedVc, &sim_config, &traffic);

    let fixed = routed
        .resolve_deadlocks(&CycleBreaking::default())
        .expect("removal succeeds on the benchmark suite")
        .simulate_vc(&AssignedVc, &sim_config, &traffic)
        .expect("repaired design is consistent");

    SimValidation {
        benchmark: benchmark.name().to_string(),
        original_cdg_cyclic,
        original_deadlocked: original.deadlocked,
        fixed_deadlocked: fixed.outcome().deadlocked,
        fixed_delivered: fixed.outcome().stats.delivered_packets,
        fixed_mean_latency: fixed.outcome().stats.mean_latency(),
        fixed_p95_latency: fixed.outcome().stats.p95_latency(),
    }
}

/// [`simulate_before_after`] for a whole benchmark list, sharded across
/// `threads` scoped worker threads (`0` auto-sizes to the machine); results
/// come back in input order.  This is what gives the `sim_validation`
/// binary its `--threads` knob — the per-benchmark simulations are fully
/// independent, like the sweep grid points.
pub fn simulate_before_after_all(
    benchmarks: &[Benchmark],
    switch_count: usize,
    threads: usize,
) -> Vec<SimValidation> {
    noc_flow::executor::parallel_map_ordered(benchmarks, threads, |&benchmark| {
        simulate_before_after(benchmark, switch_count)
    })
}

/// The names of the four deadlock strategies of the comparison matrix,
/// derived from `StrategyKind::ALL` so the two can never drift apart.
pub const STRATEGY_MATRIX_NAMES: [&str; 4] = [
    noc_flow::StrategyKind::ALL[0].name(),
    noc_flow::StrategyKind::ALL[1].name(),
    noc_flow::StrategyKind::ALL[2].name(),
    noc_flow::StrategyKind::ALL[3].name(),
];

/// Sweeps **all four** deadlock strategies — the paper's cycle breaking and
/// resource ordering plus escape-channel avoidance and recovery-based
/// reconfiguration — over the Figure 8 (D26_media) and Figure 9 (D36_8)
/// benchmark grids, the data behind the `fig_strategy_matrix` binary.
///
/// Each grid point charges every strategy against the same routed design;
/// the executor shards the (point × strategy) tasks across `threads` worker
/// threads (`0` auto-sizes).  Progress streams to `observer` per completed
/// point, per figure grid; the returned points are the Figure 8 grid
/// followed by the Figure 9 grid, each in switch-count order.
pub fn strategy_matrix_sweep(
    threads: usize,
    mut observer: impl FnMut(SweepProgress<'_>),
) -> Vec<SweepPoint> {
    let cycle_breaking = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let escape = EscapeChannel::default();
    let recovery = RecoveryReconfig::default();
    let strategies: [&dyn DeadlockStrategy; 4] = [&cycle_breaking, &ordering, &escape, &recovery];

    let mut points = Vec::new();
    for (benchmark, counts) in [
        (Benchmark::D26Media, sweeps::FIG8_SWITCH_COUNTS),
        (Benchmark::D36x8, sweeps::FIG9_SWITCH_COUNTS),
    ] {
        let grid = FlowSweep::new()
            .benchmark(benchmark)
            .switch_counts(counts)
            .power_estimates(false)
            .certify(true)
            .worker_threads(threads)
            .run_streaming(&strategies, &mut observer)
            .unwrap_or_else(|e| panic!("strategy matrix failed for {benchmark}: {e}"));
        points.extend(grid);
    }
    points
}

/// The simulation-policy axis of the `fig_sim_strategies` experiment, in
/// sweep order: the deliberately unsafe single-VC baseline (on the
/// unrepaired design), the four deadlock strategies honouring their VC
/// assignments (escape channels twice — static and Duato-adaptive), and the
/// unrepaired design under the DBR-style dynamic drain.
pub const SIM_STRATEGY_POLICIES: [&str; 6] = [
    "unsafe-single-vc",
    "cycle-breaking",
    "resource-ordering",
    "escape-channel",
    "escape-channel-adaptive",
    "recovery-reconfig",
];

/// The injection-rate axis of the `fig_sim_strategies` experiment: mean
/// inter-arrival gaps in cycles, from saturation (0) to light load.
pub const SIM_INJECTION_GAPS: [u64; 3] = [0, 8, 32];

/// One simulated operating point: a policy at one injection rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRatePoint {
    /// Mean inter-arrival gap of the swept workload (0 = saturation).
    pub mean_gap_cycles: u64,
    /// Delivery / latency / throughput summary.
    pub stats: StrategySimStats,
    /// How the deadlock (if any) was established
    /// (`"wait-for-graph"` / `"idle-timeout"`).
    pub detected_by: Option<String>,
    /// DBR drain events executed (recovery policy only).
    pub recovery_events: usize,
    /// Packets drained across those events.
    pub packets_drained: usize,
    /// Flows permanently switched onto the recovery routing function.
    pub flows_reconfigured: usize,
}

impl SimRatePoint {
    fn from_outcome(mean_gap_cycles: u64, outcome: &VcSimOutcome) -> Self {
        SimRatePoint {
            mean_gap_cycles,
            stats: StrategySimStats::from_outcome(outcome),
            detected_by: outcome.detection.map(|e| e.kind.name().to_string()),
            recovery_events: outcome.drain.events,
            packets_drained: outcome.drain.packets_drained,
            flows_reconfigured: outcome.drain.flows_reconfigured,
        }
    }
}

/// The injection-rate series of one policy on one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPolicySeries {
    /// Policy name ([`SIM_STRATEGY_POLICIES`]).
    pub policy: String,
    /// One entry per swept gap, in [`SIM_INJECTION_GAPS`] order.
    pub rates: Vec<SimRatePoint>,
}

/// One grid point of the VC-aware simulation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSweepPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Switch count of the synthesized topology.
    pub switch_count: usize,
    /// Flows that actually enter the switch network.
    pub active_flows: usize,
    /// Whether the unrepaired design's CDG is cyclic — the precondition for
    /// the unsafe baseline to be able to deadlock at all.
    pub baseline_cdg_cyclic: bool,
    /// Flows inside cyclic CDG SCCs (the cycle-stress set; empty when
    /// acyclic).
    pub stress_flows: usize,
    /// Per-policy series, in [`SIM_STRATEGY_POLICIES`] order.
    pub series: Vec<SimPolicySeries>,
}

impl SimSweepPoint {
    /// The series of the given policy, if present.
    pub fn series(&self, policy: &str) -> Option<&SimPolicySeries> {
        self.series.iter().find(|s| s.policy == policy)
    }
}

/// Builds the workload of the VC-aware simulation sweep: the uniform
/// workload of `traffic` plus a *cycle-stress prefix* — `stress_packets`
/// packets of `stress_length` flits on every flow of `stress_flows`, all
/// created at cycle 0 — so the flows that can form a runtime deadlock
/// (the flows inside cyclic CDG SCCs, [`Cdg::cyclic_flows`]) actually press
/// on the cycle simultaneously.  A cyclic CDG is necessary but not
/// *sufficient* for a runtime deadlock; without the stress prefix most
/// benchmark workloads drain before the trap ever closes.
pub fn cycle_stress_workload(
    comm: &noc_topology::CommGraph,
    traffic: &TrafficConfig,
    stress_flows: &[FlowId],
    stress_packets: usize,
    stress_length: usize,
) -> Workload {
    let mut packets: Vec<Packet> = stress_flows
        .iter()
        .flat_map(|&flow| {
            (0..stress_packets).map(move |_| Packet {
                id: PacketId(0),
                flow,
                length: stress_length.max(1),
                created_at: 0,
            })
        })
        .collect();
    packets.extend(generate_workload(comm, traffic).packets);
    for (index, packet) in packets.iter_mut().enumerate() {
        packet.id = PacketId(index);
    }
    packets.sort_by_key(|p| (p.created_at, p.id.0));
    Workload { packets }
}

/// The engine configuration of the VC-aware simulation sweep: minimal
/// buffers (the configuration most prone to deadlock), exact wait-for-graph
/// detection.
fn sim_sweep_config() -> VcSimConfig {
    VcSimConfig {
        buffer_depth: 1,
        max_cycles: 600_000,
        ..VcSimConfig::default()
    }
}

/// Simulates every policy × injection rate of the `fig_sim_strategies`
/// experiment on one synthesized grid point.
///
/// All policies at a given rate run the *same workload* (uniform traffic
/// plus the cycle-stress prefix derived from the unrepaired design's CDG),
/// so the comparison is apples-to-apples: the unsafe baseline deadlocking
/// while every strategy delivers 100 % is a property of the VC handling,
/// not of the traffic.
pub fn sim_strategy_point(benchmark: Benchmark, switch_count: usize) -> SimSweepPoint {
    let routed = routed_benchmark(benchmark, switch_count);
    let comm = routed.comm();
    let cdg = Cdg::build(routed.topology(), routed.routes());
    let stress = cdg.cyclic_flows();

    // The repaired designs, one per VC-assigning strategy (the escape
    // design serves both the static and the Duato-adaptive policy).
    let broken = routed
        .resolve_deadlocks(&CycleBreaking::default())
        .expect("cycle breaking succeeds on the benchmark suite");
    let ordered = routed
        .resolve_deadlocks(&ResourceOrdering)
        .expect("resource ordering succeeds on the benchmark suite");
    let escaped = routed
        .resolve_deadlocks(&EscapeChannel::default())
        .expect("escape channels succeed on the benchmark suite");
    let recovery_routes = route_all_updown(
        routed.topology(),
        comm,
        routed.core_map(),
        SwitchId::from_index(0),
    )
    .expect("up*/down* recovery routes exist on the benchmark suite");

    let base_map = routed.vc_map();
    let broken_map = broken.vc_map();
    let ordered_map = ordered.vc_map();
    let escaped_map = escaped.vc_map();
    let config = sim_sweep_config();

    let mut series: Vec<SimPolicySeries> = SIM_STRATEGY_POLICIES
        .iter()
        .map(|&policy| SimPolicySeries {
            policy: policy.to_string(),
            rates: Vec::new(),
        })
        .collect();
    for gap in SIM_INJECTION_GAPS {
        let traffic = TrafficConfig {
            packets_per_flow: 4,
            packet_length: 8,
            mean_gap_cycles: gap,
            seed: 0xF1C5,
            ..TrafficConfig::default()
        };
        let workload = cycle_stress_workload(comm, &traffic, &stress, 4, 8);
        let outcomes = [
            VcSimulator::new(comm, routed.routes(), &base_map, &SingleVc, &config)
                .run_workload(&workload),
            VcSimulator::new(comm, broken.routes(), &broken_map, &AssignedVc, &config)
                .run_workload(&workload),
            VcSimulator::new(comm, ordered.routes(), &ordered_map, &AssignedVc, &config)
                .run_workload(&workload),
            VcSimulator::new(comm, escaped.routes(), &escaped_map, &AssignedVc, &config)
                .run_workload(&workload),
            VcSimulator::new(
                comm,
                escaped.routes(),
                &escaped_map,
                &AdaptiveEscape,
                &config,
            )
            .run_workload(&workload),
            VcSimulator::new(comm, routed.routes(), &base_map, &AssignedVc, &config)
                .with_recovery(recovery_routes.clone())
                .run_workload(&workload),
        ];
        for (entry, outcome) in series.iter_mut().zip(outcomes.iter()) {
            entry.rates.push(SimRatePoint::from_outcome(gap, outcome));
        }
    }
    SimSweepPoint {
        benchmark: benchmark.name().to_string(),
        switch_count,
        active_flows: routed.active_flow_count(),
        baseline_cdg_cyclic: !stress.is_empty(),
        stress_flows: stress.len(),
        series,
    }
}

/// The full `fig_sim_strategies` sweep: every feasible Figure 8 (D26_media)
/// and Figure 9 (D36_8) grid point, sharded across `threads` worker threads
/// via the existing executor (`0` auto-sizes); points come back in grid
/// order.
pub fn sim_strategy_sweep(threads: usize) -> Vec<SimSweepPoint> {
    let mut grid: Vec<(Benchmark, usize)> = Vec::new();
    for count in sweeps::FIG8_SWITCH_COUNTS {
        grid.push((Benchmark::D26Media, count));
    }
    for count in sweeps::FIG9_SWITCH_COUNTS {
        grid.push((Benchmark::D36x8, count));
    }
    noc_flow::executor::parallel_map_ordered(&grid, threads, |&(benchmark, switch_count)| {
        sim_strategy_point(benchmark, switch_count)
    })
}

/// The strategy axis of the `fig_faults` experiment, in sweep order: every
/// repaired design (one per deadlock-handling scheme) is pushed through the
/// *same* seeded link-failure storm under cycle-safe live reconfiguration,
/// so the survivability comparison isolates the VC handling from the fault
/// schedule.
pub const FAULT_STRATEGIES: [&str; 4] = [
    "cycle-breaking",
    "resource-ordering",
    "escape-channel",
    "recovery-reconfig",
];

/// Deterministic per-grid-point seed of the fault sweep, mixed from the
/// benchmark name and switch count so every point (and every strategy on
/// it) sees its own storm and workload jitter.
fn fault_point_seed(benchmark: Benchmark, switch_count: usize) -> u64 {
    benchmark
        .name()
        .bytes()
        .fold(switch_count as u64, |acc, byte| {
            acc.wrapping_mul(131).wrapping_add(u64::from(byte))
        })
}

/// The storm every `fig_faults` grid point runs: three link-pair failures
/// starting at cycle 150, spaced 250 cycles apart, no repairs, with the
/// partition-avoiding generator (best effort — points it cannot keep
/// connected are still swept and reported with `connected = false`).
pub fn fault_sweep_storm(benchmark: Benchmark, switch_count: usize) -> StormConfig {
    StormConfig {
        faults: 3,
        first_cycle: 150,
        spacing: 250,
        seed: 0xFA17 ^ fault_point_seed(benchmark, switch_count),
        repair_after: None,
        avoid_partition: true,
    }
}

/// The workload of the fault sweep: enough packets per flow, at a light
/// injection rate, that injection extends well past the last storm event
/// (cycle 650) — the sweep measures post-reconfiguration delivery, not just
/// the pre-fault prefix.
pub fn fault_sweep_traffic(benchmark: Benchmark, switch_count: usize) -> TrafficConfig {
    TrafficConfig {
        packets_per_flow: 24,
        packet_length: 4,
        mean_gap_cycles: 36,
        seed: 0xF1C5 ^ fault_point_seed(benchmark, switch_count),
        ..TrafficConfig::default()
    }
}

/// Resolves the routed design under every [`FAULT_STRATEGIES`] scheme, in
/// that order (shared by [`fault_strategy_point`] and the cross-strategy
/// fault-equivalence harness in `tests/`).
///
/// # Panics
///
/// Panics if a strategy fails, which does not happen on the bundled
/// benchmarks.
pub fn fault_strategy_designs(routed: &RoutedStage) -> Vec<DeadlockFreeStage> {
    let breaking = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let escape = EscapeChannel::default();
    let recovery = RecoveryReconfig::default();
    let all: [&dyn DeadlockStrategy; 4] = [&breaking, &ordering, &escape, &recovery];
    all.iter()
        .map(|&strategy| {
            routed
                .resolve_deadlocks(strategy)
                .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.name()))
        })
        .collect()
}

/// Runs one repaired design through a fault storm on the VC engine: the
/// assigned-VC policy, the sweep's minimal-buffer configuration, and the
/// live-reconfiguration seam armed with `plan`.
pub fn fault_run_outcome(
    fixed: &DeadlockFreeStage,
    plan: &FaultPlan,
    traffic: &TrafficConfig,
    config: &VcSimConfig,
) -> VcSimOutcome {
    let vc_map = fixed.vc_map();
    VcSimulator::new(fixed.comm(), fixed.routes(), &vc_map, &AssignedVc, config)
        .with_faults(fixed.topology(), fixed.core_map(), plan.clone())
        .run(traffic)
}

/// One strategy's run through the storm on one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStrategyRun {
    /// Strategy name ([`FAULT_STRATEGIES`]).
    pub strategy: String,
    /// Extra VCs the strategy had added before the storm.
    pub added_vcs: usize,
    /// Survivability summary of the fault-armed run.
    pub stats: FaultRunStats,
}

/// One grid point of the fault-storm sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Switch count of the synthesized topology.
    pub switch_count: usize,
    /// Flows that actually enter the switch network.
    pub active_flows: usize,
    /// Failure events the storm scheduled (repairs not counted).
    pub faults_injected: usize,
    /// Whether the storm's final failure state leaves every flow's
    /// endpoints connected (predicted by replaying the plan).
    pub connected: bool,
    /// Per-strategy runs, in [`FAULT_STRATEGIES`] order.
    pub runs: Vec<FaultStrategyRun>,
}

impl FaultSweepPoint {
    /// The run of the given strategy, if present.
    pub fn run(&self, strategy: &str) -> Option<&FaultStrategyRun> {
        self.runs.iter().find(|r| r.strategy == strategy)
    }
}

/// Simulates every [`FAULT_STRATEGIES`] design through the point's seeded
/// storm and asserts the protocol's hard guarantees in place: no epoch ever
/// commits cyclic, no run ends deadlocked, and on a storm that keeps the
/// fabric connected every strategy keeps delivering (no flow goes
/// unreachable and delivery is non-zero).
///
/// # Panics
///
/// Panics when a guarantee is violated — the `fig_faults` binary and the CI
/// artifact check both lean on these asserts.
pub fn fault_strategy_point(benchmark: Benchmark, switch_count: usize) -> FaultSweepPoint {
    let routed = routed_benchmark(benchmark, switch_count);
    let storm = fault_sweep_storm(benchmark, switch_count);
    let plan = FaultPlan::storm(routed.topology(), &storm);
    let faults_injected = plan
        .events()
        .iter()
        .filter(|e| matches!(e.kind, FaultKind::LinkDown(_) | FaultKind::SwitchDown(_)))
        .count();
    let down = plan.final_faults(routed.topology());
    let connected = routed
        .topology()
        .connectivity_after(&down)
        .disconnected_flows(routed.comm(), routed.core_map())
        .is_empty();
    let traffic = fault_sweep_traffic(benchmark, switch_count);
    let config = sim_sweep_config();

    let runs = fault_strategy_designs(&routed)
        .iter()
        .map(|fixed| {
            let outcome = fault_run_outcome(fixed, &plan, &traffic, &config);
            let stats = FaultRunStats::from_outcome(&outcome, faults_injected, connected);
            let label = format!("{benchmark}/{switch_count}/{}", fixed.resolution().strategy);
            assert_eq!(
                stats.cyclic_commits, 0,
                "{label}: an epoch committed a cyclic combined graph"
            );
            assert!(
                !stats.deadlocked,
                "{label}: deadlocked through the fault storm"
            );
            if connected {
                assert_eq!(
                    stats.unreachable_flows, 0,
                    "{label}: connected storm left flows unreachable"
                );
                assert!(
                    stats.delivered > 0,
                    "{label}: connected storm delivered nothing"
                );
            }
            FaultStrategyRun {
                strategy: fixed.resolution().strategy.clone(),
                added_vcs: fixed.resolution().added_vcs,
                stats,
            }
        })
        .collect();
    FaultSweepPoint {
        benchmark: benchmark.name().to_string(),
        switch_count,
        active_flows: routed.active_flow_count(),
        faults_injected,
        connected,
        runs,
    }
}

/// The (benchmark × switch-count) grid of the fault sweep: every feasible
/// Figure 8 (D26_media) and Figure 9 (D36_8) point.
pub fn fault_sweep_grid() -> Vec<(Benchmark, usize)> {
    let mut grid: Vec<(Benchmark, usize)> = Vec::new();
    for count in sweeps::FIG8_SWITCH_COUNTS {
        grid.push((Benchmark::D26Media, count));
    }
    for count in sweeps::FIG9_SWITCH_COUNTS {
        grid.push((Benchmark::D36x8, count));
    }
    grid
}

/// The full `fig_faults` sweep, sharded across `threads` worker threads via
/// the existing executor (`0` auto-sizes); points come back in grid order.
pub fn fault_strategy_sweep(threads: usize) -> Vec<FaultSweepPoint> {
    let grid = fault_sweep_grid();
    noc_flow::executor::parallel_map_ordered(&grid, threads, |&(benchmark, switch_count)| {
        fault_strategy_point(benchmark, switch_count)
    })
}

impl ToJson for FaultStrategyRun {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("strategy", &self.strategy)
            .field("added_vcs", &self.added_vcs)
            .field("stats", &self.stats)
            .finish();
    }
}

impl ToJson for FaultSweepPoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("switch_count", &self.switch_count)
            .field("active_flows", &self.active_flows)
            .field("faults_injected", &self.faults_injected)
            .field("connected", &self.connected)
            .field("runs", &self.runs)
            .finish();
    }
}

/// Synthesizes and routes a benchmark through the flow API (shared entry
/// point of the harness functions and the `cdg_incremental` timing binary).
///
/// # Panics
///
/// Panics if synthesis fails, which does not happen for feasible switch
/// counts of the bundled benchmarks.
pub fn routed_benchmark(benchmark: Benchmark, switch_count: usize) -> RoutedStage {
    DesignFlow::from_benchmark(benchmark)
        .synthesize(SynthesisConfig::with_switches(switch_count))
        .unwrap_or_else(|e| panic!("synthesis failed for {benchmark}/{switch_count}: {e}"))
        .route_default()
        .expect("synthesized designs carry default routes")
}

/// Runs the removal algorithm once on a copy of the design and returns its
/// report (used by the runtime Criterion bench and the ablation harness).
pub fn run_removal(design: &SynthesizedDesign, config: &RemovalConfig) -> RemovalReport {
    let (_, _, resolution) = CycleBreaking::with_config(config.clone())
        .resolve_cloned(&design.topology, &design.routes)
        .expect("removal succeeds on the benchmark suite");
    resolution.removal.expect("cycle breaking reports removal")
}

/// Number of seeded random designs the `fig_conservatism` artifact and the
/// three-way agreement harness sweep by default.
pub const DEFAULT_RANDOM_DESIGNS: usize = 200;

/// Builds the *long-worm* workload the certified verifier models: one
/// saturating packet per active flow, all created at cycle 0, each long
/// enough (`hops × buffer_depth + 1` flits) that a blocked worm's tail is
/// still at its source — the packet owns every channel of its claimed route
/// prefix, exactly the footprint semantics of
/// [`noc_deadlock::certify::certify_deadlock_free`].
pub fn long_worm_workload(routes: &RouteSet, buffer_depth: usize) -> Workload {
    let mut packets: Vec<Packet> = routes
        .iter()
        .filter(|(_, route)| !route.is_empty())
        .map(|(flow, route)| Packet {
            id: PacketId(0),
            flow,
            length: (route.hop_count() * buffer_depth.max(1) + 1).max(2),
            created_at: 0,
        })
        .collect();
    for (index, packet) in packets.iter_mut().enumerate() {
        packet.id = PacketId(index);
    }
    Workload { packets }
}

/// Builds the adversarial injection schedule derived from a
/// [`TrapWitness`]: long worms (as in [`long_worm_workload`]) on *exactly*
/// the witness flows, so the simulator presses on the statically found trap
/// and nothing else.
pub fn witness_replay_workload(
    routes: &RouteSet,
    witness: &TrapWitness,
    buffer_depth: usize,
) -> Workload {
    let mut packets: Vec<Packet> = witness
        .worms
        .iter()
        .filter_map(|worm| routes.route(worm.flow).map(|route| (worm.flow, route)))
        .filter(|(_, route)| !route.is_empty())
        .map(|(flow, route)| Packet {
            id: PacketId(0),
            flow,
            length: (route.hop_count() * buffer_depth.max(1) + 1).max(2),
            created_at: 0,
        })
        .collect();
    for (index, packet) in packets.iter_mut().enumerate() {
        packet.id = PacketId(index);
    }
    Workload { packets }
}

/// Generates a random small design — unidirectional ring, chorded ring or
/// 2-D mesh with one core per switch and random flows — routed with the
/// shortest-path router.  Deterministic per seed; rings and chorded rings
/// routinely produce cyclic CDGs (and genuine traps), meshes are mostly
/// acyclic, so the population exercises every certified verdict class.
///
/// # Panics
///
/// Panics if validation or routing fails, which the generator construction
/// rules out (every topology is strongly connected).
pub fn random_routed_design(seed: u64) -> RoutedStage {
    let mut rng = SmallRng::seed_from_u64(seed);
    let generated = match rng.gen_range(0usize..3) {
        0 => generators::unidirectional_ring(rng.gen_range(4usize..10), 1.0),
        1 => {
            // Chorded ring: a unidirectional ring plus 1-2 random shortcut
            // links, the classic adaptive-routing deadlock playground.
            let mut generated = generators::unidirectional_ring(rng.gen_range(5usize..11), 1.0);
            let n = generated.switches.len();
            for _ in 0..rng.gen_range(1usize..3) {
                let from = rng.gen_range(0usize..n);
                let mut to = rng.gen_range(0usize..n);
                if to == from {
                    to = (to + 1) % n;
                }
                generated
                    .topology
                    .add_link(generated.switches[from], generated.switches[to], 1.0);
            }
            generated
        }
        _ => generators::mesh2d(rng.gen_range(2usize..4), rng.gen_range(2usize..5), 1.0),
    };

    let n = generated.switches.len();
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("core{i}"))).collect();
    let flow_count = rng.gen_range(n..2 * n + 1);
    for _ in 0..flow_count {
        let src = rng.gen_range(0usize..n);
        let mut dst = rng.gen_range(0usize..n);
        if dst == src {
            dst = (dst + 1) % n;
        }
        comm.add_flow(cores[src], cores[dst], 0.05);
    }
    let mut core_map = CoreMap::new(n);
    for (i, &core) in cores.iter().enumerate() {
        core_map
            .assign(core, generated.switches[i])
            .expect("generated switches exist");
    }

    DesignFlow::from_comm(comm)
        .labelled(format!("random-{seed}"))
        .with_design(generated.topology, core_map)
        .unwrap_or_else(|e| panic!("random design {seed} invalid: {e}"))
        .route(&ShortestPathRouter::default())
        .unwrap_or_else(|e| panic!("random design {seed} unroutable: {e}"))
}

/// One routed design run through all three verifiers: the conservative CDG
/// check, the certified trap search, and the exact runtime wait-for-graph
/// detector under the long-worm workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservatismPoint {
    /// Benchmark name (`random` for the seeded random population).
    pub benchmark: String,
    /// Switch count of the design.
    pub switch_count: usize,
    /// Flows that actually traverse the switch network.
    pub active_flows: usize,
    /// Verdict of the conservative check: `true` iff the CDG has a cycle.
    pub cdg_cyclic: bool,
    /// Certified verdict name (`certified-free` / `certified-deadlockable`
    /// / `unknown`).
    pub verdict: String,
    /// Worms in the deadlock witness (0 unless certified-deadlockable).
    pub witness_worms: usize,
    /// Worm placements the trap search tried.
    pub search_steps: usize,
    /// VCs Algorithm 1 spends making this design CDG-acyclic — on a
    /// cyclic-but-certified-free point these are the cost of conservatism.
    pub removal_vcs: usize,
    /// The runtime verdict: did the long-worm simulation deadlock?
    pub runtime_deadlocked: bool,
    /// `true` iff the exact wait-for-graph detector (not the idle-timeout
    /// fallback) established the runtime deadlock.
    pub wait_for_graph_fired: bool,
    /// `true` iff a witness-derived replay workload was simulated.
    pub witness_attempted: bool,
    /// `true` iff the replay realized the deadlock via the wait-for-graph
    /// detector (best-effort: FIFO scheduling can drain some true traps).
    pub witness_realized: bool,
}

/// The engine configuration of the conservatism harness: minimal buffers
/// and exact detection, like [`sim_sweep_config`], but with a tighter cycle
/// budget — long-worm workloads either trap almost immediately or drain.
fn conservatism_sim_config() -> VcSimConfig {
    VcSimConfig {
        buffer_depth: 1,
        max_cycles: 200_000,
        ..VcSimConfig::default()
    }
}

fn fired_wait_for_graph(outcome: &VcSimOutcome) -> bool {
    matches!(outcome.detection, Some(e) if matches!(e.kind, DetectionKind::WaitForGraph))
}

/// Runs the three verifiers on one routed design.  Shared by
/// [`conservatism_sweep`] (the `fig_conservatism` artifact) and the
/// three-way agreement test harness, so the artifact invariants and the
/// test assertions are computed by the same code path.
pub fn conservatism_point_for(
    routed: &RoutedStage,
    benchmark: &str,
    switch_count: usize,
) -> ConservatismPoint {
    let report = routed.certify();
    let removal_vcs = routed
        .resolve_deadlocks(&CycleBreaking::default())
        .map(|fixed| fixed.resolution().added_vcs)
        .unwrap_or(0);

    let config = conservatism_sim_config();
    let vc_map = routed.vc_map();
    let workload = long_worm_workload(routed.routes(), config.buffer_depth);
    let outcome = VcSimulator::new(
        routed.comm(),
        routed.routes(),
        &vc_map,
        &AssignedVc,
        &config,
    )
    .run_workload(&workload);

    let (witness_attempted, witness_realized) = match report.witness() {
        Some(witness) => {
            let replay = witness_replay_workload(routed.routes(), witness, config.buffer_depth);
            let replayed = VcSimulator::new(
                routed.comm(),
                routed.routes(),
                &vc_map,
                &AssignedVc,
                &config,
            )
            .run_workload(&replay);
            (true, fired_wait_for_graph(&replayed))
        }
        None => (false, false),
    };

    ConservatismPoint {
        benchmark: benchmark.to_string(),
        switch_count,
        active_flows: routed.active_flow_count(),
        cdg_cyclic: report.cyclic_cdg,
        verdict: report.verdict.name().to_string(),
        witness_worms: report.witness().map(|w| w.worms.len()).unwrap_or(0),
        search_steps: report.search_steps,
        removal_vcs,
        runtime_deadlocked: outcome.deadlocked,
        wait_for_graph_fired: fired_wait_for_graph(&outcome),
        witness_attempted,
        witness_realized,
    }
}

/// Per-benchmark aggregate of the conservatism sweep: how often the
/// conservative CDG check cries wolf, and what the false alarms cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservatismBenchmark {
    /// Benchmark (or `random`) the points belong to.
    pub benchmark: String,
    /// Points with a cyclic CDG (the conservative check says "unsafe").
    pub cyclic_points: usize,
    /// Cyclic points where the trap search found a verified witness.
    pub certified_deadlockable: usize,
    /// The conservatism gap: cyclic points certified deadlock-free — the
    /// conservative check would repair them for nothing.
    pub certified_free_cyclic: usize,
    /// Cyclic points where the bounded search was inconclusive.
    pub unknown: usize,
    /// VCs Algorithm 1 burns on the certified-free cyclic points.
    pub gap_vcs: usize,
    /// Witness replays attempted / realized at runtime (best-effort).
    pub witness_attempts: usize,
    /// Replays where the wait-for-graph detector fired on the witness flows.
    pub witness_realized: usize,
    /// Every point of the group, in sweep order.
    pub points: Vec<ConservatismPoint>,
}

impl ConservatismBenchmark {
    /// Aggregates a group of points under one benchmark label.
    pub fn from_points(benchmark: &str, points: Vec<ConservatismPoint>) -> Self {
        let cyclic: Vec<_> = points.iter().filter(|p| p.cdg_cyclic).collect();
        ConservatismBenchmark {
            benchmark: benchmark.to_string(),
            cyclic_points: cyclic.len(),
            certified_deadlockable: cyclic
                .iter()
                .filter(|p| p.verdict == "certified-deadlockable")
                .count(),
            certified_free_cyclic: cyclic
                .iter()
                .filter(|p| p.verdict == "certified-free")
                .count(),
            unknown: cyclic.iter().filter(|p| p.verdict == "unknown").count(),
            gap_vcs: cyclic
                .iter()
                .filter(|p| p.verdict == "certified-free")
                .map(|p| p.removal_vcs)
                .sum(),
            witness_attempts: points.iter().filter(|p| p.witness_attempted).count(),
            witness_realized: points.iter().filter(|p| p.witness_realized).count(),
            points,
        }
    }
}

/// The full `fig_conservatism` report: one group per benchmark sweep plus
/// the seeded random population.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservatismReport {
    /// Aggregated groups (`D26_media`, `D36_8`, `random`).
    pub benchmarks: Vec<ConservatismBenchmark>,
}

/// The full conservatism sweep behind the `fig_conservatism` artifact:
/// every feasible Figure 8/9 grid point plus `random_designs` seeded random
/// designs (seeds `0..random_designs`), sharded across `threads` workers.
pub fn conservatism_sweep(threads: usize, random_designs: usize) -> ConservatismReport {
    let mut grid: Vec<(Benchmark, usize)> = Vec::new();
    for count in sweeps::FIG8_SWITCH_COUNTS {
        grid.push((Benchmark::D26Media, count));
    }
    for count in sweeps::FIG9_SWITCH_COUNTS {
        grid.push((Benchmark::D36x8, count));
    }
    let bench_points =
        noc_flow::executor::parallel_map_ordered(&grid, threads, |&(benchmark, switch_count)| {
            let routed = routed_benchmark(benchmark, switch_count);
            conservatism_point_for(&routed, benchmark.name(), switch_count)
        });
    let (d26_points, d36_points): (Vec<_>, Vec<_>) = bench_points
        .into_iter()
        .partition(|p| p.benchmark == Benchmark::D26Media.name());

    let seeds: Vec<u64> = (0..random_designs as u64).collect();
    let random_points = noc_flow::executor::parallel_map_ordered(&seeds, threads, |&seed| {
        let routed = random_routed_design(seed);
        let switch_count = routed.topology().switch_count();
        conservatism_point_for(&routed, "random", switch_count)
    });

    ConservatismReport {
        benchmarks: vec![
            ConservatismBenchmark::from_points(Benchmark::D26Media.name(), d26_points),
            ConservatismBenchmark::from_points(Benchmark::D36x8.name(), d36_points),
            ConservatismBenchmark::from_points("random", random_points),
        ],
    }
}

impl ToJson for VcSweepPoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("switch_count", &self.switch_count)
            .field("resource_ordering_vcs", &self.resource_ordering_vcs)
            .field("deadlock_removal_vcs", &self.deadlock_removal_vcs)
            .field("cycles_broken", &self.cycles_broken)
            .finish();
    }
}

impl ToJson for PowerComparison {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("original_power_mw", &self.original_power_mw)
            .field("removal_power_mw", &self.removal_power_mw)
            .field("ordering_power_mw", &self.ordering_power_mw)
            .field("original_area_um2", &self.original_area_um2)
            .field("removal_area_um2", &self.removal_area_um2)
            .field("ordering_area_um2", &self.ordering_area_um2)
            .field("removal_vcs", &self.removal_vcs)
            .field("ordering_vcs", &self.ordering_vcs)
            .field(
                "normalised_ordering_power",
                &self.normalised_ordering_power(),
            )
            .finish();
    }
}

impl ToJson for Summary {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("mean_vc_saving", &self.mean_vc_saving)
            .field("mean_area_saving", &self.mean_area_saving)
            .field("mean_power_saving", &self.mean_power_saving)
            .field("mean_power_overhead", &self.mean_power_overhead)
            .field("mean_area_overhead", &self.mean_area_overhead)
            .finish();
    }
}

impl ToJson for SimValidation {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("original_cdg_cyclic", &self.original_cdg_cyclic)
            .field("original_deadlocked", &self.original_deadlocked)
            .field("fixed_deadlocked", &self.fixed_deadlocked)
            .field("fixed_delivered", &self.fixed_delivered)
            .field("fixed_mean_latency", &self.fixed_mean_latency)
            .field("fixed_p95_latency", &self.fixed_p95_latency)
            .finish();
    }
}

impl ToJson for SimRatePoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("mean_gap_cycles", &self.mean_gap_cycles)
            .field("stats", &self.stats)
            .field("detected_by", &self.detected_by)
            .field("recovery_events", &self.recovery_events)
            .field("packets_drained", &self.packets_drained)
            .field("flows_reconfigured", &self.flows_reconfigured)
            .finish();
    }
}

impl ToJson for SimPolicySeries {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("policy", &self.policy)
            .field("rates", &self.rates)
            .finish();
    }
}

impl ToJson for SimSweepPoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("switch_count", &self.switch_count)
            .field("active_flows", &self.active_flows)
            .field("baseline_cdg_cyclic", &self.baseline_cdg_cyclic)
            .field("stress_flows", &self.stress_flows)
            .field("series", &self.series)
            .finish();
    }
}

impl ToJson for ConservatismPoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("switch_count", &self.switch_count)
            .field("active_flows", &self.active_flows)
            .field("cdg_cyclic", &self.cdg_cyclic)
            .field("verdict", &self.verdict)
            .field("witness_worms", &self.witness_worms)
            .field("search_steps", &self.search_steps)
            .field("removal_vcs", &self.removal_vcs)
            .field("runtime_deadlocked", &self.runtime_deadlocked)
            .field("wait_for_graph_fired", &self.wait_for_graph_fired)
            .field("witness_attempted", &self.witness_attempted)
            .field("witness_realized", &self.witness_realized)
            .finish();
    }
}

impl ToJson for ConservatismBenchmark {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmark", &self.benchmark)
            .field("cyclic_points", &self.cyclic_points)
            .field("certified_deadlockable", &self.certified_deadlockable)
            .field("certified_free_cyclic", &self.certified_free_cyclic)
            .field("unknown", &self.unknown)
            .field("gap_vcs", &self.gap_vcs)
            .field("witness_attempts", &self.witness_attempts)
            .field("witness_realized", &self.witness_realized)
            .field("points", &self.points)
            .finish();
    }
}

impl ToJson for ConservatismReport {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("benchmarks", &self.benchmarks)
            .finish();
    }
}

// ---------------------------------------------------------------------------
// Scaling sweep (`fig_scale`): synthetic topology families at 10²–10⁴
// switches, timing the incremental-SCC cycle search against the full-Tarjan
// reference and charting per-strategy VC cost on the smaller points.
// ---------------------------------------------------------------------------

/// One synthetic topology of the scaling grid: a generator family at a
/// concrete size.  The grid spans regular 2-D/3-D meshes and tori plus the
/// fat-tree and dragonfly families from [`noc_topology::generators`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTopology {
    /// 2-D mesh of `rows × cols` switches.
    Mesh2d {
        /// Mesh rows.
        rows: usize,
        /// Mesh columns.
        cols: usize,
    },
    /// 2-D torus of `rows × cols` switches (wraparound links make the
    /// shortest-path routes deadlock-prone — the interesting case).
    Torus2d {
        /// Torus rows.
        rows: usize,
        /// Torus columns.
        cols: usize,
    },
    /// 3-D mesh of `dx × dy × dz` switches.
    Mesh3d {
        /// Extent along x.
        dx: usize,
        /// Extent along y.
        dy: usize,
        /// Extent along z.
        dz: usize,
    },
    /// 3-D torus of `dx × dy × dz` switches.
    Torus3d {
        /// Extent along x.
        dx: usize,
        /// Extent along y.
        dy: usize,
        /// Extent along z.
        dz: usize,
    },
    /// Complete `arity`-ary fat tree with `levels` levels.
    FatTree {
        /// Tree levels (root inclusive).
        levels: usize,
        /// Children per switch.
        arity: usize,
    },
    /// Dragonfly of `groups` all-to-all groups of `routers` switches each.
    Dragonfly {
        /// Number of groups.
        groups: usize,
        /// Routers per group.
        routers: usize,
        /// Global ports per router.
        global_ports: usize,
    },
}

impl ScaleTopology {
    /// Generator family name used in tables and the JSON artifact.
    pub fn family(&self) -> &'static str {
        match self {
            ScaleTopology::Mesh2d { .. } => "mesh2d",
            ScaleTopology::Torus2d { .. } => "torus2d",
            ScaleTopology::Mesh3d { .. } => "mesh3d",
            ScaleTopology::Torus3d { .. } => "torus3d",
            ScaleTopology::FatTree { .. } => "fat-tree",
            ScaleTopology::Dragonfly { .. } => "dragonfly",
        }
    }

    /// Switch count of the generated topology (closed form, no generation).
    pub fn switch_count(&self) -> usize {
        match *self {
            ScaleTopology::Mesh2d { rows, cols } | ScaleTopology::Torus2d { rows, cols } => {
                rows * cols
            }
            ScaleTopology::Mesh3d { dx, dy, dz } | ScaleTopology::Torus3d { dx, dy, dz } => {
                dx * dy * dz
            }
            ScaleTopology::FatTree { levels, arity } => {
                (arity.pow(levels as u32) - 1) / (arity - 1)
            }
            ScaleTopology::Dragonfly {
                groups, routers, ..
            } => groups * routers,
        }
    }

    /// Generates the topology.
    pub fn generate(&self) -> generators::Generated {
        match *self {
            ScaleTopology::Mesh2d { rows, cols } => generators::mesh2d(rows, cols, 1.0),
            ScaleTopology::Torus2d { rows, cols } => generators::torus2d(rows, cols, 1.0),
            ScaleTopology::Mesh3d { dx, dy, dz } => generators::mesh3d(dx, dy, dz, 1.0),
            ScaleTopology::Torus3d { dx, dy, dz } => generators::torus3d(dx, dy, dz, 1.0),
            ScaleTopology::FatTree { levels, arity } => generators::fat_tree(levels, arity, 1.0),
            ScaleTopology::Dragonfly {
                groups,
                routers,
                global_ports,
            } => generators::dragonfly(groups, routers, global_ports, 1.0),
        }
    }
}

/// The default scaling grid, in ascending switch-count order: every family
/// at a small and/or ~1k-switch point, tori (whose wraparound shortest-path
/// routes are the cyclic stress case — removal cost grows superlinearly
/// with the cyclic region) up to ~2k switches, and meshes up to the
/// 10⁴-switch headline point.
pub const SCALE_GRID: [ScaleTopology; 11] = [
    ScaleTopology::Mesh2d { rows: 16, cols: 16 },
    ScaleTopology::Torus2d { rows: 16, cols: 16 },
    ScaleTopology::Dragonfly {
        groups: 17,
        routers: 16,
        global_ports: 1,
    },
    ScaleTopology::FatTree {
        levels: 5,
        arity: 4,
    },
    ScaleTopology::Torus3d {
        dx: 8,
        dy: 8,
        dz: 8,
    },
    ScaleTopology::Mesh3d {
        dx: 10,
        dy: 10,
        dz: 10,
    },
    ScaleTopology::Mesh2d { rows: 32, cols: 32 },
    ScaleTopology::Torus2d { rows: 32, cols: 32 },
    ScaleTopology::Torus2d { rows: 45, cols: 45 },
    ScaleTopology::Mesh2d { rows: 64, cols: 64 },
    ScaleTopology::Mesh2d {
        rows: 100,
        cols: 100,
    },
];

/// Seed of the synthetic uniform-random workloads of the scaling grid.
pub const SCALE_SEED: u64 = 0xD47E_2010;

/// Timing runs per SCC mode per grid point; the best (minimum) is reported.
pub const SCALE_RUNS: usize = 2;

/// Largest switch count on which the four-strategy comparison runs; beyond
/// it only the two SCC modes of cycle breaking are timed (the escape and
/// recovery baselines reroute flow-by-flow and would dominate the sweep's
/// wall time without adding information about the cycle search).
pub const SCALE_STRATEGY_SWITCH_CAP: usize = 1100;

/// A generated, routed scaling design ready for deadlock removal.
#[derive(Debug, Clone)]
pub struct ScaleDesign {
    /// The generated topology.
    pub topology: Topology,
    /// Shortest-path routes of the synthetic workload (deadlock-oblivious,
    /// so tori and irregular families produce cyclic CDGs).
    pub routes: RouteSet,
    /// Number of flows in the workload.
    pub flows: usize,
}

/// Builds the routed design of one scaling point: the generated topology,
/// one core per switch, one uniform-random flow per core (seeded with
/// [`SCALE_SEED`]), routed with the deadlock-oblivious shortest-path router.
///
/// # Panics
///
/// Panics if routing fails, which the generators rule out (every family is
/// strongly connected).
pub fn scale_design(spec: ScaleTopology) -> ScaleDesign {
    let generated = spec.generate();
    let workload = generators::uniform_traffic(&generated, 1, SCALE_SEED, 1.0);
    let routes = route_all_shortest(&generated.topology, &workload.comm, &workload.map)
        .expect("generated scaling topologies are strongly connected");
    ScaleDesign {
        topology: generated.topology,
        routes,
        flows: workload.comm.flow_count(),
    }
}

/// One strategy's outcome on a scaling point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleStrategyOutcome {
    /// Strategy name (as reported by [`DeadlockStrategy::name`]).
    pub strategy: String,
    /// Extra VCs the strategy added.
    pub added_vcs: usize,
    /// CDG cycles broken (zero for the non-breaking strategies).
    pub cycles_broken: usize,
    /// Wall time of one resolution run, in milliseconds.
    pub time_ms: f64,
}

/// One point of the scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Generator family name.
    pub family: &'static str,
    /// Switch count of the generated topology.
    pub switches: usize,
    /// Link count of the generated topology.
    pub links: usize,
    /// Channel count of the input design (one VC per link before repair).
    pub channels: usize,
    /// Flow count of the synthetic workload.
    pub flows: usize,
    /// Cycles the removal algorithm broke.
    pub cycles_broken: usize,
    /// Extra VCs the removal algorithm added.
    pub added_vcs: usize,
    /// Best-of-[`SCALE_RUNS`] removal time under the incremental SCC
    /// partition, in milliseconds (wall time of
    /// [`incremental_scc_phases`](Self::incremental_scc_phases)).
    pub incremental_scc_ms: f64,
    /// Best-of-[`SCALE_RUNS`] removal time under full Tarjan per
    /// verification scan, in milliseconds (wall time of
    /// [`full_tarjan_phases`](Self::full_tarjan_phases)).
    pub full_tarjan_ms: f64,
    /// Telemetry-attributed phase breakdown of the best incremental-SCC
    /// run.
    pub incremental_scc_phases: RemovalTiming,
    /// Telemetry-attributed phase breakdown of the best full-Tarjan run.
    pub full_tarjan_phases: RemovalTiming,
    /// Four-strategy comparison rows (empty above
    /// [`SCALE_STRATEGY_SWITCH_CAP`]).
    pub strategies: Vec<ScaleStrategyOutcome>,
}

impl ScalePoint {
    /// Full-Tarjan time over incremental-SCC time (>1 means the
    /// incremental partition wins).
    pub fn speedup(&self) -> f64 {
        if self.incremental_scc_ms > 0.0 {
            self.full_tarjan_ms / self.incremental_scc_ms
        } else {
            1.0
        }
    }
}

/// The full scaling sweep: per-point rows plus aggregate totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleArtifact {
    /// One row per [`SCALE_GRID`] entry, in grid order.
    pub points: Vec<ScalePoint>,
    /// Sum of the incremental-SCC times, in milliseconds.
    pub total_incremental_ms: f64,
    /// Sum of the full-Tarjan times, in milliseconds.
    pub total_full_tarjan_ms: f64,
}

impl ScaleArtifact {
    /// Aggregate full-Tarjan over incremental-SCC time ratio.
    pub fn overall_speedup(&self) -> f64 {
        if self.total_incremental_ms > 0.0 {
            self.total_full_tarjan_ms / self.total_incremental_ms
        } else {
            1.0
        }
    }
}

/// Phase breakdown of one `remove_deadlocks` call, attributed from the
/// telemetry spans the removal loop emits: CDG (re)builds, cycle search
/// (net of the SCC maintenance nested inside it), and SCC maintenance
/// (incremental recomputes or the reference full Tarjan passes).  The
/// timing binaries report these instead of ad-hoc stopwatch fields so the
/// CI timing guards read numbers that are *attributed* to a phase, not a
/// lump sum.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RemovalTiming {
    /// Wall time of the whole call (duration of the wrapper span), in
    /// milliseconds.
    pub wall_ms: f64,
    /// Time inside `Cdg::build`, in milliseconds.
    pub build_ms: f64,
    /// Time inside cycle searches excluding nested SCC work, in
    /// milliseconds.
    pub search_ms: f64,
    /// Time inside SCC maintenance, in milliseconds.
    pub scc_ms: f64,
}

impl RemovalTiming {
    /// Wall time the three phases do not cover (cost tables, channel
    /// duplication, re-routing, delta application), in milliseconds.
    pub fn other_ms(&self) -> f64 {
        (self.wall_ms - self.build_ms - self.search_ms - self.scc_ms).max(0.0)
    }
}

impl ToJson for RemovalTiming {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("wall_ms", &self.wall_ms)
            .field("build_ms", &self.build_ms)
            .field("search_ms", &self.search_ms)
            .field("scc_ms", &self.scc_ms)
            .field("other_ms", &self.other_ms())
            .finish();
    }
}

/// Runs `f` (one removal call) under the process-wide telemetry recorder —
/// installing it if no `--trace` session already did — and attributes its
/// wall time into phases from the spans it emitted.
pub fn attributed_removal_run<T>(f: impl FnOnce() -> T) -> (RemovalTiming, T) {
    let recorder = noc_telemetry::install_recorder();
    let span = noc_telemetry::span("timing", "removal_run");
    let enter = span.enter_seq().expect("recorder is installed");
    let value = f();
    drop(span);
    let snapshot = recorder.snapshot();
    let run = snapshot
        .spans
        .iter()
        .find(|s| s.enter_seq == enter)
        .expect("run span fits the recording ring");
    let mut timing = RemovalTiming {
        wall_ms: run.dur_us as f64 / 1e3,
        ..RemovalTiming::default()
    };
    // Timing runs serially, so "inside the run" is exactly the (enter,
    // exit) sequence window of the wrapper span.
    for event in &snapshot.spans {
        if event.enter_seq <= enter || event.exit_seq >= run.exit_seq {
            continue;
        }
        let ms = event.dur_us as f64 / 1e3;
        match (event.cat, event.name.as_str()) {
            ("removal", "cdg_build") => timing.build_ms += ms,
            ("removal", "cycle_search") => timing.search_ms += ms,
            // SCC spans always nest inside a `cycle_search` span; move
            // their share over so the two phases stay disjoint.
            ("scc", _) => {
                timing.scc_ms += ms;
                timing.search_ms -= ms;
            }
            _ => {}
        }
    }
    timing.search_ms = timing.search_ms.max(0.0);
    (timing, value)
}

/// Best-of-[`SCALE_RUNS`] timing of the removal under one SCC mode (by
/// wall time), plus the report of the last run.
fn time_scc_mode(
    topology: &Topology,
    routes: &RouteSet,
    scc_mode: noc_deadlock::removal::SccMode,
) -> (RemovalTiming, RemovalReport) {
    let config = RemovalConfig {
        scc_mode,
        ..RemovalConfig::default()
    };
    let mut best: Option<RemovalTiming> = None;
    let mut report = None;
    for _ in 0..SCALE_RUNS {
        let mut topo = topology.clone();
        let mut routes = routes.clone();
        let (timing, r) = attributed_removal_run(|| {
            noc_deadlock::removal::remove_deadlocks(&mut topo, &mut routes, &config)
                .expect("removal succeeds on the scaling grid")
        });
        if best.is_none_or(|b| timing.wall_ms < b.wall_ms) {
            best = Some(timing);
        }
        report = Some(r);
    }
    (
        best.expect("at least one timing run"),
        report.expect("at least one timing run"),
    )
}

/// Times one prepared scaling design: both SCC modes of cycle breaking
/// (asserting they agree before trusting either number) and, on points at
/// or below [`SCALE_STRATEGY_SWITCH_CAP`] switches, the four-strategy
/// comparison.
///
/// # Panics
///
/// Panics if the two SCC modes disagree or a strategy fails.
pub fn scale_point(spec: ScaleTopology, design: &ScaleDesign) -> ScalePoint {
    use noc_deadlock::removal::SccMode;

    let (incremental_scc_phases, incremental_report) =
        time_scc_mode(&design.topology, &design.routes, SccMode::Incremental);
    let (full_tarjan_phases, full_report) =
        time_scc_mode(&design.topology, &design.routes, SccMode::FullTarjan);
    assert!(
        incremental_report.same_outcome(&full_report),
        "{}/{}: SCC modes disagree — timing numbers would be meaningless",
        spec.family(),
        spec.switch_count()
    );

    let mut strategies = Vec::new();
    if spec.switch_count() <= SCALE_STRATEGY_SWITCH_CAP {
        let cycle_breaking = CycleBreaking::default();
        let ordering = ResourceOrdering;
        let escape = EscapeChannel::default();
        let recovery = RecoveryReconfig::default();
        let all: [&dyn DeadlockStrategy; 4] = [&cycle_breaking, &ordering, &escape, &recovery];
        for strategy in all {
            let start = std::time::Instant::now();
            let (_, _, resolution) = strategy
                .resolve_cloned(&design.topology, &design.routes)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} failed on {}/{}: {e}",
                        strategy.name(),
                        spec.family(),
                        spec.switch_count()
                    )
                });
            strategies.push(ScaleStrategyOutcome {
                strategy: resolution.strategy,
                added_vcs: resolution.added_vcs,
                cycles_broken: resolution.cycles_broken,
                time_ms: start.elapsed().as_secs_f64() * 1e3,
            });
        }
    }

    ScalePoint {
        family: spec.family(),
        switches: spec.switch_count(),
        links: design.topology.link_count(),
        channels: design.topology.channel_count(),
        flows: design.flows,
        cycles_broken: incremental_report.cycles_broken,
        added_vcs: incremental_report.added_vcs,
        incremental_scc_ms: incremental_scc_phases.wall_ms,
        full_tarjan_ms: full_tarjan_phases.wall_ms,
        incremental_scc_phases,
        full_tarjan_phases,
        strategies,
    }
}

/// Runs the whole scaling sweep: design preparation (generation + routing)
/// shards across `threads` worker threads (`0` auto-sizes to the machine's
/// available parallelism), then each point is timed serially so the numbers
/// are not polluted by co-running workers.  `observer` fires once per
/// completed point, in grid order, so callers can stream progress.
pub fn scale_sweep(threads: usize, mut observer: impl FnMut(&ScalePoint)) -> ScaleArtifact {
    let designs =
        noc_flow::executor::parallel_map_ordered(&SCALE_GRID, threads, |&spec| scale_design(spec));
    let points: Vec<ScalePoint> = SCALE_GRID
        .iter()
        .zip(&designs)
        .map(|(&spec, design)| {
            let point = scale_point(spec, design);
            observer(&point);
            point
        })
        .collect();
    let total_incremental_ms = points.iter().map(|p| p.incremental_scc_ms).sum();
    let total_full_tarjan_ms = points.iter().map(|p| p.full_tarjan_ms).sum();
    ScaleArtifact {
        points,
        total_incremental_ms,
        total_full_tarjan_ms,
    }
}

impl ToJson for ScaleStrategyOutcome {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("strategy", &self.strategy)
            .field("added_vcs", &self.added_vcs)
            .field("cycles_broken", &self.cycles_broken)
            .field("time_ms", &self.time_ms)
            .finish();
    }
}

impl ToJson for ScalePoint {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("family", &self.family)
            .field("switches", &self.switches)
            .field("links", &self.links)
            .field("channels", &self.channels)
            .field("flows", &self.flows)
            .field("cycles_broken", &self.cycles_broken)
            .field("added_vcs", &self.added_vcs)
            .field("incremental_scc_ms", &self.incremental_scc_ms)
            .field("full_tarjan_ms", &self.full_tarjan_ms)
            .field("incremental_scc_phases", &self.incremental_scc_phases)
            .field("full_tarjan_phases", &self.full_tarjan_phases)
            .field("speedup", &self.speedup())
            .field("strategies", &self.strategies)
            .finish();
    }
}

impl ToJson for ScaleArtifact {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("runs_per_mode", &SCALE_RUNS)
            .field("strategy_switch_cap", &SCALE_STRATEGY_SWITCH_CAP)
            .field("total_incremental_ms", &self.total_incremental_ms)
            .field("total_full_tarjan_ms", &self.total_full_tarjan_ms)
            .field("overall_speedup", &self.overall_speedup())
            .field("points", &self.points)
            .finish();
    }
}

/// The shared figure-binary command line and artifact writer.
///
/// Every figure binary parses the same flags through
/// [`FigureCli`](artifact::FigureCli) —
/// one flag table, one generated usage string, one typed error enum —
/// and writes its artifact through the unified
/// [`Artifact`](noc_flow::json::Artifact) envelope (atomic temp-file +
/// rename, self-validated).  The envelope version lives in
/// `noc_flow::json` as the single crate-level constant; it is
/// re-exported here for convenience.
pub mod artifact {

    use noc_flow::json::{Artifact, ToJson};
    use noc_flow::trace::TraceArtifact;
    use std::fmt;
    use std::path::{Path, PathBuf};

    pub use noc_flow::json::SCHEMA_VERSION;

    /// The flag table the usage text and the parser are both generated
    /// from: `(flag, value placeholder, help)`.
    const FLAGS: [(&str, &str, &str); 5] = [
        ("--json", "<path>", "write the artifact to this exact path"),
        (
            "--threads",
            "<n>",
            "executor worker count (0 or unset: auto-size to the machine)",
        ),
        (
            "--resume",
            "<dir>",
            "run through the resumable job store in this directory",
        ),
        (
            "--out-dir",
            "<dir>",
            "write the artifact to <dir>/<figure>.json (unless --json is given)",
        ),
        (
            "--trace",
            "<path>",
            "record telemetry and write a Chrome-trace JSON to this path",
        ),
    ];

    /// The usage footer, kept next to the flag table it qualifies: flags
    /// compose in any order, and `--resume` does not change where the
    /// artifact lands.
    const USAGE_NOTE: &str = "flags compose in any order; --resume only changes how the sweep \
runs, the artifact still lands at --json (or --out-dir/<figure>.json)";

    /// The command-line options every figure binary accepts.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct FigureCli {
        /// The figure name (artifact envelope, default filenames, errors).
        pub figure: String,
        /// `--json <path>`: write the artifact to this exact path.
        pub json: Option<PathBuf>,
        /// `--threads <n>`: executor worker count (`0`, the default,
        /// auto-sizes to the machine's available parallelism).
        pub threads: usize,
        /// `--resume <dir>`: route the sweep through the resumable job
        /// store rooted at this directory.
        pub resume: Option<PathBuf>,
        /// `--out-dir <dir>`: default artifact location
        /// (`<dir>/<figure>.json`) when `--json` is not given.
        pub out_dir: Option<PathBuf>,
        /// `--trace <path>`: install the telemetry recorder for the run and
        /// write a Chrome-trace JSON (also a schema-versioned artifact) to
        /// this path on exit.
        pub trace: Option<PathBuf>,
    }

    /// Why a figure command line was rejected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum CliError {
        /// A flag that needs a value was last on the line.
        MissingValue {
            /// The flag, e.g. `--json`.
            flag: &'static str,
        },
        /// A flag's value did not parse.
        InvalidValue {
            /// The flag, e.g. `--threads`.
            flag: &'static str,
            /// What was passed.
            value: String,
        },
        /// An argument that matches no known flag.
        UnknownArgument(String),
    }

    impl fmt::Display for CliError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                CliError::MissingValue { flag } => write!(f, "{flag} requires a value"),
                CliError::InvalidValue { flag, value } => {
                    write!(f, "{flag} expects a number, got {value:?}")
                }
                CliError::UnknownArgument(arg) => write!(f, "unknown argument {arg:?}"),
            }
        }
    }

    impl std::error::Error for CliError {}

    impl FigureCli {
        /// Parses the process arguments, printing the error plus the
        /// generated usage text and exiting with status 2 on a bad line.
        pub fn parse(figure: &str) -> Self {
            match Self::from_iter(figure, std::env::args().skip(1)) {
                Ok(cli) => cli,
                Err(error) => {
                    eprintln!("{figure}: {error}");
                    eprintln!("{}", Self::usage(figure));
                    std::process::exit(2);
                }
            }
        }

        /// Parses an explicit argument list (both `--flag value` and
        /// `--flag=value` spellings), returning a typed error instead of
        /// exiting.
        pub fn from_iter(
            figure: &str,
            args: impl IntoIterator<Item = String>,
        ) -> Result<Self, CliError> {
            let mut cli = FigureCli {
                figure: figure.to_string(),
                ..FigureCli::default()
            };
            let mut args = args.into_iter();
            while let Some(arg) = args.next() {
                let (flag, value) = match arg.split_once('=') {
                    Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
                    None => (arg, None),
                };
                let known = FLAGS.iter().find(|(name, _, _)| *name == flag);
                let Some(&(name, _, _)) = known else {
                    return Err(CliError::UnknownArgument(flag));
                };
                let value = match value.or_else(|| args.next()) {
                    Some(value) => value,
                    None => return Err(CliError::MissingValue { flag: name }),
                };
                match name {
                    "--json" => cli.json = Some(PathBuf::from(value)),
                    "--resume" => cli.resume = Some(PathBuf::from(value)),
                    "--out-dir" => cli.out_dir = Some(PathBuf::from(value)),
                    "--trace" => cli.trace = Some(PathBuf::from(value)),
                    "--threads" => {
                        cli.threads = value
                            .parse()
                            .map_err(|_| CliError::InvalidValue { flag: name, value })?;
                    }
                    _ => unreachable!("every table entry is matched"),
                }
            }
            Ok(cli)
        }

        /// The usage text, generated from the flag table — the same table
        /// the parser matches against, so the two cannot drift.
        ///
        /// # Example
        ///
        /// ```
        /// let usage = noc_bench::artifact::FigureCli::usage("fig8_d26_media");
        /// // Every flag the parser accepts is documented...
        /// for flag in ["--json", "--threads", "--resume", "--out-dir", "--trace"] {
        ///     assert!(usage.contains(flag), "usage must mention {flag}");
        /// }
        /// // ...including how --resume composes with the artifact flags.
        /// assert!(usage.contains("--resume only changes how the sweep runs"));
        /// ```
        pub fn usage(figure: &str) -> String {
            let mut out = format!("usage: {figure}");
            for (flag, placeholder, _) in FLAGS {
                out.push_str(&format!(" [{flag} {placeholder}]"));
            }
            for (flag, _, help) in FLAGS {
                out.push_str(&format!("\n  {flag:<10} {help}"));
            }
            out.push_str(&format!("\nnote: {USAGE_NOTE}"));
            out
        }

        /// Where the artifact goes: `--json` verbatim, else
        /// `<out-dir>/<figure>.json`, else nowhere.
        pub fn artifact_path(&self) -> Option<PathBuf> {
            self.json.clone().or_else(|| {
                self.out_dir
                    .as_ref()
                    .map(|dir| dir.join(format!("{}.json", self.figure)))
            })
        }

        /// Writes `data` under the versioned envelope to
        /// [`FigureCli::artifact_path`] (no-op when no path was requested),
        /// atomically.  Exits with status 1 on a write failure — the
        /// binary has nothing useful left to do.
        pub fn write_artifact(&self, data: &dyn ToJson) {
            if let Some(path) = self.artifact_path() {
                write_json_artifact(&path, &self.figure, data);
            }
        }

        /// Arms telemetry for the run when `--trace` was given: installs
        /// the recording collector, labels the calling thread `main`, and
        /// opens the root `figure` span.  The returned guard closes the
        /// span and writes the Chrome-trace file when it drops — create it
        /// right after [`parse`](Self::parse) and keep it alive for the
        /// whole of `main`.  Without `--trace` this is a no-op guard and
        /// the collector stays disabled.
        pub fn trace_session(&self) -> TraceSession {
            let Some(path) = &self.trace else {
                return TraceSession {
                    path: None,
                    figure: self.figure.clone(),
                    root: None,
                };
            };
            noc_telemetry::install_recorder();
            noc_telemetry::set_thread_label("main");
            TraceSession {
                path: Some(path.clone()),
                figure: self.figure.clone(),
                root: Some(noc_telemetry::span("figure", self.figure.clone())),
            }
        }
    }

    /// RAII guard of a `--trace` run; see [`FigureCli::trace_session`].
    pub struct TraceSession {
        path: Option<PathBuf>,
        figure: String,
        root: Option<noc_telemetry::SpanGuard>,
    }

    impl Drop for TraceSession {
        fn drop(&mut self) {
            let Some(path) = self.path.take() else {
                return;
            };
            // Close the root span before snapshotting so the trace file
            // records it (and attribution has a wall-time window).
            drop(self.root.take());
            let Some(recorder) = noc_telemetry::uninstall_recorder() else {
                return;
            };
            let snapshot = recorder.snapshot();
            if let Err(error) = TraceArtifact::new(&self.figure, &snapshot).write(&path) {
                eprintln!("{}: {error}", self.figure);
                std::process::exit(1);
            }
            eprintln!("wrote trace {}", path.display());
        }
    }

    /// Renders a figure artifact under the versioned envelope and commits
    /// it to `path` atomically (temp file + rename), re-parsing the output
    /// first so a serializer bug can never publish an unreadable artifact.
    pub fn write_json_artifact(path: &Path, figure: &str, data: &dyn ToJson) {
        let mut span = noc_telemetry::span("artifact", "write");
        span.arg("figure", figure);
        if let Err(error) = Artifact::new(figure, data).write(path) {
            eprintln!("{figure}: {error}");
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn parse(args: &[&str]) -> Result<FigureCli, CliError> {
            FigureCli::from_iter("fig", args.iter().map(|s| s.to_string()))
        }

        #[test]
        fn parses_all_flags_in_both_spellings() {
            let empty = parse(&[]).unwrap();
            assert_eq!(empty.figure, "fig");
            assert_eq!(empty.json, None);
            assert_eq!(empty.threads, 0);

            let a = parse(&["--json", "out.json", "--threads", "4"]).unwrap();
            assert_eq!(a.json.as_deref(), Some(Path::new("out.json")));
            assert_eq!(a.threads, 4);

            let b = parse(&["--threads=2", "--json=x.json", "--resume=st", "--out-dir=o"]).unwrap();
            assert_eq!(b.threads, 2);
            assert_eq!(b.json.as_deref(), Some(Path::new("x.json")));
            assert_eq!(b.resume.as_deref(), Some(Path::new("st")));
            assert_eq!(b.out_dir.as_deref(), Some(Path::new("o")));
        }

        #[test]
        fn rejects_bad_lines_with_typed_errors() {
            assert_eq!(
                parse(&["--threads", "lots"]),
                Err(CliError::InvalidValue {
                    flag: "--threads",
                    value: "lots".to_string()
                })
            );
            assert_eq!(
                parse(&["--frobnicate"]),
                Err(CliError::UnknownArgument("--frobnicate".to_string()))
            );
            assert_eq!(
                parse(&["--json"]),
                Err(CliError::MissingValue { flag: "--json" })
            );
        }

        #[test]
        fn artifact_path_prefers_json_over_out_dir() {
            let both = parse(&["--json=a.json", "--out-dir=d"]).unwrap();
            assert_eq!(both.artifact_path().as_deref(), Some(Path::new("a.json")));
            let dir_only = parse(&["--out-dir=d"]).unwrap();
            assert_eq!(
                dir_only.artifact_path().as_deref(),
                Some(Path::new("d/fig.json"))
            );
            assert_eq!(parse(&[]).unwrap().artifact_path(), None);
        }

        #[test]
        fn usage_lists_every_flag() {
            let usage = FigureCli::usage("fig");
            for (flag, _, _) in FLAGS {
                assert!(usage.contains(flag), "usage must mention {flag}");
            }
        }
    }
}

pub mod jobs;

/// The switch-count ranges used by the paper for its two sweep figures.
pub mod sweeps {
    /// Figure 8 sweeps D26_media from 5 to 25 switches.
    pub const FIG8_SWITCH_COUNTS: std::ops::RangeInclusive<usize> = 5..=25;
    /// Figure 9 sweeps D36_8 from 10 to 35 switches.
    pub const FIG9_SWITCH_COUNTS: std::ops::RangeInclusive<usize> = 10..=35;
    /// Figure 10 uses 14-switch topologies for every benchmark.
    pub const FIG10_SWITCHES: usize = 14;
    /// The dynamic validation simulates every benchmark at 10 switches.
    pub const SIM_SWITCHES: usize = 10;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_reproduce_the_paper_shape() {
        // A small slice of the Figure 8 sweep: the removal algorithm never
        // needs more VCs than resource ordering, and for D26_media it mostly
        // needs none at all (the paper's headline observation).
        let points = vc_overhead_sweep(Benchmark::D26Media, [6, 10, 14]);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.deadlock_removal_vcs <= p.resource_ordering_vcs);
        }
        let zero_overhead = points
            .iter()
            .filter(|p| p.deadlock_removal_vcs == 0)
            .count();
        assert!(
            zero_overhead >= 2,
            "most D26_media topologies are already safe"
        );
    }

    #[test]
    fn fault_point_shape_holds() {
        let point = fault_strategy_point(Benchmark::D26Media, 8);
        assert_eq!(point.runs.len(), FAULT_STRATEGIES.len());
        assert!(point.faults_injected >= 1);
        for (run, &name) in point.runs.iter().zip(FAULT_STRATEGIES.iter()) {
            // fault_strategy_point already asserts the hard guarantees
            // (acyclic commits, no deadlock, delivery when connected);
            // here we pin the row shape the artifact depends on.
            assert_eq!(run.strategy, name);
            assert_eq!(run.stats.faults_injected, point.faults_injected);
            assert_eq!(run.stats.connected, point.connected);
            assert!(run.stats.epochs_committed >= 1);
        }
    }

    #[test]
    fn infeasible_switch_counts_are_skipped() {
        let points = vc_overhead_sweep(Benchmark::D26Media, [0, 10, 100]);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].switch_count, 10);
    }

    #[test]
    fn figure_10_shape_holds_for_a_sample_benchmark() {
        let comparison = power_comparison(Benchmark::D36x8, 10);
        // Resource ordering must cost at least as much power and area.
        assert!(comparison.ordering_power_mw >= comparison.removal_power_mw);
        assert!(comparison.ordering_area_um2 >= comparison.removal_area_um2);
        assert!(comparison.normalised_ordering_power() >= 1.0);
        // The removal overhead versus the original design stays small.
        assert!(comparison.removal_power_overhead() < 0.05);
        assert!(comparison.removal_area_overhead() < 0.10);
    }

    #[test]
    fn summary_aggregates_savings() {
        let comparisons: Vec<PowerComparison> = [Benchmark::D36x8, Benchmark::D36x6]
            .into_iter()
            .map(|b| power_comparison(b, 10))
            .collect();
        let s = summary(&comparisons);
        assert!(s.mean_vc_saving > 0.0 && s.mean_vc_saving <= 1.0);
        assert!(s.mean_power_overhead < 0.05);
    }

    #[test]
    fn simulation_validation_shows_the_fix_working() {
        let v = simulate_before_after(Benchmark::D38Tvopd, 10);
        assert!(!v.fixed_deadlocked);
        assert!(v.fixed_delivered > 0);
        assert!(v.fixed_p95_latency as f64 >= v.fixed_mean_latency.floor());
    }

    #[test]
    fn cycle_stress_workload_prepends_the_stress_packets() {
        let comm = Benchmark::D36x8.comm_graph();
        let stress: Vec<FlowId> = (0..3).map(FlowId::from_index).collect();
        let traffic = TrafficConfig {
            packets_per_flow: 2,
            packet_length: 4,
            ..TrafficConfig::default()
        };
        let workload = cycle_stress_workload(&comm, &traffic, &stress, 5, 8);
        let flow_count = comm.flows().count();
        assert_eq!(workload.len(), 3 * 5 + flow_count * 2);
        // Ids are unique and the list is sorted by creation time.
        let mut ids: Vec<usize> = workload.packets.iter().map(|p| p.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), workload.len());
        assert!(workload
            .packets
            .windows(2)
            .all(|w| w[0].created_at <= w[1].created_at));
        // The stress packets are long worms on the stress flows at cycle 0.
        let stressed: Vec<_> = workload.packets.iter().filter(|p| p.length == 8).collect();
        assert_eq!(stressed.len(), 15);
        assert!(stressed
            .iter()
            .all(|p| p.created_at == 0 && stress.contains(&p.flow)));
    }

    #[test]
    fn sim_strategy_point_pins_the_headline_acceptance() {
        // The smallest Figure 9 grid point where the dynamic trap is
        // realisable: the unsafe single-VC baseline deadlocks (established
        // by the exact wait-for-graph detector), every deadlock strategy
        // delivers 100 % of the same workloads, and the DBR drain fires
        // wherever the baseline died.
        let point = sim_strategy_point(Benchmark::D36x8, 18);
        assert!(point.baseline_cdg_cyclic);
        assert!(point.stress_flows > 0);
        assert_eq!(point.series.len(), SIM_STRATEGY_POLICIES.len());

        let unsafe_series = point.series("unsafe-single-vc").unwrap();
        assert!(
            unsafe_series.rates.iter().any(|r| r.stats.deadlocked),
            "the unsafe baseline must deadlock at some swept injection rate"
        );
        for rate in &unsafe_series.rates {
            if rate.stats.deadlocked {
                assert_eq!(rate.detected_by.as_deref(), Some("wait-for-graph"));
            }
        }
        for series in &point.series {
            if series.policy == "unsafe-single-vc" {
                continue;
            }
            for rate in &series.rates {
                assert!(!rate.stats.deadlocked, "policy {}", series.policy);
                assert_eq!(
                    rate.stats.delivered, rate.stats.injected,
                    "policy {}",
                    series.policy
                );
            }
        }
        let recovery = point.series("recovery-reconfig").unwrap();
        for (unsafe_rate, recovery_rate) in unsafe_series.rates.iter().zip(&recovery.rates) {
            if unsafe_rate.stats.deadlocked {
                assert!(recovery_rate.recovery_events >= 1);
                assert!(recovery_rate.flows_reconfigured >= 1);
            }
        }
    }

    #[test]
    fn run_removal_matches_a_direct_flow() {
        let design = synthesize_benchmark(Benchmark::D36x8, 10).unwrap();
        let report = run_removal(&design, &RemovalConfig::default());
        let fixed = routed_benchmark(Benchmark::D36x8, 10)
            .resolve_deadlocks(&CycleBreaking::default())
            .unwrap();
        assert_eq!(report.added_vcs, fixed.resolution().added_vcs);
    }
}
