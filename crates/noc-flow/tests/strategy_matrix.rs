//! Strategy-equivalence and safety tests for the full strategy matrix.
//!
//! Every [`DeadlockStrategy`] implementation, on every grid point of the
//! paper's Figure 8 (D26_media, 5–25 switches) and Figure 9 (D36_8, 10–35
//! switches) sweeps, must produce a design that `noc_deadlock::verify`
//! confirms deadlock-free — on top of the stage's own re-verification.
//! Scheme-specific contracts are pinned too: escape channels never break a
//! cycle, recovery never buys a VC, and the two VC schemes never touch
//! physical routes.

use noc_deadlock::verify::check_deadlock_free;
use noc_flow::{
    CycleBreaking, DeadlockStrategy, DesignFlow, EscapeChannel, FlowError, FlowSweep,
    RecoveryReconfig, ResourceOrdering, StrategyKind,
};
use noc_synth::SynthesisConfig;
use noc_topology::benchmarks::Benchmark;
use noc_topology::LinkId;

/// The Figure 8 + Figure 9 grids (feasibility is checked by synthesis).
fn fig8_fig9_grid() -> Vec<(Benchmark, usize)> {
    (5..=25)
        .map(|s| (Benchmark::D26Media, s))
        .chain((10..=35).map(|s| (Benchmark::D36x8, s)))
        .collect()
}

#[test]
fn every_strategy_yields_a_verified_deadlock_free_design_on_every_grid_point() {
    let cycle_breaking = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let escape = EscapeChannel::default();
    let recovery = RecoveryReconfig::default();
    let strategies: [&dyn DeadlockStrategy; 4] = [&cycle_breaking, &ordering, &escape, &recovery];

    let grid = fig8_fig9_grid();
    noc_flow::executor::parallel_map_ordered(&grid, 0, |&(benchmark, switch_count)| {
        let routed = DesignFlow::from_benchmark(benchmark)
            .synthesize(SynthesisConfig::with_switches(switch_count))
            .unwrap_or_else(|e| panic!("synthesis {benchmark}/{switch_count}: {e}"))
            .route_default()
            .expect("synthesized designs carry default routes");
        let input_links: Vec<Vec<LinkId>> = routed
            .routes()
            .iter()
            .map(|(_, r)| r.links().collect())
            .collect();

        for &strategy in &strategies {
            let fixed = routed.resolve_deadlocks(strategy).unwrap_or_else(|e| {
                panic!("{} on {benchmark}/{switch_count}: {e}", strategy.name())
            });
            // Independent verification through core::verify, on top of the
            // stage's built-in check.
            check_deadlock_free(fixed.topology(), fixed.routes()).unwrap_or_else(|c| {
                panic!(
                    "{} left a cycle on {benchmark}/{switch_count}: {c}",
                    strategy.name()
                )
            });

            let resolution = fixed.resolution();
            assert_eq!(resolution.strategy, strategy.name());
            match resolution.kind {
                StrategyKind::CycleBreaking => {
                    assert!(resolution.removal.is_some());
                }
                StrategyKind::ResourceOrdering => {
                    assert_eq!(resolution.cycles_broken, 0);
                    assert!(resolution.ordering.is_some());
                }
                StrategyKind::EscapeChannel => {
                    // The avoidance contract: zero cycles ever broken.
                    assert_eq!(resolution.cycles_broken, 0);
                    let stats = resolution.escape.as_ref().expect("escape stats");
                    assert_eq!(stats.added_vcs, resolution.added_vcs);
                }
                StrategyKind::RecoveryReconfig => {
                    // The recovery contract: zero VCs, zero cycle breaks.
                    assert_eq!(resolution.cycles_broken, 0);
                    assert_eq!(resolution.added_vcs, 0);
                    assert_eq!(fixed.topology().extra_vc_count(), 0);
                    let stats = resolution.recovery.as_ref().expect("recovery stats");
                    assert_eq!(stats.flows_drained(), stats.flows_reconfigured);
                }
            }

            // VC-based schemes must keep every physical route; recovery is
            // the only strategy allowed to move flows.
            if resolution.kind != StrategyKind::RecoveryReconfig {
                let after: Vec<Vec<LinkId>> = fixed
                    .routes()
                    .iter()
                    .map(|(_, r)| r.links().collect())
                    .collect();
                assert_eq!(
                    input_links,
                    after,
                    "{} changed physical links on {benchmark}/{switch_count}",
                    strategy.name()
                );
            }
        }
    });
}

#[test]
fn strategy_matrix_sweep_carries_all_four_outcomes_per_point() {
    let cycle_breaking = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let escape = EscapeChannel::default();
    let recovery = RecoveryReconfig::default();
    let strategies: [&dyn DeadlockStrategy; 4] = [&cycle_breaking, &ordering, &escape, &recovery];

    let points = FlowSweep::new()
        .benchmarks([Benchmark::D26Media, Benchmark::D36x8])
        .switch_counts([8, 12])
        .power_estimates(false)
        .worker_threads(3)
        .run_parallel(&strategies)
        .unwrap();
    assert_eq!(points.len(), 4);
    for point in &points {
        assert_eq!(point.outcomes.len(), 4);
        let kinds: Vec<StrategyKind> = point.outcomes.iter().map(|o| o.kind).collect();
        assert_eq!(kinds, StrategyKind::ALL.to_vec());
        let escape = point.outcome("escape-channel").unwrap();
        assert_eq!(escape.cycles_broken, 0);
        assert_eq!(escape.mean_hops, point.mean_hops, "escape keeps routes");
        let recovery = point.outcome("recovery-reconfig").unwrap();
        assert_eq!(recovery.added_vcs, 0);
        assert!(
            recovery.mean_hops >= point.mean_hops,
            "recovery routes are never shorter than the shortest-path input"
        );
        // The paper's headline comparison still holds inside the matrix.
        let removal = point.outcome("cycle-breaking").unwrap();
        let ordering = point.outcome("resource-ordering").unwrap();
        assert!(removal.added_vcs <= ordering.added_vcs);
    }
}

#[test]
fn per_strategy_sharding_matches_serial_for_the_four_strategy_matrix() {
    let cycle_breaking = CycleBreaking::default();
    let ordering = ResourceOrdering;
    let escape = EscapeChannel::default();
    let recovery = RecoveryReconfig::default();
    let strategies: [&dyn DeadlockStrategy; 4] = [&cycle_breaking, &ordering, &escape, &recovery];

    let sweep = FlowSweep::new()
        .benchmark(Benchmark::D36x8)
        .switch_counts([10, 14, 18])
        .power_estimates(false);
    let serial = sweep.run(&strategies).unwrap();
    for threads in [1, 2, 5, 16] {
        let parallel = sweep
            .clone()
            .worker_threads(threads)
            .run_parallel(&strategies)
            .unwrap();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn empty_strategy_list_is_rejected_with_a_typed_error() {
    let sweep = FlowSweep::new()
        .benchmark(Benchmark::D26Media)
        .switch_counts([8])
        .power_estimates(false);
    assert!(matches!(sweep.run(&[]), Err(FlowError::EmptyStrategySet)));
    assert!(matches!(
        sweep.run_parallel(&[]),
        Err(FlowError::EmptyStrategySet)
    ));
    let mut streamed = 0usize;
    assert!(matches!(
        sweep.run_streaming(&[], |_| streamed += 1),
        Err(FlowError::EmptyStrategySet)
    ));
    assert_eq!(streamed, 0, "no point may be streamed for a rejected sweep");
}
