//! The resource-ordering baseline (Dally & Towles).
//!
//! Channels are assigned to ordered classes; after a flow uses a channel of
//! class `k`, the next channel it acquires must have a class strictly
//! greater than `k`.  The straightforward static policy — hop `h` of every
//! route uses class `h` — guarantees the CDG is acyclic (class numbers
//! increase along every route, so no dependency can close a cycle), but a
//! link crossed at hop `h` by some flow needs at least `h + 1` VCs.  Long
//! routes therefore inflate the VC count, which is exactly the overhead the
//! paper measures against in Figures 8–10.

use noc_routing::RouteSet;
use noc_topology::{Channel, Topology, TopologyError};

/// Result of applying resource ordering to a design.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceOrderingResult {
    /// Number of VCs added on top of the single VC every link starts with.
    pub added_vcs: usize,
    /// Number of channel classes used (= length of the longest route).
    pub classes: usize,
}

/// Applies resource ordering in place: every flow's hop `h` is moved onto VC
/// `h` of the link it crosses, and every link grows enough VCs to cover the
/// highest class that crosses it.
///
/// Returns the VC overhead, the metric plotted as the "Resource ordering"
/// series of Figures 8 and 9.
///
/// # Errors
///
/// Returns a [`TopologyError`] if a route references a link unknown to the
/// topology.
pub fn apply_resource_ordering(
    topology: &mut Topology,
    routes: &mut RouteSet,
) -> Result<ResourceOrderingResult, TopologyError> {
    // Highest class needed on every link.
    let mut needed_vcs: Vec<usize> = vec![1; topology.link_count()];
    let flow_count = routes.flow_count();
    for flow_index in 0..flow_count {
        let flow = noc_topology::FlowId::from_index(flow_index);
        let route = routes.route_mut(flow).expect("index is in range");
        for (hop, channel) in route.channels_mut().iter_mut().enumerate() {
            if channel.link.index() >= needed_vcs.len() {
                return Err(TopologyError::UnknownLink(channel.link));
            }
            *channel = Channel::new(channel.link, hop);
            needed_vcs[channel.link.index()] = needed_vcs[channel.link.index()].max(hop + 1);
        }
    }

    let mut added = 0usize;
    for (index, &needed) in needed_vcs.iter().enumerate() {
        let link = noc_topology::LinkId::from_index(index);
        let current = topology
            .link(link)
            .ok_or(TopologyError::UnknownLink(link))?
            .vcs;
        for _ in current..needed {
            topology.add_vc(link)?;
            added += 1;
        }
    }

    Ok(ResourceOrderingResult {
        added_vcs: added,
        classes: routes.max_hops(),
    })
}

/// Computes the VC overhead of resource ordering *without* modifying the
/// design (used by sweeps that only need the number).
pub fn resource_ordering_overhead(topology: &Topology, routes: &RouteSet) -> usize {
    let mut needed_vcs: Vec<usize> = vec![1; topology.link_count()];
    for (_, route) in routes.iter() {
        for (hop, channel) in route.channels().iter().enumerate() {
            if let Some(slot) = needed_vcs.get_mut(channel.link.index()) {
                *slot = (*slot).max(hop + 1);
            }
        }
    }
    needed_vcs
        .iter()
        .enumerate()
        .map(|(i, &needed)| {
            let current = topology
                .link(noc_topology::LinkId::from_index(i))
                .map_or(1, |l| l.vcs);
            needed.saturating_sub(current)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use noc_routing::Route;
    use noc_topology::{FlowId, LinkId};

    fn figure_1_design() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let sw: Vec<_> = (1..=4).map(|i| topo.add_switch(format!("SW{i}"))).collect();
        let links: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        let mut routes = RouteSet::new(4);
        routes.set_route(
            FlowId::from_index(0),
            Route::from_links([links[0], links[1], links[2]]),
        );
        routes.set_route(
            FlowId::from_index(1),
            Route::from_links([links[2], links[3]]),
        );
        routes.set_route(
            FlowId::from_index(2),
            Route::from_links([links[3], links[0]]),
        );
        routes.set_route(
            FlowId::from_index(3),
            Route::from_links([links[0], links[1]]),
        );
        (topo, routes)
    }

    #[test]
    fn resource_ordering_makes_the_ring_deadlock_free() {
        let (mut topo, mut routes) = figure_1_design();
        assert!(verify::check_deadlock_free(&topo, &routes).is_err());
        let result = apply_resource_ordering(&mut topo, &mut routes).unwrap();
        assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
        assert_eq!(result.classes, 3);
        assert!(result.added_vcs >= 3, "long routes force several classes");
    }

    #[test]
    fn resource_ordering_costs_more_than_the_removal_algorithm_on_the_ring() {
        let (mut ro_topo, mut ro_routes) = figure_1_design();
        let ro = apply_resource_ordering(&mut ro_topo, &mut ro_routes).unwrap();

        let (mut dr_topo, mut dr_routes) = figure_1_design();
        let dr = crate::removal::remove_deadlocks(
            &mut dr_topo,
            &mut dr_routes,
            &crate::removal::RemovalConfig::default(),
        )
        .unwrap();

        assert!(ro.added_vcs > dr.added_vcs);
    }

    #[test]
    fn vcs_match_the_longest_hop_position_per_link() {
        let (mut topo, mut routes) = figure_1_design();
        apply_resource_ordering(&mut topo, &mut routes).unwrap();
        // Link L2 (index 2) is the 3rd hop of F1 => needs 3 VCs.
        assert_eq!(topo.link(LinkId::from_index(2)).unwrap().vcs, 3);
        // Link L1 (index 1) is at most the 2nd hop => 2 VCs.
        assert_eq!(topo.link(LinkId::from_index(1)).unwrap().vcs, 2);
        // Link L0 is a 1st hop for F1/F4 but the 2nd hop of F3 => 2 VCs.
        assert_eq!(topo.link(LinkId::from_index(0)).unwrap().vcs, 2);
    }

    #[test]
    fn dry_run_overhead_matches_the_real_application() {
        let (topo, routes) = figure_1_design();
        let dry = resource_ordering_overhead(&topo, &routes);
        let (mut topo2, mut routes2) = figure_1_design();
        let applied = apply_resource_ordering(&mut topo2, &mut routes2).unwrap();
        assert_eq!(dry, applied.added_vcs);
    }

    #[test]
    fn routes_keep_their_physical_links() {
        let (mut topo, mut routes) = figure_1_design();
        let before: Vec<Vec<LinkId>> = routes.iter().map(|(_, r)| r.links().collect()).collect();
        apply_resource_ordering(&mut topo, &mut routes).unwrap();
        let after: Vec<Vec<LinkId>> = routes.iter().map(|(_, r)| r.links().collect()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn empty_route_set_adds_nothing() {
        let (mut topo, _) = figure_1_design();
        let mut routes = RouteSet::new(0);
        let result = apply_resource_ordering(&mut topo, &mut routes).unwrap();
        assert_eq!(result.added_vcs, 0);
        assert_eq!(result.classes, 0);
        assert_eq!(topo.extra_vc_count(), 0);
    }

    #[test]
    fn unknown_link_is_reported() {
        let mut topo = Topology::new();
        topo.add_switch("only");
        let mut routes = RouteSet::new(1);
        routes.set_route(
            FlowId::from_index(0),
            Route::from_links([LinkId::from_index(5)]),
        );
        assert!(apply_resource_ordering(&mut topo, &mut routes).is_err());
    }
}
