//! Scaling sweep of the removal engine over synthetic topology families:
//! 2-D/3-D meshes and tori, fat trees and dragonflies from 256 up to 10⁴
//! switches, each with a seeded uniform-random workload routed by the
//! deadlock-oblivious shortest-path router.
//!
//! Every point times `remove_deadlocks` under the incremental SCC partition
//! (the default) and under full Tarjan per verification scan (the
//! reference), asserting the two agree before trusting either number.
//! Points at or below the strategy cap additionally chart the four-strategy
//! VC-cost comparison.  Pass `--threads <n>` to shard the untimed
//! generation/routing preparation (`0`, the default, auto-sizes to the
//! machine's available parallelism; timing always runs serially) and
//! `--json <path>` to write the rows plus aggregate speedups as a JSON
//! artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{scale_sweep, SCALE_RUNS, SCALE_STRATEGY_SWITCH_CAP};

fn main() {
    let args = FigureCli::parse("fig_scale");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }

    println!(
        "# Removal scaling: incremental SCC vs. full Tarjan (best of {SCALE_RUNS} runs per mode)"
    );
    println!(
        "{:>10} {:>9} {:>8} {:>9} {:>8} {:>7} {:>6} {:>12} {:>11} {:>8}",
        "family",
        "switches",
        "links",
        "channels",
        "flows",
        "breaks",
        "vcs",
        "inc_scc_ms",
        "tarjan_ms",
        "speedup"
    );
    let data = scale_sweep(args.threads, |point| {
        println!(
            "{:>10} {:>9} {:>8} {:>9} {:>8} {:>7} {:>6} {:>12.3} {:>11.3} {:>7.2}x",
            point.family,
            point.switches,
            point.links,
            point.channels,
            point.flows,
            point.cycles_broken,
            point.added_vcs,
            point.incremental_scc_ms,
            point.full_tarjan_ms,
            point.speedup()
        );
        println!(
            "{:>10}   phases: inc_scc build/search/scc/other = \
             {:.3}/{:.3}/{:.3}/{:.3} ms, tarjan = {:.3}/{:.3}/{:.3}/{:.3} ms",
            "",
            point.incremental_scc_phases.build_ms,
            point.incremental_scc_phases.search_ms,
            point.incremental_scc_phases.scc_ms,
            point.incremental_scc_phases.other_ms(),
            point.full_tarjan_phases.build_ms,
            point.full_tarjan_phases.search_ms,
            point.full_tarjan_phases.scc_ms,
            point.full_tarjan_phases.other_ms()
        );
    });
    println!();
    println!(
        "totals: full tarjan {:.1} ms, incremental scc {:.1} ms, overall speedup {:.2}x",
        data.total_full_tarjan_ms,
        data.total_incremental_ms,
        data.overall_speedup()
    );

    println!();
    println!("# Strategy comparison (points up to {SCALE_STRATEGY_SWITCH_CAP} switches)");
    println!(
        "{:>10} {:>9} {:>18} {:>6} {:>7} {:>10}",
        "family", "switches", "strategy", "vcs", "breaks", "time_ms"
    );
    for point in &data.points {
        for row in &point.strategies {
            println!(
                "{:>10} {:>9} {:>18} {:>6} {:>7} {:>10.3}",
                point.family,
                point.switches,
                row.strategy,
                row.added_vcs,
                row.cycles_broken,
                row.time_ms
            );
        }
    }

    args.write_artifact(&data);
}
