//! The dynamic half of the strategy comparison (beyond the paper): every
//! deadlock-handling strategy simulated on the VC-fidelity wormhole engine
//! over the Figure 8 (D26_media) and Figure 9 (D36_8) grids, swept across
//! injection rates.
//!
//! Six policies run the *same* workload per (grid point × rate) — uniform
//! traffic plus a cycle-stress prefix that presses on the unrepaired
//! design's cyclic CDG SCCs:
//!
//! * `unsafe-single-vc` — the control group: the unrepaired design with
//!   every VC assignment discarded; must deadlock (caught by the exact
//!   wait-for-graph detector) wherever the dynamic trap is realisable;
//! * `cycle-breaking`, `resource-ordering`, `escape-channel` — repaired
//!   designs honouring their VC assignments;
//! * `escape-channel-adaptive` — the escape design under the
//!   Duato-adaptive policy (any VC, escape always reachable);
//! * `recovery-reconfig` — the unrepaired design with the DBR-style
//!   dynamic drain executing the recovery strategy at runtime.
//!
//! Pass `--threads <n>` to pin the executor worker count and
//! `--json <path>` to write the full sweep as a JSON artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{sim_strategy_sweep, SimSweepPoint, SIM_INJECTION_GAPS, SIM_STRATEGY_POLICIES};
use noc_flow::json::{ObjectWriter, ToJson};

/// The artifact payload: both sweep axes plus every grid point.
struct SimStrategiesArtifact {
    injection_gaps: Vec<usize>,
    policies: Vec<String>,
    points: Vec<SimSweepPoint>,
}

impl ToJson for SimStrategiesArtifact {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("injection_gaps", &self.injection_gaps)
            .field("policies", &self.policies)
            .field("points", &self.points)
            .finish();
    }
}

fn main() {
    let args = FigureCli::parse("fig_sim_strategies");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!("# VC-aware wormhole simulation — per-strategy delivery/latency, Figure 8/9 grids");
    println!(
        "{:>12} {:>9} {:>7} {:>16} {:>10} {:>11} {:>11} {:>11} {:>9}",
        "benchmark",
        "switches",
        "cyclic",
        "unsafe_deadlock",
        "delivered",
        "p50_cycles",
        "p95_cycles",
        "p99_cycles",
        "drains"
    );
    let points = sim_strategy_sweep(args.threads);
    for point in &points {
        let unsafe_series = point
            .series(SIM_STRATEGY_POLICIES[0])
            .expect("baseline series present");
        // The gaps at which the unsafe baseline deadlocked, e.g. "0,8".
        let deadlock_gaps: Vec<String> = unsafe_series
            .rates
            .iter()
            .filter(|r| r.stats.deadlocked)
            .map(|r| r.mean_gap_cycles.to_string())
            .collect();
        let deadlock_gaps = if deadlock_gaps.is_empty() {
            "-".to_string()
        } else {
            format!("gap {}", deadlock_gaps.join(","))
        };
        // Saturation-point latency of the paper's strategy, and the total
        // drain events of the recovery policy across all rates.
        let removal = &point.series(SIM_STRATEGY_POLICIES[1]).unwrap().rates[0];
        let drains: usize = point
            .series(SIM_STRATEGY_POLICIES[5])
            .unwrap()
            .rates
            .iter()
            .map(|r| r.recovery_events)
            .sum();
        let strategies_deliver = point
            .series
            .iter()
            .skip(1) // everything but the unsafe baseline
            .all(|s| {
                s.rates
                    .iter()
                    .all(|r| !r.stats.deadlocked && r.stats.delivered == r.stats.injected)
            });
        println!(
            "{:>12} {:>9} {:>7} {:>16} {:>10} {:>11} {:>11} {:>11} {:>9}",
            point.benchmark,
            point.switch_count,
            point.baseline_cdg_cyclic,
            deadlock_gaps,
            if strategies_deliver { "100%" } else { "FAIL" },
            removal.stats.p50_latency,
            removal.stats.p95_latency,
            removal.stats.p99_latency,
            drains
        );
    }
    let data = SimStrategiesArtifact {
        injection_gaps: SIM_INJECTION_GAPS.iter().map(|&g| g as usize).collect(),
        policies: SIM_STRATEGY_POLICIES.map(str::to_string).to_vec(),
        points,
    };
    args.write_artifact(&data);
}
