//! Directed-graph substrate for the NoC deadlock-removal suite.
//!
//! The paper ("A Method to Remove Deadlocks in Networks-on-Chips with
//! Wormhole Flow Control", DATE 2010) manipulates three directed graphs:
//! the topology graph `TG(S, L)`, the communication graph `G(V, E)` and the
//! channel dependency graph `CDG(C, D)`.  This crate provides the common
//! graph machinery all of them are built on:
//!
//! * [`DiGraph`] — a compact adjacency-list directed multigraph with stable
//!   node and edge identifiers,
//! * [`CsrGraph`] — a frozen compressed-sparse-row view of a [`DiGraph`] for
//!   cache-friendly read-only passes, abstracted over by [`GraphView`],
//! * breadth-first and depth-first [`traversal`],
//! * Tarjan strongly-connected components ([`scc`]), plus the incrementally
//!   maintained partition ([`IncrementalScc`]),
//! * cycle search ([`cycles`]) including the per-vertex BFS "smallest cycle"
//!   search used by the paper's `GetSmallestCycle`,
//! * Dijkstra shortest paths ([`shortest_path`]),
//! * topological ordering / acyclicity checks ([`topo`]),
//! * Graphviz export ([`dot`]).
//!
//! # Example
//!
//! ```
//! use noc_graph::{DiGraph, cycles};
//!
//! let mut g: DiGraph<&str, ()> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, ());
//! g.add_edge(b, c, ());
//! g.add_edge(c, a, ());
//!
//! let cycle = cycles::smallest_cycle(&g).expect("the triangle is a cycle");
//! assert_eq!(cycle.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod cycles;
pub mod digraph;
pub mod dot;
pub mod inc_scc;
pub mod knots;
pub mod scc;
pub mod shortest_path;
pub mod topo;
pub mod traversal;

pub use csr::{CsrGraph, GraphView};
pub use digraph::{DiGraph, EdgeId, EdgeRef, NodeId};
pub use inc_scc::{IncrementalScc, IncrementalSccStats};
