//! Simulation statistics.

/// Latency / throughput statistics of a simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Packets handed to source queues.
    pub injected_packets: usize,
    /// Packets fully delivered (tail flit ejected).
    pub delivered_packets: usize,
    /// Total flits delivered.
    pub delivered_flits: usize,
    /// Sum of per-packet latencies (delivery cycle − creation cycle).
    pub total_latency_cycles: u64,
    /// Worst per-packet latency observed.
    pub max_latency_cycles: u64,
    /// Number of cycles simulated.
    pub cycles: u64,
}

impl SimStats {
    /// Average packet latency in cycles (0 when nothing was delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.delivered_packets as f64
        }
    }

    /// Delivered flits per simulated cycle.
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered_flits as f64 / self.cycles as f64
        }
    }

    /// Fraction of injected packets that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected_packets == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.injected_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let stats = SimStats {
            injected_packets: 10,
            delivered_packets: 8,
            delivered_flits: 32,
            total_latency_cycles: 160,
            max_latency_cycles: 40,
            cycles: 64,
        };
        assert_eq!(stats.mean_latency(), 20.0);
        assert_eq!(stats.throughput_flits_per_cycle(), 0.5);
        assert_eq!(stats.delivery_ratio(), 0.8);
    }

    #[test]
    fn empty_run_has_zero_metrics() {
        let stats = SimStats::default();
        assert_eq!(stats.mean_latency(), 0.0);
        assert_eq!(stats.throughput_flits_per_cycle(), 0.0);
        assert_eq!(stats.delivery_ratio(), 0.0);
    }
}
