//! Recovery-based deadlock reconfiguration (DBR-style).
//!
//! Recovery schemes (cf. Dynamic Backtracking Reconfiguration,
//! arXiv:1211.5747) accept that deadlocks can form, detect them, and resolve
//! them by *draining* the involved traffic and switching it onto a
//! provably deadlock-free routing function — no extra virtual channels, the
//! cost is paid in reconfiguration events and longer recovery routes
//! instead.
//!
//! [`apply_recovery_reconfig`] models that scheme statically, at CAD time:
//!
//! 1. build the CDG and find its cyclic strongly-connected components with
//!    the existing SCC machinery ([`noc_graph::scc`]) — each cyclic SCC is a
//!    dependency region that could deadlock at runtime;
//! 2. *drain* every flow that contributes a dependency inside such an SCC
//!    and re-route it onto a shortest legal up*/down* path
//!    ([`noc_routing::updown::updown_route`]) — the reconfigured routing
//!    function whole-SCC recovery switches to;
//! 3. patch the CDG with the drained flows' dependency deltas and repeat:
//!    reconfigured flows only create up*/down*-legal dependencies (which
//!    cannot close a cycle on their own), so every remaining cycle involves
//!    at least one not-yet-drained flow and each round makes strict
//!    progress.  The CDG is built once; each round applies
//!    [`Cdg::remove_flow_deps`] / [`Cdg::add_flow_deps`] per drained flow
//!    and feeds the touched vertices to an incrementally maintained SCC
//!    partition ([`noc_graph::IncrementalScc`]), so detection cost tracks
//!    the dirty region instead of the whole design.
//!
//! Each round is one *reconfiguration event*; its cost — SCCs collapsed,
//! channels involved, flows drained, hop inflation of the recovery routes —
//! is recorded as a [`RecoveryStep`], the per-reconfiguration stats the
//! strategy comparison plots.  Unlike cycle breaking and the VC-based
//! schemes, recovery changes *physical* routes (that is the point: it
//! reuses existing channels instead of buying new ones), so
//! [`RecoveryResult::added_vcs`](RecoveryResult) is always zero and the
//! interesting cost is [`RecoveryResult::extra_hops`].

use crate::cdg::{Cdg, CdgDelta};
use noc_graph::{IncrementalScc, NodeId};
use noc_routing::updown::{updown_route, UpDownLabels};
use noc_routing::{Route, RouteSet};
use noc_topology::{FlowId, SwitchId, Topology};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// One reconfiguration event: a detection pass plus the drain-and-re-route
/// of every flow inside the cyclic SCCs it found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStep {
    /// Cyclic SCCs detected in this round's CDG.
    pub sccs: usize,
    /// Channel vertices inside those SCCs (the size of the deadlock-capable
    /// region being reconfigured).
    pub scc_channels: usize,
    /// Flows drained and moved onto up*/down* routes in this round.
    pub flows_drained: usize,
    /// Total hops of the drained flows before re-routing.
    pub hops_before: usize,
    /// Total hops of the same flows on their recovery routes.
    pub hops_after: usize,
}

/// Result of applying recovery-based reconfiguration to a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryResult {
    /// Reconfiguration events needed before the CDG became acyclic (0 when
    /// the design was already deadlock-free).
    pub reconfigurations: usize,
    /// Distinct flows drained and re-routed across all events.
    pub flows_reconfigured: usize,
    /// Per-event cost stats, in event order.
    pub steps: Vec<RecoveryStep>,
    /// `true` when the input CDG was already acyclic and nothing was done.
    pub already_deadlock_free: bool,
    /// Root of the BFS spanning tree of the recovery routing function.
    pub root: SwitchId,
}

impl RecoveryResult {
    /// Total hop inflation of the recovery routes versus the routes the
    /// drained flows had before (up*/down* routes are never shorter than
    /// the shortest-path originals).
    pub fn extra_hops(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.hops_after.saturating_sub(s.hops_before))
            .sum()
    }

    /// Total flows drained, counted per event (a flow is only ever drained
    /// once, so this equals [`flows_reconfigured`](Self::flows_reconfigured)).
    pub fn flows_drained(&self) -> usize {
        self.steps.iter().map(|s| s.flows_drained).sum()
    }
}

/// Errors reported by [`apply_recovery_reconfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// A drained flow has no legal up*/down* route between its endpoints —
    /// the recovery routing function cannot serve this topology (e.g. a
    /// unidirectional ring, where some pairs force a down→up turn).
    NoEscapeRoute {
        /// The flow that could not be re-routed.
        flow: FlowId,
        /// Source switch of the flow's route.
        from: SwitchId,
        /// Destination switch of the flow's route.
        to: SwitchId,
    },
    /// A detection round found cycles but no flow left to drain — the CDG
    /// and the route set are inconsistent (never observed on designs built
    /// by this suite; each round must drain at least one fresh flow).
    Stalled {
        /// The reconfiguration round that made no progress (0-based).
        round: usize,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoEscapeRoute { flow, from, to } => write!(
                f,
                "flow {flow} has no up*/down* recovery route from {from} to {to}"
            ),
            RecoveryError::Stalled { round } => write!(
                f,
                "reconfiguration round {round} found cycles but no flow to drain"
            ),
        }
    }
}

impl Error for RecoveryError {}

/// Applies recovery-based reconfiguration in place: detects cyclic CDG
/// regions via SCCs and drains their flows onto up*/down* routes (rooted at
/// `root`) until the CDG is acyclic.  The topology is never modified — no
/// VCs are added — but drained flows change their *physical* routes.
///
/// # Errors
///
/// * [`RecoveryError::NoEscapeRoute`] if a drained flow cannot be routed
///   under the up*/down* rule (the bundled synthesized designs use
///   bidirectional links, where a route always exists).
/// * [`RecoveryError::Stalled`] if a round makes no progress (defensive;
///   requires an inconsistent CDG/route pair).
pub fn apply_recovery_reconfig(
    topology: &Topology,
    routes: &mut RouteSet,
    root: SwitchId,
) -> Result<RecoveryResult, RecoveryError> {
    let labels = UpDownLabels::new(topology, root);
    let mut reconfigured: BTreeSet<FlowId> = BTreeSet::new();
    let mut steps: Vec<RecoveryStep> = Vec::new();

    // The CDG is built once; each round patches it with the drained flows'
    // dependency deltas and marks the touched vertices dirty on the
    // incrementally maintained SCC partition.
    let mut cdg = Cdg::build(topology, routes);
    let mut scc = IncrementalScc::new();

    loop {
        let graph = cdg.graph();
        let components: Vec<Vec<NodeId>> = scc
            .components(graph)
            .iter()
            .filter(|c| c.len() > 1 || graph.has_edge(c[0], c[0]))
            .cloned()
            .collect();
        if components.is_empty() {
            break;
        }

        // Which cyclic component (if any) each channel vertex belongs to:
        // dense, keyed by node index, `usize::MAX` = not in a cyclic SCC.
        let mut component_of = vec![usize::MAX; graph.node_count()];
        let mut scc_channels = 0usize;
        for (index, component) in components.iter().enumerate() {
            scc_channels += component.len();
            for &node in component {
                component_of[node.index()] = index;
            }
        }

        // Every flow contributing a dependency *inside* a cyclic SCC gets
        // drained.  BTreeSet keeps the drain order deterministic.
        let mut drain: BTreeSet<FlowId> = BTreeSet::new();
        for edge in graph.edges() {
            let source = component_of[edge.source.index()];
            if source != usize::MAX && source == component_of[edge.target.index()] {
                drain.extend(edge.weight.iter().copied());
            }
        }
        drain.retain(|flow| !reconfigured.contains(flow));
        if drain.is_empty() {
            return Err(RecoveryError::Stalled { round: steps.len() });
        }

        let mut delta = CdgDelta::default();
        let mut hops_before = 0usize;
        let mut hops_after = 0usize;
        for &flow in &drain {
            let route = routes.route(flow).expect("drained flows have routes");
            let channels = route.channels().to_vec();
            // A flow on an in-SCC dependency has at least two hops.
            let first = channels.first().expect("dependency implies a route");
            let last = channels.last().expect("dependency implies a route");
            let from = topology
                .link(first.link)
                .expect("routes reference known links")
                .source;
            let to = topology
                .link(last.link)
                .expect("routes reference known links")
                .target;
            hops_before += route.hop_count();
            let links = updown_route(topology, &labels, from, to)
                .ok_or(RecoveryError::NoEscapeRoute { flow, from, to })?;
            hops_after += links.len();
            cdg.remove_flow_deps(flow, &channels, &mut delta);
            routes.set_route(flow, Route::from_links(links));
            cdg.add_flow_deps(
                flow,
                routes.route(flow).expect("route was just set").channels(),
                &mut delta,
            );
            reconfigured.insert(flow);
        }
        for &node in delta.touched_nodes() {
            scc.mark_dirty(node);
        }

        steps.push(RecoveryStep {
            sccs: components.len(),
            scc_channels,
            flows_drained: drain.len(),
            hops_before,
            hops_after,
        });
    }

    Ok(RecoveryResult {
        reconfigurations: steps.len(),
        flows_reconfigured: reconfigured.len(),
        already_deadlock_free: steps.is_empty(),
        steps,
        root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use noc_topology::generators;
    use noc_topology::LinkId;

    /// All-to-all flows over a generated topology, routed shortest-path —
    /// a bidirectional ring under this routing has a cyclic CDG.
    fn all_to_all_shortest(
        generated: generators::Generated,
    ) -> (Topology, RouteSet, noc_topology::CommGraph) {
        use noc_routing::shortest::route_all_shortest;
        use noc_topology::{CommGraph, CoreMap};
        let n = generated.switches.len();
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..n).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    comm.add_flow(cores[i], cores[j], 1.0);
                }
            }
        }
        let mut map = CoreMap::new(n);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, generated.switches[i]).unwrap();
        }
        let routes = route_all_shortest(&generated.topology, &comm, &map).unwrap();
        (generated.topology, routes, comm)
    }

    #[test]
    fn recovery_fixes_a_bidirectional_ring_without_adding_vcs() {
        let (topo, mut routes, _) = all_to_all_shortest(generators::bidirectional_ring(6, 1.0));
        assert!(verify::check_deadlock_free(&topo, &routes).is_err());
        let result = apply_recovery_reconfig(&topo, &mut routes, SwitchId::from_index(0)).unwrap();
        assert!(verify::check_deadlock_free(&topo, &routes).is_ok());
        assert!(!result.already_deadlock_free);
        assert!(result.reconfigurations >= 1);
        assert_eq!(result.steps.len(), result.reconfigurations);
        assert_eq!(result.flows_drained(), result.flows_reconfigured);
        assert_eq!(topo.extra_vc_count(), 0, "recovery never buys VCs");
        // Up*/down* detours around the tree root make recovery routes
        // longer than the shortest-path originals.
        assert!(result.extra_hops() > 0);
    }

    #[test]
    fn acyclic_designs_are_left_untouched() {
        use noc_routing::updown::route_all_updown;
        use noc_topology::{CommGraph, CoreMap};
        let gen = generators::mesh2d(3, 3, 1.0);
        let mut comm = CommGraph::new();
        let cores: Vec<_> = (0..9).map(|i| comm.add_core(format!("c{i}"))).collect();
        for i in 0..9 {
            for j in 0..9 {
                if i != j {
                    comm.add_flow(cores[i], cores[j], 1.0);
                }
            }
        }
        let mut map = CoreMap::new(9);
        for (i, &c) in cores.iter().enumerate() {
            map.assign(c, gen.switches[i]).unwrap();
        }
        let root = gen.switches[0];
        let topo = gen.topology;
        let mut routes = route_all_updown(&topo, &comm, &map, root).unwrap();
        let before = routes.clone();
        let result = apply_recovery_reconfig(&topo, &mut routes, root).unwrap();
        assert!(result.already_deadlock_free);
        assert_eq!(result.reconfigurations, 0);
        assert_eq!(result.flows_reconfigured, 0);
        assert_eq!(result.extra_hops(), 0);
        assert_eq!(
            routes.iter().count(),
            before.iter().count(),
            "no route was touched"
        );
        for (flow, route) in before.iter() {
            assert_eq!(routes.route(flow), Some(route));
        }
    }

    #[test]
    fn unidirectional_rings_have_no_recovery_route() {
        // A unidirectional ring forces down→up turns for some pairs, so the
        // up*/down* recovery function cannot serve it: typed error, not a
        // panic or an unsound result.
        let mut topo = Topology::new();
        let sw: Vec<_> = (0..4).map(|i| topo.add_switch(format!("s{i}"))).collect();
        let links: Vec<LinkId> = (0..4)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 4], 1.0))
            .collect();
        let mut routes = RouteSet::new(4);
        for i in 0..4 {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([links[i], links[(i + 1) % 4]]),
            );
        }
        let err = apply_recovery_reconfig(&topo, &mut routes, sw[0]).unwrap_err();
        assert!(matches!(err, RecoveryError::NoEscapeRoute { .. }));
        assert!(err.to_string().contains("recovery route"));
    }

    #[test]
    fn drained_routes_still_connect_their_endpoints() {
        let (topo, mut routes, comm) = all_to_all_shortest(generators::torus2d(3, 3, 1.0));
        let endpoints: Vec<(SwitchId, SwitchId)> = routes
            .iter()
            .map(|(_, r)| {
                let ch = r.channels();
                (
                    topo.link(ch[0].link).unwrap().source,
                    topo.link(ch[ch.len() - 1].link).unwrap().target,
                )
            })
            .collect();
        apply_recovery_reconfig(&topo, &mut routes, SwitchId::from_index(0)).unwrap();
        for ((_, route), (from, to)) in routes.iter().zip(endpoints) {
            let ch = route.channels();
            assert_eq!(topo.link(ch[0].link).unwrap().source, from);
            assert_eq!(topo.link(ch[ch.len() - 1].link).unwrap().target, to);
        }
        let _ = comm;
    }
}
