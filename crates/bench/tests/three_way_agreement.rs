//! The three-way agreement harness: the verifier triad must form a sound
//! lattice on every design it is pointed at —
//!
//! ```text
//! CDG acyclic  ⇒  certified deadlock-free  ⇒  the exact runtime
//!                                             wait-for-graph detector
//!                                             never fires
//! ```
//!
//! equivalently (contrapositive): a runtime deadlock implies the certified
//! verdict was *not* `certified-free`, and any certified verdict other than
//! `certified-free` implies the CDG was cyclic.  The harness drives every
//! feasible Figure 8 (D26_media) and Figure 9 (D36_8) grid point plus 200
//! seeded random ring / chorded-ring / mesh designs through
//! [`noc_bench::conservatism_point_for`] — the same code path the
//! `fig_conservatism` artifact uses — and hard-fails on any sound-direction
//! disagreement.  A certified-free design that deadlocks in simulation is a
//! verifier bug, full stop.
//!
//! The unsound direction (a `certified-deadlockable` witness *realizing*
//! its deadlock under FIFO scheduling) is best-effort: the witness is
//! re-verified statically inside `certify`, and the replay is asserted only
//! on the deterministic Figure 1 ring where the trap provably closes.

use noc_bench::{conservatism_point_for, random_routed_design, ConservatismPoint};
use noc_flow::{DesignFlow, ShortestPathRouter};
use noc_topology::benchmarks::Benchmark;
use noc_topology::{generators, CommGraph, CoreMap};

/// Number of seeded random designs the property sweep checks.  Matches the
/// `fig_conservatism` artifact population (`DEFAULT_RANDOM_DESIGNS`).
const RANDOM_DESIGNS: u64 = 200;

/// Asserts the sound lattice on one point; the panic message names the
/// design so a seed that finds a disagreement is immediately reproducible.
fn assert_lattice(point: &ConservatismPoint, label: &str) {
    // CDG acyclic ⇒ certified free (the certifier's fast path must agree
    // with the conservative check on acyclic designs).
    if !point.cdg_cyclic {
        assert_eq!(
            point.verdict, "certified-free",
            "{label}: CDG is acyclic but certify returned {}",
            point.verdict
        );
    }
    // Certified free ⇒ the exact detector never fires, and the long-worm
    // run drains (the certificate is a guarantee, not a heuristic).
    if point.verdict == "certified-free" {
        assert!(
            !point.wait_for_graph_fired,
            "{label}: certified-free design tripped the wait-for-graph detector"
        );
        assert!(
            !point.runtime_deadlocked,
            "{label}: certified-free design deadlocked in simulation"
        );
    }
    // Contrapositive sanity: a deadlockable verdict (which carries a
    // statically re-verified witness) can only arise on a cyclic CDG.
    if point.verdict == "certified-deadlockable" {
        assert!(
            point.cdg_cyclic,
            "{label}: deadlockable verdict on an acyclic CDG"
        );
        assert!(
            point.witness_worms >= 1,
            "{label}: deadlockable verdict without witness worms"
        );
        assert!(
            point.witness_attempted,
            "{label}: deadlockable verdict but no replay was attempted"
        );
    }
}

#[test]
fn benchmark_grids_respect_the_lattice() {
    let mut grid: Vec<(Benchmark, usize)> = Vec::new();
    for count in noc_bench::sweeps::FIG8_SWITCH_COUNTS {
        grid.push((Benchmark::D26Media, count));
    }
    for count in noc_bench::sweeps::FIG9_SWITCH_COUNTS {
        grid.push((Benchmark::D36x8, count));
    }
    let points = noc_flow::executor::parallel_map_ordered(&grid, 0, |&(benchmark, count)| {
        let routed = noc_bench::routed_benchmark(benchmark, count);
        conservatism_point_for(&routed, benchmark.name(), count)
    });
    for (&(benchmark, count), point) in grid.iter().zip(&points) {
        assert_lattice(point, &format!("{benchmark}/{count}"));
    }
}

#[test]
fn random_designs_respect_the_lattice() {
    let seeds: Vec<u64> = (0..RANDOM_DESIGNS).collect();
    let points = noc_flow::executor::parallel_map_ordered(&seeds, 0, |&seed| {
        let routed = random_routed_design(seed);
        let count = routed.topology().switch_count();
        conservatism_point_for(&routed, "random", count)
    });
    let mut cyclic = 0;
    let mut deadlockable = 0;
    for (&seed, point) in seeds.iter().zip(&points) {
        assert_lattice(point, &format!("random-{seed}"));
        cyclic += point.cdg_cyclic as usize;
        deadlockable += (point.verdict == "certified-deadlockable") as usize;
    }
    // The population must actually exercise the interesting region of the
    // lattice — all-acyclic designs would make the harness vacuous.
    assert!(
        cyclic >= 20,
        "random population too tame: only {cyclic} cyclic designs"
    );
    assert!(
        deadlockable >= 5,
        "random population too tame: only {deadlockable} deadlockable designs"
    );
}

/// Figure 1 of the paper — four flows chasing each other around a
/// unidirectional ring — is the canonical genuine trap: the certified
/// verifier must find a witness AND the witness-derived replay must
/// deterministically realize the deadlock on the exact detector.
#[test]
fn figure_one_ring_witness_realizes_its_deadlock() {
    let generated = generators::unidirectional_ring(4, 1.0);
    let mut comm = CommGraph::new();
    let cores: Vec<_> = (0..4).map(|i| comm.add_core(format!("core{i}"))).collect();
    for i in 0..4 {
        // Each flow travels two hops clockwise: 0→2, 1→3, 2→0, 3→1.
        comm.add_flow(cores[i], cores[(i + 2) % 4], 0.05);
    }
    let mut core_map = CoreMap::new(4);
    for (i, &core) in cores.iter().enumerate() {
        core_map.assign(core, generated.switches[i]).unwrap();
    }
    let routed = DesignFlow::from_comm(comm)
        .labelled("figure-1-ring")
        .with_design(generated.topology, core_map)
        .expect("figure 1 design is valid")
        .route(&ShortestPathRouter::default())
        .expect("ring routes exist");

    let point = conservatism_point_for(&routed, "figure-1", 4);
    assert!(point.cdg_cyclic, "figure 1 ring must have a cyclic CDG");
    assert_eq!(
        point.verdict, "certified-deadlockable",
        "figure 1 ring must be certified deadlockable"
    );
    assert!(point.witness_worms >= 2, "ring trap needs at least 2 worms");
    assert!(point.witness_attempted);
    assert!(
        point.witness_realized,
        "the figure 1 witness replay must realize the deadlock on the exact detector"
    );
    assert!(point.runtime_deadlocked);
    assert_lattice(&point, "figure-1-ring");
}
