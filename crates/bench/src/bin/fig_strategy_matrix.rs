//! The strategy matrix (beyond the paper): all four `DeadlockStrategy`
//! implementations — cycle breaking (removal), resource ordering
//! (prevention), escape channels (avoidance) and recovery reconfiguration
//! (recovery) — compared on the Figure 8 (D26_media) and Figure 9 (D36_8)
//! benchmark grids.
//!
//! Per grid point the table reports each scheme's VC overhead plus the two
//! scheme-specific costs the VC column cannot show: the cycles the removal
//! algorithm broke and the hop inflation of the recovery routes.  Pass
//! `--threads <n>` to pin the executor worker count (the sweep shards down
//! to individual (point × strategy) tasks) and `--json <path>` to write the
//! full sweep as a JSON artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{strategy_matrix_sweep, STRATEGY_MATRIX_NAMES};
use noc_flow::json::{ObjectWriter, ToJson};
use noc_flow::SweepPoint;

/// The artifact payload: the strategy list plus every sweep point.
struct MatrixArtifact {
    strategies: Vec<String>,
    points: Vec<SweepPoint>,
}

impl ToJson for MatrixArtifact {
    fn write_json(&self, out: &mut String) {
        ObjectWriter::new(out)
            .field("strategies", &self.strategies)
            .field("points", &self.points)
            .finish();
    }
}

fn main() {
    let args = FigureCli::parse("fig_strategy_matrix");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!("# Strategy matrix — extra VCs per deadlock strategy, Figure 8/9 grids");
    println!(
        "{:>12} {:>10} {:>16} {:>18} {:>16} {:>18} {:>8} {:>12}",
        "benchmark",
        "switches",
        "cycle_breaking",
        "resource_ordering",
        "escape_channel",
        "recovery_reconfig",
        "breaks",
        "extra_hops"
    );
    let points = strategy_matrix_sweep(args.threads, |progress| {
        eprintln!(
            "[{}/{}] {} @ {} switches done",
            progress.completed,
            progress.total,
            progress.point.benchmark,
            progress.point.switch_count
        );
    });
    for point in &points {
        let [removal, ordering, escape, recovery] =
            STRATEGY_MATRIX_NAMES.map(|name| point.outcome(name).expect("strategy ran"));
        // Recovery's cost is hops, not VCs: report the total extra hops its
        // re-routed flows pay versus the shortest-path input routing.
        let extra_hops = (recovery.mean_hops - point.mean_hops) * point.active_flows as f64;
        println!(
            "{:>12} {:>10} {:>16} {:>18} {:>16} {:>18} {:>8} {:>12.0}",
            point.benchmark.name(),
            point.switch_count,
            removal.added_vcs,
            ordering.added_vcs,
            escape.added_vcs,
            recovery.added_vcs,
            removal.cycles_broken,
            extra_hops.max(0.0)
        );
    }
    let data = MatrixArtifact {
        strategies: STRATEGY_MATRIX_NAMES.map(str::to_string).to_vec(),
        points,
    };
    args.write_artifact(&data);
}
