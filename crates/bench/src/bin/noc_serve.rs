//! The long-running evaluation service: figure sweeps as JSON jobs.
//!
//! Jobs arrive as newline-delimited JSON job specs (`{"id", "figure",
//! "params", "threads"}` — see `noc_jobs::JobRequest`) on **stdin**, one
//! response line per job on **stdout**; or, with `--spool <dir>`, as files
//! dropped into a spool directory — no network dependencies either way:
//!
//! ```text
//! <spool>/inbox/<name>.json    submitted job specs (id defaults to <name>)
//! <spool>/jobs/<id>/           resumable job stores (survive kills)
//! <spool>/outbox/<id>.json     committed artifacts
//! <spool>/done/<id>.json       specs that completed (moved from inbox)
//! <spool>/failed/<id>.json     specs that errored (moved from inbox)
//! <spool>/failed/<id>.error.json  why: typed error kind, message, task index
//! ```
//!
//! Liveness and progress are observable without parsing human prose:
//! stderr carries NDJSON events (`{"event":"heartbeat"|"job_start"|
//! "job_done", "uptime_us": ..., ...}`) interleaved with plain error
//! messages that never parse as JSON.
//!
//! A job interrupted by a kill — or truncated by `--max-tasks <n>` — leaves
//! its spec in the inbox and its completed tasks in the job store; the next
//! pass finishes only the missing tasks and commits an artifact
//! byte-identical to an uninterrupted run.  `--cache <dir>` adds the
//! cross-job content-hash result cache, so a re-submitted identical job
//! (even under a new id) completes without recomputing anything.
//!
//! `--once` drains the inbox a single time and exits (the CI smoke test);
//! the default is to poll the inbox until killed.

use noc_bench::jobs::job_source;
use noc_flow::json::{write_atomic, ObjectWriter, ToJson};
use noc_jobs::{ArtifactCache, JobError, JobReport, JobRequest, JobRunner, JobStore};
use std::io::{BufRead as _, Write as _};
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: noc_serve [--spool <dir>] [--jobs <dir>] [--cache <dir>] \
[--threads <n>] [--max-tasks <n>] [--once]
  --spool <dir>      serve jobs from <dir>/inbox instead of stdin
  --jobs <dir>       job-store root for stdin mode (default .noc-jobs)
  --cache <dir>      enable the cross-job content-hash result cache
  --threads <n>      worker threads per job (0 or unset: auto-size)
  --max-tasks <n>    compute at most n new tasks per job per pass
  --once             drain the spool inbox once, then exit";

struct ServeArgs {
    spool: Option<PathBuf>,
    jobs: PathBuf,
    cache: Option<PathBuf>,
    threads: usize,
    max_tasks: usize,
    once: bool,
}

fn parse_args() -> ServeArgs {
    let mut parsed = ServeArgs {
        spool: None,
        jobs: PathBuf::from(".noc-jobs"),
        cache: None,
        threads: 0,
        max_tasks: usize::MAX,
        once: false,
    };
    let mut args = std::env::args().skip(1);
    let fail = |message: String| -> ! {
        eprintln!("noc_serve: {message}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        if flag == "--once" {
            if inline.is_some() {
                fail("--once takes no value".into());
            }
            parsed.once = true;
            continue;
        }
        let mut value = || {
            inline
                .clone()
                .or_else(|| args.next())
                .unwrap_or_else(|| fail(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--spool" => parsed.spool = Some(PathBuf::from(value())),
            "--jobs" => parsed.jobs = PathBuf::from(value()),
            "--cache" => parsed.cache = Some(PathBuf::from(value())),
            "--threads" => {
                let v = value();
                parsed.threads = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--threads expects a number, got {v:?}")));
            }
            "--max-tasks" => {
                let v = value();
                parsed.max_tasks = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--max-tasks expects a number, got {v:?}")));
            }
            other => fail(format!("unknown argument {other:?}")),
        }
    }
    parsed
}

/// A job id safe to use as a path component: non-reserved characters are
/// mapped to `-`, an empty id falls back to the spec's content digest.
fn sanitize_id(id: &str, spec: &JobRequest) -> String {
    let cleaned: String = id
        .chars()
        .map(|c| match c {
            'A'..='Z' | 'a'..='z' | '0'..='9' | '.' | '_' | '-' => c,
            _ => '-',
        })
        .collect();
    if cleaned.trim_matches(['-', '.']).is_empty() {
        spec.digest()[..16].to_string()
    } else {
        cleaned
    }
}

/// Runs one job to completion (or to the `--max-tasks` budget) against its
/// resumable store, with the optional shared cache.
fn run_job(
    spec: JobRequest,
    store_dir: &Path,
    cache: Option<&ArtifactCache>,
    max_tasks: usize,
) -> Result<JobReport, JobError> {
    let source = job_source(&spec)?;
    let store = JobStore::open(store_dir, spec)?;
    let mut runner = JobRunner::new(store);
    if let Some(cache) = cache {
        runner = runner.with_cache(cache);
    }
    runner.run_bounded(source.as_ref(), max_tasks)
}

/// One stdout response line per job: id, status, run stats, and where the
/// artifact was committed (spool outbox or job store).
fn response_line(id: &str, figure: &str, report: &JobReport, artifact: Option<&Path>) -> String {
    let status = if report.artifact.is_some() {
        "ok"
    } else {
        "incomplete"
    };
    let mut out = String::new();
    let mut object = ObjectWriter::new(&mut out)
        .field("id", &id)
        .field("figure", &figure)
        .field("status", &status)
        .field("total", &report.stats.total)
        .field("computed", &report.stats.computed)
        .field("resumed", &report.stats.resumed)
        .field("cache_hits", &report.stats.cache_hits);
    if let Some(path) = artifact {
        object = object.field("artifact", &path.display().to_string());
    }
    object.finish();
    out
}

fn error_line(id: &str, error: &JobError) -> String {
    let mut out = String::new();
    ObjectWriter::new(&mut out)
        .field("id", &id)
        .field("status", &"error")
        .field("error", &error.to_string())
        .finish();
    out
}

/// Emits one structured progress event on **stderr** as NDJSON:
/// `{"event": <kind>, "uptime_us": <µs since start>, ...}`.  Supervisors
/// tail stderr for liveness (`heartbeat`) and per-job progress
/// (`job_start` / `job_done`); stdout stays reserved for response lines.
/// Human-readable error messages share the stream but never parse as
/// JSON, so NDJSON consumers skip them by construction.
fn emit_event(kind: &str, fields: &[(&str, &dyn ToJson)]) {
    let mut out = String::new();
    let mut object = ObjectWriter::new(&mut out)
        .field("event", &kind)
        .field("uptime_us", &noc_telemetry::now_us());
    for (key, value) in fields {
        object = object.field(key, *value);
    }
    object.finish();
    eprintln!("{out}");
}

/// Writes `failed/<id>.error.json` beside the spec just moved into
/// `failed/`: the typed error kind, the rendered message, and — when a
/// specific task failed — that task's index.  This replaces the old
/// opaque failure mode where the only trace of *why* a spec landed in
/// `failed/` was a scrolled-away stderr line.
fn write_error_json(failed_dir: &Path, id: &str, error: &JobError) {
    let mut out = String::new();
    let mut object = ObjectWriter::new(&mut out)
        .field("id", &id)
        .field("kind", &error.kind())
        .field("message", &error.to_string());
    if let Some(index) = error.task_index() {
        object = object.field("task_index", &index);
    }
    object.finish();
    out.push('\n');
    let path = failed_dir.join(format!("{id}.error.json"));
    if let Err(e) = write_atomic(&path, out.as_bytes()) {
        eprintln!("noc_serve: {}: {e}", path.display());
    }
}

/// stdin mode: one job spec per line, one response line per job.
fn serve_stdin(args: &ServeArgs, cache: Option<&ArtifactCache>) {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("noc_serve: stdin: {e}");
            std::process::exit(1);
        });
        if line.trim().is_empty() {
            continue;
        }
        let response = match JobRequest::from_json(&line) {
            Err(error) => error_line("", &error),
            Ok(mut spec) => {
                if args.threads != 0 {
                    spec.threads = args.threads;
                }
                let id = sanitize_id(&spec.id, &spec);
                let figure = spec.figure.clone();
                let store_dir = args.jobs.join(&id);
                emit_event("job_start", &[("id", &id), ("figure", &figure)]);
                match run_job(spec, &store_dir, cache, args.max_tasks) {
                    Ok(report) => {
                        emit_event(
                            "job_done",
                            &[
                                ("id", &id),
                                ("figure", &figure),
                                ("computed", &report.stats.computed),
                                ("cache_hits", &report.stats.cache_hits),
                            ],
                        );
                        let artifact = report.artifact.as_ref().map(|a| a.path.clone());
                        response_line(&id, &figure, &report, artifact.as_deref())
                    }
                    Err(error) => {
                        emit_event(
                            "job_done",
                            &[("id", &id), ("figure", &figure), ("error", &error.kind())],
                        );
                        error_line(&id, &error)
                    }
                }
            }
        };
        writeln!(stdout, "{response}").expect("stdout stays writable");
        stdout.flush().expect("stdout stays writable");
    }
}

/// One pass over the spool inbox; returns the number of specs seen.
fn drain_spool(spool: &Path, args: &ServeArgs, cache: Option<&ArtifactCache>) -> usize {
    let inbox = spool.join("inbox");
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&inbox) {
        Ok(dir) => dir
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect(),
        Err(e) => {
            eprintln!("noc_serve: {}: {e}", inbox.display());
            std::process::exit(1);
        }
    };
    entries.sort();
    for request_path in &entries {
        let text = match std::fs::read_to_string(request_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("noc_serve: {}: {e}", request_path.display());
                continue;
            }
        };
        let parsed = JobRequest::from_json(text.trim()).map(|mut spec| {
            if spec.id.is_empty() {
                // The file name is the natural id of a spooled job.
                if let Some(stem) = request_path.file_stem().and_then(|s| s.to_str()) {
                    spec.id = stem.to_string();
                }
            }
            if args.threads != 0 {
                spec.threads = args.threads;
            }
            spec
        });
        let outcome = parsed.and_then(|spec| {
            let id = sanitize_id(&spec.id, &spec);
            let figure = spec.figure.clone();
            emit_event("job_start", &[("id", &id), ("figure", &figure)]);
            let report = run_job(spec, &spool.join("jobs").join(&id), cache, args.max_tasks)?;
            Ok((id, figure, report))
        });
        match outcome {
            Ok((id, figure, report)) => {
                emit_event(
                    "job_done",
                    &[
                        ("id", &id),
                        ("figure", &figure),
                        ("computed", &report.stats.computed),
                        ("cache_hits", &report.stats.cache_hits),
                    ],
                );
                if let Some(artifact) = &report.artifact {
                    let out = spool.join("outbox").join(format!("{id}.json"));
                    if let Err(e) = write_atomic(&out, artifact.text.as_bytes()) {
                        eprintln!("noc_serve: {}: {e}", out.display());
                        continue;
                    }
                    move_spec(request_path, &spool.join("done"), &id);
                    println!("{}", response_line(&id, &figure, &report, Some(&out)));
                } else {
                    // Budget ran out mid-job: leave the spec in the inbox so
                    // the next pass resumes from the store.
                    println!("{}", response_line(&id, &figure, &report, None));
                }
            }
            Err(error) => {
                let id = request_path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or("job");
                emit_event("job_done", &[("id", &id), ("error", &error.kind())]);
                eprintln!("noc_serve: {id}: {error}");
                let failed = spool.join("failed");
                move_spec(request_path, &failed, id);
                write_error_json(&failed, id, &error);
                println!("{}", error_line(id, &error));
            }
        }
    }
    entries.len()
}

fn move_spec(from: &Path, to_dir: &Path, id: &str) {
    let to = to_dir.join(format!("{id}.json"));
    let moved = std::fs::create_dir_all(to_dir).and_then(|()| std::fs::rename(from, &to));
    if let Err(e) = moved {
        eprintln!(
            "noc_serve: moving {} to {}: {e}",
            from.display(),
            to.display()
        );
    }
}

fn main() {
    let args = parse_args();
    let cache = args.cache.as_ref().map(ArtifactCache::new);
    match &args.spool {
        None => serve_stdin(&args, cache.as_ref()),
        Some(spool) => loop {
            let seen = drain_spool(spool, &args, cache.as_ref());
            emit_event("heartbeat", &[("inbox", &seen)]);
            if args.once {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
        },
    }
}
