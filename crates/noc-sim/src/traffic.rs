//! Traffic generation from a communication graph.

use crate::packet::{Packet, PacketId};
use noc_rng::SmallRng;
use noc_topology::{CommGraph, FlowId};

/// Traffic-generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of packets injected per flow.
    pub packets_per_flow: usize,
    /// Packet length in flits.
    pub packet_length: usize,
    /// Mean inter-arrival gap (cycles) between consecutive packets of the
    /// same flow; the actual gap is scaled by the flow's bandwidth share so
    /// heavy flows inject more often.  A gap of 0 means all packets are
    /// ready at cycle 0 (maximum pressure — the configuration most likely to
    /// expose deadlocks).
    pub mean_gap_cycles: u64,
    /// RNG seed for the jitter on inter-arrival times.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            packets_per_flow: 8,
            packet_length: 4,
            mean_gap_cycles: 0,
            seed: 0xD1CE,
        }
    }
}

/// A generated packet workload: packets with creation times, sorted by
/// creation time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Workload {
    /// All packets, sorted by `created_at` then id.
    pub packets: Vec<Packet>,
}

impl Workload {
    /// Total packet count.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` when the workload has no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

/// Generates the packet workload for every flow of `comm`.
///
/// Flows whose bandwidth is higher relative to the maximum flow get
/// proportionally smaller inter-arrival gaps.
pub fn generate_workload(comm: &CommGraph, config: &TrafficConfig) -> Workload {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let max_bw = comm
        .flows()
        .map(|(_, f)| f.bandwidth)
        .fold(f64::MIN, f64::max)
        .max(1e-9);
    let mut packets = Vec::new();
    let mut next_id = 0usize;
    for (flow_id, flow) in comm.flows() {
        let relative = (flow.bandwidth / max_bw).clamp(0.05, 1.0);
        let mut time = 0u64;
        for _ in 0..config.packets_per_flow {
            packets.push(Packet {
                id: PacketId(next_id),
                flow: flow_id,
                length: config.packet_length.max(1),
                created_at: time,
            });
            next_id += 1;
            let gap = if config.mean_gap_cycles == 0 {
                0
            } else {
                let scaled = (config.mean_gap_cycles as f64 / relative).round() as u64;
                rng.gen_range(0..=scaled.max(1))
            };
            time += gap;
        }
    }
    packets.sort_by_key(|p| (p.created_at, p.id.0));
    Workload { packets }
}

/// Convenience: the set of flows that actually appear in a workload.
pub fn flows_in(workload: &Workload) -> Vec<FlowId> {
    let mut flows: Vec<FlowId> = workload.packets.iter().map(|p| p.flow).collect();
    flows.sort();
    flows.dedup();
    flows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm() -> CommGraph {
        let mut g = CommGraph::new();
        let a = g.add_core("a");
        let b = g.add_core("b");
        let c = g.add_core("c");
        g.add_flow(a, b, 800.0);
        g.add_flow(b, c, 100.0);
        g
    }

    #[test]
    fn workload_has_packets_per_flow_for_every_flow() {
        let workload = generate_workload(&comm(), &TrafficConfig::default());
        assert_eq!(workload.len(), 16);
        assert!(!workload.is_empty());
        assert_eq!(flows_in(&workload).len(), 2);
    }

    #[test]
    fn zero_gap_injects_everything_at_cycle_zero() {
        let workload = generate_workload(&comm(), &TrafficConfig::default());
        assert!(workload.packets.iter().all(|p| p.created_at == 0));
    }

    #[test]
    fn nonzero_gap_spreads_heavy_flows_less() {
        let config = TrafficConfig {
            mean_gap_cycles: 20,
            packets_per_flow: 16,
            ..TrafficConfig::default()
        };
        let workload = generate_workload(&comm(), &config);
        let last_time = |flow: usize| {
            workload
                .packets
                .iter()
                .filter(|p| p.flow == FlowId::from_index(flow))
                .map(|p| p.created_at)
                .max()
                .unwrap()
        };
        // Flow 0 has 8x the bandwidth of flow 1, so its packets finish
        // injecting earlier.
        assert!(last_time(0) < last_time(1));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = TrafficConfig {
            mean_gap_cycles: 10,
            ..TrafficConfig::default()
        };
        assert_eq!(
            generate_workload(&comm(), &config),
            generate_workload(&comm(), &config)
        );
    }

    #[test]
    fn packet_ids_are_unique() {
        let workload = generate_workload(&comm(), &TrafficConfig::default());
        let mut ids: Vec<usize> = workload.packets.iter().map(|p| p.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), workload.len());
    }

    #[test]
    fn packet_length_is_at_least_one() {
        let config = TrafficConfig {
            packet_length: 0,
            ..TrafficConfig::default()
        };
        let workload = generate_workload(&comm(), &config);
        assert!(workload.packets.iter().all(|p| p.length == 1));
    }
}
