//! Property-style tests for the graph substrate.
//!
//! The crates.io `proptest` crate is unavailable in the offline build
//! environment, so these properties are checked over a seeded stream of
//! random graphs from `noc-rng` — same properties, deterministic cases.

use noc_graph::{cycles, scc, shortest_path, topo, traversal, DiGraph, NodeId};
use noc_rng::SmallRng;

const CASES: u64 = 64;

/// A random directed graph with up to `max_nodes` nodes and `max_edges`
/// edges, drawn from `rng`.
fn random_graph(
    rng: &mut SmallRng,
    max_nodes: usize,
    max_edges: usize,
) -> (DiGraph<usize, ()>, Vec<NodeId>) {
    let n = rng.gen_range(2..max_nodes);
    let e = rng.gen_range(0..max_edges);
    let mut g = DiGraph::new();
    let nodes: Vec<_> = (0..n).map(|i| g.add_node(i)).collect();
    for _ in 0..e {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        g.add_edge(nodes[a], nodes[b], ());
    }
    (g, nodes)
}

/// Tarjan SCC partitions the node set: every node in exactly one component.
#[test]
fn scc_is_a_partition() {
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let (g, _) = random_graph(&mut rng, 30, 120);
        let n = g.node_count();
        let comps = scc::tarjan_scc(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, n);
        let mut seen = vec![false; n];
        for c in &comps {
            for node in c {
                assert!(!seen[node.index()]);
                seen[node.index()] = true;
            }
        }
    }
}

/// The three cycle oracles agree: topological sort exists <=> Tarjan finds
/// no cyclic component <=> smallest_cycle returns None.
#[test]
fn cycle_oracles_agree() {
    let mut rng = SmallRng::seed_from_u64(0xB0B);
    for _ in 0..CASES {
        let (g, _) = random_graph(&mut rng, 25, 80);
        let dag = topo::is_dag(&g);
        assert_eq!(dag, !scc::has_cycle(&g));
        assert_eq!(dag, cycles::smallest_cycle(&g).is_none());
        assert_eq!(dag, cycles::is_acyclic(&g));
    }
}

/// Any cycle returned is a real cycle: consecutive nodes are connected and
/// the last node connects back to the first.
#[test]
fn returned_cycle_is_valid() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let (g, _) = random_graph(&mut rng, 25, 80);
        if let Some(cycle) = cycles::smallest_cycle(&g) {
            assert!(!cycle.is_empty());
            for w in cycle.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
            assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
            // A smallest cycle visits each node at most once.
            let mut sorted = cycle.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), cycle.len());
        }
    }
}

/// BFS path lengths equal Dijkstra hop distances.
#[test]
fn bfs_and_dijkstra_agree_on_hops() {
    let mut rng = SmallRng::seed_from_u64(0xD1CE);
    for _ in 0..CASES {
        let (g, nodes) = random_graph(&mut rng, 20, 60);
        let src = nodes[0];
        let sp = shortest_path::hop_distances(&g, src);
        for &dst in &nodes {
            let bfs = traversal::bfs_path(&g, src, dst).map(|p| (p.len() - 1) as u64);
            assert_eq!(bfs, sp.distance(dst));
        }
    }
}

/// A topological order, when it exists, respects every edge.
#[test]
fn topological_order_respects_edges() {
    let mut rng = SmallRng::seed_from_u64(0xE66);
    for _ in 0..CASES {
        let (g, _) = random_graph(&mut rng, 25, 60);
        let n = g.node_count();
        if let Some(order) = topo::topological_sort(&g) {
            let pos: Vec<usize> = {
                let mut p = vec![0; n];
                for (i, node) in order.iter().enumerate() {
                    p[node.index()] = i;
                }
                p
            };
            for e in g.edges() {
                assert!(pos[e.source.index()] < pos[e.target.index()]);
            }
        }
    }
}

/// Removing every edge of a found cycle makes that particular cycle
/// impossible (the graph may still have other cycles, but at least one
/// fewer).
#[test]
fn removing_cycle_edges_reduces_cycles() {
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    for _ in 0..CASES {
        let (mut g, _) = random_graph(&mut rng, 15, 40);
        if let Some(cycle) = cycles::smallest_cycle(&g) {
            for i in 0..cycle.len() {
                let a = cycle[i];
                let b = cycle[(i + 1) % cycle.len()];
                while let Some(e) = g.find_edge(a, b) {
                    g.remove_edge(e);
                }
            }
            // The specific cycle cannot exist any more: at least one of its
            // consecutive pairs has no edge.
            let still_complete =
                (0..cycle.len()).all(|i| g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
            assert!(!still_complete);
        }
    }
}

/// Dijkstra distances satisfy the triangle inequality over direct edges.
#[test]
fn dijkstra_triangle_inequality() {
    let mut rng = SmallRng::seed_from_u64(0xFEED);
    for _ in 0..CASES {
        let (g, nodes) = random_graph(&mut rng, 20, 60);
        let src = nodes[0];
        let sp = shortest_path::dijkstra(&g, src, |_| Some(1));
        for e in g.edges() {
            if let (Some(du), Some(dv)) = (sp.distance(e.source), sp.distance(e.target)) {
                assert!(dv <= du + 1);
            }
        }
    }
}

/// The incremental finder must return exactly what the stateless global
/// search returns, across a randomized sequence of edge removals and
/// additions with dirty marking — the exactness contract the incremental
/// deadlock-removal loop relies on.
#[test]
fn incremental_finder_tracks_global_search_through_random_edits() {
    let mut rng = SmallRng::seed_from_u64(0xC1C1E);
    for _ in 0..CASES {
        let (mut g, nodes) = random_graph(&mut rng, 20, 50);
        let mut finder = cycles::IncrementalCycleFinder::new();
        for _ in 0..12 {
            assert_eq!(
                finder.smallest_cycle_by(&g, |v| v.index()),
                cycles::smallest_cycle(&g),
                "finder diverged from the global search"
            );
            // Random edit: remove a live edge or add a fresh one.
            if rng.gen_range(0..2_usize) == 0 {
                let live: Vec<_> = g.edges().map(|e| (e.id, e.source, e.target)).collect();
                if let Some(&(id, a, b)) = live.get(rng.gen_range(0..live.len().max(1))) {
                    g.remove_edge(id);
                    finder.mark_dirty(a);
                    finder.mark_dirty(b);
                }
            } else {
                let a = nodes[rng.gen_range(0..nodes.len())];
                let b = nodes[rng.gen_range(0..nodes.len())];
                g.add_edge(a, b, ());
                finder.mark_dirty(a);
                finder.mark_dirty(b);
            }
        }
    }
}

/// Under-marking the dirty region must never change the finder's answer
/// (the global verification scan is what guarantees exactness; dirty nodes
/// are only a seed).
#[test]
fn incremental_finder_is_exact_even_without_dirty_hints() {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    for _ in 0..CASES {
        let (mut g, nodes) = random_graph(&mut rng, 15, 35);
        let mut finder = cycles::IncrementalCycleFinder::new();
        for _ in 0..8 {
            assert_eq!(
                finder.smallest_cycle_by(&g, |v| v.index()),
                cycles::smallest_cycle(&g),
            );
            // Edit without telling the finder anything.
            let a = nodes[rng.gen_range(0..nodes.len())];
            let b = nodes[rng.gen_range(0..nodes.len())];
            g.add_edge(a, b, ());
        }
    }
}

/// The bounded per-node search agrees with the unbounded one whenever the
/// true cycle fits the bound, and finds nothing when it does not.
#[test]
fn bounded_cycle_search_is_consistent_with_unbounded() {
    let mut rng = SmallRng::seed_from_u64(0xB0BB);
    for _ in 0..CASES {
        let (g, nodes) = random_graph(&mut rng, 18, 45);
        for &v in &nodes {
            let full = cycles::shortest_cycle_through(&g, v);
            match &full {
                Some(cycle) => {
                    assert_eq!(
                        cycles::shortest_cycle_through_bounded(&g, v, cycle.len()).as_ref(),
                        Some(cycle),
                    );
                    if cycle.len() > 1 {
                        assert_eq!(
                            cycles::shortest_cycle_through_bounded(&g, v, cycle.len() - 1),
                            None,
                        );
                    }
                }
                None => {
                    assert_eq!(
                        cycles::shortest_cycle_through_bounded(&g, v, usize::MAX),
                        None,
                    );
                }
            }
        }
    }
}

/// Canonicalizes a Tarjan partition the way `IncrementalScc` reports it:
/// members ascending within each component, components ordered by smallest
/// member.
fn canonical(mut comps: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    for c in &mut comps {
        c.sort();
    }
    comps.sort_by_key(|c| c[0]);
    comps
}

/// The incrementally maintained SCC partition must be byte-identical to a
/// canonicalized full Tarjan run after every edit of a randomized edit
/// sequence (edge removals and additions with dirty marking) — the
/// exactness contract the removal loop and the recovery drain rely on.
#[test]
fn incremental_scc_tracks_full_tarjan_through_random_edits() {
    let mut rng = SmallRng::seed_from_u64(0x5CC5CC);
    for _ in 0..CASES {
        let (mut g, nodes) = random_graph(&mut rng, 24, 70);
        let mut inc = noc_graph::IncrementalScc::new();
        for _ in 0..14 {
            assert_eq!(
                inc.components(&g).to_vec(),
                canonical(scc::tarjan_scc(&g)),
                "incremental SCC partition diverged from full Tarjan"
            );
            // The cyclic-node pool must match the flattened cyclic components.
            let mut expected: Vec<NodeId> = scc::cyclic_components(&g).concat();
            expected.sort();
            let mut pool = inc.cyclic_nodes(&g);
            pool.sort();
            assert_eq!(pool, expected);
            // Random edit: remove a live edge or add a fresh one.
            if rng.gen_range(0..2_usize) == 0 {
                let live: Vec<_> = g.edges().map(|e| (e.id, e.source, e.target)).collect();
                if let Some(&(id, a, b)) = live.get(rng.gen_range(0..live.len().max(1))) {
                    g.remove_edge(id);
                    inc.mark_dirty(a);
                    inc.mark_dirty(b);
                }
            } else {
                let a = nodes[rng.gen_range(0..nodes.len())];
                let b = nodes[rng.gen_range(0..nodes.len())];
                g.add_edge(a, b, ());
                inc.mark_dirty(a);
                inc.mark_dirty(b);
            }
        }
    }
}

/// Growing the graph with fresh nodes (as `Cdg::register_channel` does when
/// a cycle break adds a VC) must also be tracked exactly.
#[test]
fn incremental_scc_tracks_node_growth() {
    let mut rng = SmallRng::seed_from_u64(0x96047);
    for _ in 0..CASES {
        let (mut g, mut nodes) = random_graph(&mut rng, 12, 30);
        let mut inc = noc_graph::IncrementalScc::new();
        for round in 0..10 {
            assert_eq!(inc.components(&g).to_vec(), canonical(scc::tarjan_scc(&g)));
            let fresh = g.add_node(1000 + round);
            inc.mark_dirty(fresh);
            // Wire the fresh node into the existing graph both ways.
            let a = nodes[rng.gen_range(0..nodes.len())];
            let b = nodes[rng.gen_range(0..nodes.len())];
            g.add_edge(a, fresh, ());
            g.add_edge(fresh, b, ());
            inc.mark_dirty(a);
            inc.mark_dirty(b);
            nodes.push(fresh);
        }
    }
}

/// The frozen CSR view must give every algorithm the same answer as the
/// mutable adjacency-list graph it was built from — cycles, SCCs, knots
/// and hop distances.
#[test]
fn csr_view_is_equivalent_to_digraph() {
    let mut rng = SmallRng::seed_from_u64(0xC5A);
    for _ in 0..CASES {
        let (g, nodes) = random_graph(&mut rng, 24, 80);
        let frozen = g.freeze();
        assert_eq!(cycles::smallest_cycle(&frozen), cycles::smallest_cycle(&g));
        assert_eq!(
            canonical(scc::tarjan_scc(&frozen)),
            canonical(scc::tarjan_scc(&g))
        );
        assert_eq!(
            canonical(noc_graph::knots::knots(&frozen)),
            canonical(noc_graph::knots::knots(&g))
        );
        let src = nodes[0];
        let sp_g = shortest_path::hop_distances(&g, src);
        let sp_c = shortest_path::hop_distances(&frozen, src);
        for &dst in &nodes {
            assert_eq!(sp_g.distance(dst), sp_c.distance(dst));
        }
    }
}

/// Freezing preserves the exact live-edge iteration order per node, so
/// order-sensitive searches (the canonical smallest-cycle contract) cannot
/// drift between the two representations.
#[test]
fn csr_preserves_successor_order() {
    use noc_graph::GraphView;
    let mut rng = SmallRng::seed_from_u64(0x0D8);
    for _ in 0..CASES {
        let (mut g, nodes) = random_graph(&mut rng, 20, 60);
        // Punch some holes so the free-list / tombstone paths are exercised.
        let live: Vec<_> = g.edges().map(|e| e.id).collect();
        for id in live.iter().step_by(3) {
            g.remove_edge(*id);
        }
        let frozen = g.freeze();
        for &v in &nodes {
            let from_g: Vec<NodeId> = g.successors(v).collect();
            let from_c: Vec<NodeId> = frozen.successors(v).collect();
            assert_eq!(from_g, from_c);
        }
    }
}
