//! Simulation statistics.

/// One bucket of the per-flit latency histogram: every delivered packet
/// whose latency `l` satisfies `lower <= l <= upper` is counted here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBucket {
    /// Inclusive lower bound of the bucket, in cycles.
    pub lower: u64,
    /// Inclusive upper bound of the bucket, in cycles.
    pub upper: u64,
    /// Packets whose latency falls into the bucket.
    pub count: usize,
}

/// Latency / throughput statistics of a simulation run.
///
/// Per-packet network latencies are recorded individually
/// ([`record_latency`](Self::record_latency)), so besides the mean the run
/// reports order statistics ([`latency_percentile`](Self::latency_percentile)
/// — p50/p95/p99 in the artifacts) and a log₂-bucketed histogram
/// ([`latency_histogram`](Self::latency_histogram)).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Packets handed to source queues.
    pub injected_packets: usize,
    /// Packets fully delivered (tail flit ejected).
    pub delivered_packets: usize,
    /// Total flits delivered.
    pub delivered_flits: usize,
    /// Sum of per-packet latencies (delivery cycle − creation cycle).
    pub total_latency_cycles: u64,
    /// Worst per-packet latency observed.
    pub max_latency_cycles: u64,
    /// Number of cycles simulated.
    pub cycles: u64,
    /// Every delivered packet's latency, in delivery order (the raw samples
    /// behind the percentiles and the histogram).
    pub latency_samples: Vec<u64>,
}

impl SimStats {
    /// Records the delivery of one packet with the given network latency,
    /// updating the sum, the maximum and the sample list together.
    pub fn record_latency(&mut self, latency: u64) {
        self.total_latency_cycles += latency;
        self.max_latency_cycles = self.max_latency_cycles.max(latency);
        self.latency_samples.push(latency);
    }

    /// Average packet latency in cycles (0 when nothing was delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.delivered_packets as f64
        }
    }

    /// The `p`-th latency percentile (nearest-rank, `0.0 < p <= 100.0`),
    /// or 0 when nothing was delivered.
    ///
    /// ```
    /// let mut stats = noc_sim::SimStats::default();
    /// for l in [10, 20, 30, 40] {
    ///     stats.record_latency(l);
    /// }
    /// assert_eq!(stats.latency_percentile(50.0), 20);
    /// assert_eq!(stats.latency_percentile(99.0), 40);
    /// ```
    pub fn latency_percentile(&self, p: f64) -> u64 {
        self.latency_percentiles(&[p])[0]
    }

    /// Several percentiles in one pass — the samples are cloned and sorted
    /// once, so summaries asking for p50/p95/p99 together pay a single
    /// `O(n log n)` instead of three.
    pub fn latency_percentiles(&self, ps: &[f64]) -> Vec<u64> {
        if self.latency_samples.is_empty() {
            return vec![0; ps.len()];
        }
        let mut sorted = self.latency_samples.clone();
        sorted.sort_unstable();
        ps.iter()
            .map(|&p| {
                let p = p.clamp(0.0, 100.0);
                // Nearest-rank: the smallest sample with at least p% of the
                // samples at or below it (rank ⌈p/100 · n⌉, 1-based).
                let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
                sorted[rank.max(1) - 1]
            })
            .collect()
    }

    /// Median latency (nearest-rank p50).
    pub fn p50_latency(&self) -> u64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency (nearest-rank).
    pub fn p95_latency(&self) -> u64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile latency (nearest-rank).
    pub fn p99_latency(&self) -> u64 {
        self.latency_percentile(99.0)
    }

    /// Log₂-bucketed latency histogram: buckets `[0,0]`, `[1,1]`, `[2,3]`,
    /// `[4,7]`, … up to the bucket containing the maximum observed latency.
    /// Empty when nothing was delivered; buckets with zero counts between
    /// populated ones are included so the shape plots directly.
    pub fn latency_histogram(&self) -> Vec<LatencyBucket> {
        if self.latency_samples.is_empty() {
            return Vec::new();
        }
        let bucket_of = |latency: u64| {
            // Bucket 0 = latency 0; bucket k>=1 covers [2^(k-1), 2^k - 1].
            (u64::BITS - latency.leading_zeros()) as usize
        };
        let buckets = bucket_of(self.max_latency_cycles) + 1;
        let mut counts = vec![0usize; buckets];
        for &latency in &self.latency_samples {
            counts[bucket_of(latency)] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(k, count)| LatencyBucket {
                lower: if k == 0 { 0 } else { 1u64 << (k - 1) },
                upper: if k == 0 { 0 } else { (1u64 << k) - 1 },
                count,
            })
            .collect()
    }

    /// Delivered flits per simulated cycle.
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered_flits as f64 / self.cycles as f64
        }
    }

    /// Fraction of injected packets that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected_packets == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.injected_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let stats = SimStats {
            injected_packets: 10,
            delivered_packets: 8,
            delivered_flits: 32,
            total_latency_cycles: 160,
            max_latency_cycles: 40,
            cycles: 64,
            latency_samples: Vec::new(),
        };
        assert_eq!(stats.mean_latency(), 20.0);
        assert_eq!(stats.throughput_flits_per_cycle(), 0.5);
        assert_eq!(stats.delivery_ratio(), 0.8);
    }

    #[test]
    fn empty_run_has_zero_metrics() {
        let stats = SimStats::default();
        assert_eq!(stats.mean_latency(), 0.0);
        assert_eq!(stats.throughput_flits_per_cycle(), 0.0);
        assert_eq!(stats.delivery_ratio(), 0.0);
        assert_eq!(stats.latency_percentile(50.0), 0);
        assert!(stats.latency_histogram().is_empty());
    }

    #[test]
    fn record_latency_updates_sum_max_and_samples() {
        let mut stats = SimStats::default();
        stats.record_latency(5);
        stats.record_latency(11);
        stats.record_latency(3);
        assert_eq!(stats.total_latency_cycles, 19);
        assert_eq!(stats.max_latency_cycles, 11);
        assert_eq!(stats.latency_samples, vec![5, 11, 3]);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut stats = SimStats::default();
        for l in 1..=100u64 {
            stats.record_latency(l);
        }
        assert_eq!(stats.p50_latency(), 50);
        assert_eq!(stats.p95_latency(), 95);
        assert_eq!(stats.p99_latency(), 99);
        assert_eq!(stats.latency_percentile(100.0), 100);
        // One sample: every percentile is that sample.
        let mut one = SimStats::default();
        one.record_latency(7);
        assert_eq!(one.p50_latency(), 7);
        assert_eq!(one.p99_latency(), 7);
    }

    #[test]
    fn percentiles_are_order_independent() {
        let mut a = SimStats::default();
        let mut b = SimStats::default();
        for l in [9u64, 2, 7, 2, 30] {
            a.record_latency(l);
        }
        for l in [30u64, 2, 2, 7, 9] {
            b.record_latency(l);
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.latency_percentile(p), b.latency_percentile(p));
        }
    }

    #[test]
    fn histogram_buckets_are_log2_and_cover_all_samples() {
        let mut stats = SimStats::default();
        for l in [0u64, 1, 2, 3, 4, 9, 9] {
            stats.record_latency(l);
        }
        let histogram = stats.latency_histogram();
        // Buckets: [0,0], [1,1], [2,3], [4,7], [8,15].
        assert_eq!(histogram.len(), 5);
        assert_eq!((histogram[0].lower, histogram[0].upper), (0, 0));
        assert_eq!((histogram[2].lower, histogram[2].upper), (2, 3));
        assert_eq!((histogram[4].lower, histogram[4].upper), (8, 15));
        let counts: Vec<usize> = histogram.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 1, 2, 1, 2]);
        assert_eq!(
            histogram.iter().map(|b| b.count).sum::<usize>(),
            stats.latency_samples.len()
        );
    }
}
