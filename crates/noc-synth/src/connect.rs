//! Switch-interconnect construction.
//!
//! Given a clustering of cores onto switches and the inter-cluster traffic
//! demands, this module decides which switch-to-switch physical links to
//! open.  Two ingredients:
//!
//! * a **backbone** that guarantees connectivity — either a maximum-weight
//!   spanning tree over the demand matrix (few links, tends to produce
//!   acyclic channel dependency graphs) or a ring ordered by cluster index
//!   (the classic shape of Figure 1 of the paper, prone to CDG cycles),
//! * **shortcut links** for the heaviest remaining demands, added while both
//!   endpoint switches stay below the maximum degree allowed by the
//!   technology (the paper points out that link-count constraints are what
//!   keep designers from just opening more links).

use crate::cluster::Clustering;
use noc_topology::{CommGraph, SwitchId, Topology};

/// Which connectivity backbone to build before adding shortcut links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backbone {
    /// Maximum-weight spanning tree over the inter-cluster demand matrix.
    #[default]
    SpanningTree,
    /// Ring over the switches in cluster-index order.
    Ring,
}

/// Parameters of the interconnect construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectConfig {
    /// Backbone shape.
    pub backbone: Backbone,
    /// Maximum number of *neighbouring switches* a switch may have
    /// (bidirectional link pairs count once).  Must be ≥ 2.
    pub max_degree: usize,
    /// Bandwidth assigned to every opened link, in the same abstract MB/s
    /// units as the communication graph.
    pub link_bandwidth: f64,
}

impl Default for ConnectConfig {
    fn default() -> Self {
        ConnectConfig {
            backbone: Backbone::SpanningTree,
            max_degree: 4,
            link_bandwidth: 2000.0,
        }
    }
}

/// Result of the interconnect construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Interconnect {
    /// The switch-level topology (bidirectional links).
    pub topology: Topology,
    /// Switch handles indexed by cluster index.
    pub switches: Vec<SwitchId>,
}

/// Inter-cluster demand matrix: `demand[a][b]` is the bandwidth flowing from
/// cluster `a` to cluster `b`.
pub fn demand_matrix(comm: &CommGraph, clustering: &Clustering) -> Vec<Vec<f64>> {
    let k = clustering.switch_count;
    let mut demand = vec![vec![0.0; k]; k];
    for (_, flow) in comm.flows() {
        let a = clustering.assignment[flow.source.index()];
        let b = clustering.assignment[flow.destination.index()];
        if a != b {
            demand[a][b] += flow.bandwidth;
        }
    }
    demand
}

/// Builds the switch interconnect for `clustering` under `config`.
pub fn build_interconnect(
    comm: &CommGraph,
    clustering: &Clustering,
    config: &ConnectConfig,
) -> Interconnect {
    let k = clustering.switch_count;
    let mut topology = Topology::new();
    let switches: Vec<SwitchId> = (0..k)
        .map(|i| topology.add_switch(format!("sw{i}")))
        .collect();
    if k == 1 {
        return Interconnect { topology, switches };
    }

    let demand = demand_matrix(comm, clustering);
    // Symmetric demand for undirected link decisions.
    let sym = |a: usize, b: usize| demand[a][b] + demand[b][a];

    let mut neighbor_count = vec![0usize; k];
    let mut connected = vec![vec![false; k]; k];
    let connect = |topology: &mut Topology,
                   neighbor_count: &mut Vec<usize>,
                   connected: &mut Vec<Vec<bool>>,
                   a: usize,
                   b: usize| {
        if a == b || connected[a][b] {
            return;
        }
        topology.add_bidirectional_link(switches[a], switches[b], config.link_bandwidth);
        connected[a][b] = true;
        connected[b][a] = true;
        neighbor_count[a] += 1;
        neighbor_count[b] += 1;
    };

    match config.backbone {
        Backbone::Ring => {
            for i in 0..k {
                connect(
                    &mut topology,
                    &mut neighbor_count,
                    &mut connected,
                    i,
                    (i + 1) % k,
                );
            }
        }
        Backbone::SpanningTree => {
            // Prim-style maximum spanning tree over symmetric demand; ties
            // break towards smaller indices for determinism.
            let mut in_tree = vec![false; k];
            in_tree[0] = true;
            for _ in 1..k {
                let mut best: Option<(usize, usize, f64)> = None;
                for a in 0..k {
                    if !in_tree[a] {
                        continue;
                    }
                    for (b, &b_in_tree) in in_tree.iter().enumerate() {
                        if b_in_tree {
                            continue;
                        }
                        let w = sym(a, b);
                        let better = match best {
                            None => true,
                            Some((ba, bb, bw)) => w > bw || (w == bw && (a, b) < (ba, bb)),
                        };
                        if better {
                            best = Some((a, b, w));
                        }
                    }
                }
                let (a, b, _) = best.expect("tree grows one switch per iteration");
                in_tree[b] = true;
                connect(&mut topology, &mut neighbor_count, &mut connected, a, b);
            }
        }
    }

    // Shortcut links: consider unconnected pairs in decreasing demand order
    // and open a link while both endpoints respect the degree constraint.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for a in 0..k {
        for b in (a + 1)..k {
            let w = sym(a, b);
            if w > 0.0 && !connected[a][b] {
                pairs.push((a, b, w));
            }
        }
    }
    pairs.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then((x.0, x.1).cmp(&(y.0, y.1)))
    });
    for (a, b, _) in pairs {
        if neighbor_count[a] < config.max_degree && neighbor_count[b] < config.max_degree {
            connect(&mut topology, &mut neighbor_count, &mut connected, a, b);
        }
    }

    Interconnect { topology, switches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster_cores;
    use noc_graph::traversal;
    use noc_topology::benchmarks::Benchmark;

    fn interconnect_for(
        benchmark: Benchmark,
        switches: usize,
        config: &ConnectConfig,
    ) -> (CommGraph, Clustering, Interconnect) {
        let comm = benchmark.comm_graph();
        let clustering = cluster_cores(&comm, switches);
        let ic = build_interconnect(&comm, &clustering, config);
        (comm, clustering, ic)
    }

    #[test]
    fn interconnect_is_always_weakly_connected() {
        for benchmark in [Benchmark::D26Media, Benchmark::D36x8, Benchmark::D38Tvopd] {
            for switches in [2, 5, 9, 14] {
                let (_, _, ic) = interconnect_for(benchmark, switches, &ConnectConfig::default());
                assert!(
                    traversal::is_weakly_connected(&ic.topology.to_switch_graph()),
                    "{benchmark} with {switches} switches"
                );
            }
        }
    }

    #[test]
    fn ring_backbone_has_at_least_k_link_pairs() {
        let config = ConnectConfig {
            backbone: Backbone::Ring,
            ..ConnectConfig::default()
        };
        let (_, _, ic) = interconnect_for(Benchmark::D26Media, 6, &config);
        assert!(ic.topology.link_count() >= 2 * 6);
    }

    #[test]
    fn spanning_tree_backbone_has_at_least_k_minus_1_pairs() {
        let (_, _, ic) = interconnect_for(Benchmark::D26Media, 6, &ConnectConfig::default());
        assert!(ic.topology.link_count() >= 2 * 5);
    }

    #[test]
    fn degree_constraint_is_respected_for_shortcuts() {
        let config = ConnectConfig {
            max_degree: 3,
            ..ConnectConfig::default()
        };
        let (_, _, ic) = interconnect_for(Benchmark::D36x8, 12, &config);
        // The spanning tree may exceed the limit on a hub node by necessity,
        // but the shortcut stage never pushes a switch beyond max_degree + the
        // backbone degree it already had.  With a tree backbone the absolute
        // bound max(tree_degree, max_degree) is hard to state simply, so we
        // check the practical bound that no switch exceeds max_degree unless
        // the tree alone made it so.
        let tree_only = build_interconnect(
            &Benchmark::D36x8.comm_graph(),
            &cluster_cores(&Benchmark::D36x8.comm_graph(), 12),
            &ConnectConfig {
                max_degree: 2, // forces "no shortcuts beyond the tree"
                ..ConnectConfig::default()
            },
        );
        for (sw, _) in ic.topology.switches() {
            let pairs = ic.topology.links_from(sw).count();
            let tree_pairs = tree_only.topology.links_from(sw).count();
            assert!(
                pairs <= 3.max(tree_pairs),
                "switch {sw} exceeds degree bound"
            );
        }
    }

    #[test]
    fn single_switch_interconnect_is_empty() {
        let (_, _, ic) = interconnect_for(Benchmark::D26Media, 1, &ConnectConfig::default());
        assert_eq!(ic.topology.switch_count(), 1);
        assert_eq!(ic.topology.link_count(), 0);
    }

    #[test]
    fn demand_matrix_only_counts_cross_cluster_flows() {
        let comm = Benchmark::D26Media.comm_graph();
        let clustering = cluster_cores(&comm, 4);
        let demand = demand_matrix(&comm, &clustering);
        let cross: f64 = demand.iter().flatten().sum();
        let internal = clustering.internal_bandwidth(&comm);
        let total = comm.total_bandwidth();
        assert!((cross + internal - total).abs() < 1e-6);
        for (i, row) in demand.iter().enumerate() {
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = interconnect_for(Benchmark::D36x6, 10, &ConnectConfig::default()).2;
        let b = interconnect_for(Benchmark::D36x6, 10, &ConnectConfig::default()).2;
        assert_eq!(a.topology, b.topology);
    }
}
