//! Simulates a synthesized benchmark design before and after deadlock
//! removal and reports latency/throughput, showing that the repair costs
//! essentially nothing at runtime.
//!
//! Run with `cargo run --release --example wormhole_simulation`.

use noc_suite::deadlock::removal::{remove_deadlocks, RemovalConfig};
use noc_suite::deadlock::verify;
use noc_suite::sim::{SimConfig, Simulator, TrafficConfig};
use noc_suite::synth::{synthesize, SynthesisConfig};
use noc_suite::topology::benchmarks::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::D36x8;
    let comm = benchmark.comm_graph();
    let design = synthesize(&comm, &SynthesisConfig::with_switches(12))?;

    println!(
        "{benchmark}: {} cores, {} flows, 12-switch application-specific topology",
        comm.core_count(),
        comm.flow_count()
    );
    match verify::check_deadlock_free(&design.topology, &design.routes) {
        Ok(()) => println!("input routing is already deadlock-free"),
        Err(cycle) => println!("input routing can deadlock ({cycle})"),
    }

    let sim_config = SimConfig {
        buffer_depth: 2,
        deadlock_threshold: 1_000,
        max_cycles: 500_000,
    };
    let traffic = TrafficConfig {
        packets_per_flow: 4,
        packet_length: 5,
        mean_gap_cycles: 8,
        seed: 99,
    };

    let before = Simulator::new(&design.topology, &comm, &design.routes, &sim_config)
        .run(&traffic);
    println!(
        "before removal: deadlocked = {}, delivered {}/{}, mean latency {:.1}",
        before.deadlocked,
        before.stats.delivered_packets,
        before.stats.injected_packets,
        before.stats.mean_latency()
    );

    let mut topology = design.topology.clone();
    let mut routes = design.routes.clone();
    let report = remove_deadlocks(&mut topology, &mut routes, &RemovalConfig::default())?;
    let after = Simulator::new(&topology, &comm, &routes, &sim_config).run(&traffic);
    println!(
        "after removal ({} VCs added): deadlocked = {}, delivered {}/{}, mean latency {:.1}",
        report.added_vcs,
        after.deadlocked,
        after.stats.delivered_packets,
        after.stats.injected_packets,
        after.stats.mean_latency()
    );
    Ok(())
}
