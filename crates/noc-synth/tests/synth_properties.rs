//! Property-based tests for the topology synthesizer on random
//! communication graphs.

use noc_routing::validate::validate_routes;
use noc_synth::cluster::cluster_cores;
use noc_synth::{synthesize, SynthesisConfig};
use noc_topology::validate::validate_design;
use noc_topology::CommGraph;
use proptest::prelude::*;

/// Builds a communication graph with `cores` cores and the given flow list.
fn build_comm(cores: usize, flows: &[(usize, usize, u32)]) -> CommGraph {
    let mut comm = CommGraph::new();
    let ids: Vec<_> = (0..cores).map(|i| comm.add_core(format!("c{i}"))).collect();
    for &(a, b, bw) in flows {
        let (a, b) = (a % cores, b % cores);
        if a != b {
            comm.add_flow(ids[a], ids[b], 1.0 + bw as f64);
        }
    }
    comm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Synthesis always yields a consistent design: complete core mapping,
    /// connected routes, valid route structure — for any random traffic and
    /// any feasible switch count.
    #[test]
    fn synthesis_is_always_consistent(
        cores in 4usize..24,
        switches in 1usize..12,
        flows in proptest::collection::vec((0usize..24, 0usize..24, 1u32..500), 1..60),
    ) {
        prop_assume!(switches <= cores);
        let comm = build_comm(cores, &flows);
        let design = synthesize(&comm, &SynthesisConfig::with_switches(switches)).unwrap();
        prop_assert_eq!(design.topology.switch_count(), switches);
        validate_design(&design.topology, &comm, &design.core_map).unwrap();
        validate_routes(&design.topology, &comm, &design.core_map, &design.routes).unwrap();
        // Every link opened by the synthesizer starts with a single VC.
        prop_assert_eq!(design.topology.extra_vc_count(), 0);
    }

    /// Clustering is a balanced partition: every core assigned, cluster sizes
    /// within one of each other (ceil capacity), determinism.
    #[test]
    fn clustering_is_a_balanced_partition(
        cores in 2usize..30,
        switches in 1usize..15,
        flows in proptest::collection::vec((0usize..30, 0usize..30, 1u32..100), 0..40),
    ) {
        prop_assume!(switches <= cores);
        let comm = build_comm(cores, &flows);
        let clustering = cluster_cores(&comm, switches);
        prop_assert_eq!(clustering.assignment.len(), cores);
        prop_assert!(clustering.assignment.iter().all(|&c| c < switches));
        let capacity = cores.div_ceil(switches);
        for cluster in 0..switches {
            prop_assert!(clustering.members(cluster).len() <= capacity);
        }
        prop_assert_eq!(clustering, cluster_cores(&comm, switches));
    }

    /// The ring backbone variant is also always routable.
    #[test]
    fn ring_backbone_synthesis_is_consistent(
        cores in 4usize..20,
        switches in 2usize..10,
        flows in proptest::collection::vec((0usize..20, 0usize..20, 1u32..200), 1..40),
    ) {
        prop_assume!(switches <= cores);
        let comm = build_comm(cores, &flows);
        let design = synthesize(&comm, &SynthesisConfig::with_switches_ring(switches)).unwrap();
        validate_routes(&design.topology, &comm, &design.core_map, &design.routes).unwrap();
    }
}
