//! Deadlock-freedom and integrity verification.

use crate::cdg::Cdg;
use noc_routing::RouteSet;
use noc_topology::{Channel, FlowId, Topology};
use std::error::Error;
use std::fmt;

/// A CDG cycle found by [`check_deadlock_free`]: evidence that the design can
/// deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockCycle {
    /// The channels forming the cyclic dependency, in order.
    pub channels: Vec<Channel>,
    /// The flows pinning each edge of the cycle: `edge_flows[i]` are the
    /// flows whose routes induce the dependency `channels[i] →
    /// channels[(i + 1) % len]`.  Conservatism-gap reports use this to name
    /// the traffic responsible for a cycle.
    pub edge_flows: Vec<Vec<FlowId>>,
}

impl fmt::Display for DeadlockCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cyclic channel dependency of length {}: ",
            self.channels.len()
        )?;
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl Error for DeadlockCycle {}

/// Checks the necessary-and-sufficient condition for deadlock freedom with
/// static routing [Dally & Towles]: the channel dependency graph must be
/// acyclic.
///
/// # Errors
///
/// Returns the smallest cycle found as a [`DeadlockCycle`] when the design
/// can deadlock.
pub fn check_deadlock_free(topology: &Topology, routes: &RouteSet) -> Result<(), DeadlockCycle> {
    let cdg = Cdg::build(topology, routes);
    match cdg.smallest_cycle() {
        None => Ok(()),
        Some(channels) => {
            let edge_flows = channels
                .iter()
                .enumerate()
                .map(|(i, &from)| {
                    let to = channels[(i + 1) % channels.len()];
                    cdg.dependency_flows(from, to).unwrap_or_default().to_vec()
                })
                .collect();
            Err(DeadlockCycle {
                channels,
                edge_flows,
            })
        }
    }
}

/// Checks that every channel referenced by `routes` exists in `topology`
/// (link known, VC index within the link's VC count).  Returns the offending
/// channels, empty when everything is consistent.
pub fn missing_channels(topology: &Topology, routes: &RouteSet) -> Vec<Channel> {
    let mut missing = Vec::new();
    for (_, route) in routes.iter() {
        for &channel in route.channels() {
            match topology.link(channel.link) {
                Some(link) if channel.vc < link.vcs => {}
                _ => {
                    if !missing.contains(&channel) {
                        missing.push(channel);
                    }
                }
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_routing::Route;
    use noc_topology::{FlowId, LinkId};

    fn ring_with_cycle() -> (Topology, RouteSet) {
        let mut topo = Topology::new();
        let sw: Vec<_> = (0..3).map(|i| topo.add_switch(format!("s{i}"))).collect();
        let links: Vec<LinkId> = (0..3)
            .map(|i| topo.add_link(sw[i], sw[(i + 1) % 3], 1.0))
            .collect();
        let mut routes = RouteSet::new(3);
        for i in 0..3 {
            routes.set_route(
                FlowId::from_index(i),
                Route::from_links([links[i], links[(i + 1) % 3]]),
            );
        }
        (topo, routes)
    }

    #[test]
    fn cyclic_design_is_rejected_with_evidence() {
        let (topo, routes) = ring_with_cycle();
        let err = check_deadlock_free(&topo, &routes).unwrap_err();
        assert_eq!(err.channels.len(), 3);
        assert!(err.to_string().contains("length 3"));
        assert!(err.to_string().contains("->"));
    }

    #[test]
    fn cycle_evidence_names_the_pinning_flows() {
        let (topo, routes) = ring_with_cycle();
        let err = check_deadlock_free(&topo, &routes).unwrap_err();
        assert_eq!(err.edge_flows.len(), err.channels.len());
        // Each edge of the ring cycle is pinned by exactly one flow: the one
        // whose route traverses that consecutive link pair.
        for flows in &err.edge_flows {
            assert_eq!(flows.len(), 1);
        }
        let distinct: std::collections::HashSet<_> = err.edge_flows.iter().flatten().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn breaking_the_cycle_passes_verification() {
        let (mut topo, mut routes) = ring_with_cycle();
        // Manually re-route flow 2's second hop onto a new VC.
        let new_vc = topo.add_vc(LinkId::from_index(0)).unwrap();
        routes
            .route_mut(FlowId::from_index(2))
            .unwrap()
            .channels_mut()[1] = new_vc;
        assert!(check_deadlock_free(&topo, &routes).is_ok());
    }

    #[test]
    fn missing_channels_detects_phantom_vcs_and_links() {
        let (topo, mut routes) = ring_with_cycle();
        routes
            .route_mut(FlowId::from_index(0))
            .unwrap()
            .channels_mut()[0] = Channel::new(LinkId::from_index(0), 7);
        routes
            .route_mut(FlowId::from_index(1))
            .unwrap()
            .channels_mut()[0] = Channel::base(LinkId::from_index(42));
        let missing = missing_channels(&topo, &routes);
        assert_eq!(missing.len(), 2);
        assert!(missing.contains(&Channel::new(LinkId::from_index(0), 7)));
        assert!(missing.contains(&Channel::base(LinkId::from_index(42))));
    }

    #[test]
    fn consistent_design_has_no_missing_channels() {
        let (topo, routes) = ring_with_cycle();
        assert!(missing_channels(&topo, &routes).is_empty());
    }
}
