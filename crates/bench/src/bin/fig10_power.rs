//! Reproduces Figure 10: normalised NoC power consumption of the
//! resource-ordering baseline relative to the deadlock-removal algorithm for
//! the six SoC benchmarks at 14 switches.
//!
//! All six benchmarks run as one parallel sweep; pass `--threads <n>` to
//! pin the worker count (default: auto-size to the machine) and
//! `--json <path>` to write the per-benchmark comparison as a JSON
//! artifact.

use noc_bench::artifact::FigureCli;
use noc_bench::{power_comparisons, sweeps};
use noc_topology::benchmarks::Benchmark;

fn main() {
    let args = FigureCli::parse("fig10_power");
    let _trace = args.trace_session();
    if noc_bench::jobs::run_resumed(&args) {
        return;
    }
    println!(
        "# Figure 10 — normalised power (resource ordering / deadlock removal), {} switches",
        sweeps::FIG10_SWITCHES
    );
    println!(
        "{:>12} {:>18} {:>18} {:>12} {:>12}",
        "benchmark", "removal_norm", "ordering_norm", "removal_vc", "ordering_vc"
    );
    let comparisons = power_comparisons(
        Benchmark::ALL,
        sweeps::FIG10_SWITCHES,
        args.threads,
        |progress| {
            eprintln!(
                "[{}/{}] {} done",
                progress.completed, progress.total, progress.point.benchmark
            );
        },
    );
    for c in &comparisons {
        println!(
            "{:>12} {:>18.3} {:>18.3} {:>12} {:>12}",
            c.benchmark,
            1.0,
            c.normalised_ordering_power(),
            c.removal_vcs,
            c.ordering_vcs
        );
    }
    args.write_artifact(&comparisons);
}
