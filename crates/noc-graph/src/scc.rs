//! Strongly-connected components (Tarjan's algorithm, iterative).
//!
//! A CDG is deadlock-free exactly when every strongly-connected component is
//! trivial (a single node without a self-loop), so SCC computation doubles as
//! a fast acyclicity check and is also used to restrict expensive cycle
//! enumeration to the component that actually contains cycles.

use crate::csr::GraphView;
use crate::digraph::NodeId;

/// Computes the strongly-connected components of `graph`.
///
/// Components are returned in reverse topological order of the condensation
/// (i.e. a component only depends on components that appear *before* it in
/// the returned vector).  Every node appears in exactly one component.
///
/// Generic over [`GraphView`]: runs on both the mutable
/// [`DiGraph`](crate::DiGraph) and a frozen [`CsrGraph`](crate::CsrGraph)
/// with identical output (freezing preserves successor iteration order).
///
/// # Example
///
/// ```
/// use noc_graph::{DiGraph, scc};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, a, ());
/// g.add_edge(b, c, ());
/// let comps = scc::tarjan_scc(&g);
/// assert_eq!(comps.len(), 2);
/// ```
pub fn tarjan_scc<G: GraphView>(graph: &G) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS stack entry: (node, iterator position over successors).
    enum Frame {
        Enter(NodeId),
        Continue(NodeId, usize),
    }

    for start in graph.node_ids() {
        if index[start.index()] != usize::MAX {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(start)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v.index()] = next_index;
                    lowlink[v.index()] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v.index()] = true;
                    call_stack.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, succ_pos) => {
                    let succs: Vec<NodeId> = graph.successors(v).collect();
                    let mut pos = succ_pos;
                    let mut descended = false;
                    while pos < succs.len() {
                        let w = succs[pos];
                        if index[w.index()] == usize::MAX {
                            // Descend into w, then resume v at pos (lowlink of
                            // w is folded in when we resume).
                            call_stack.push(Frame::Continue(v, pos));
                            call_stack.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w.index()] {
                            lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                        }
                        pos += 1;
                    }
                    if descended {
                        continue;
                    }
                    // All successors processed: fold child lowlinks that were
                    // computed after we suspended (children are on the stack
                    // below us in `succs` order; easiest is to re-scan).
                    for &w in &succs {
                        if on_stack[w.index()] || index[w.index()] != usize::MAX {
                            // Only fold lowlink through tree/back edges where the
                            // child is still on the Tarjan stack, or was a tree
                            // child (its lowlink is final by now).
                            if on_stack[w.index()] {
                                lowlink[v.index()] = lowlink[v.index()].min(lowlink[w.index()]);
                            }
                        }
                    }
                    if lowlink[v.index()] == index[v.index()] {
                        let mut component = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w.index()] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        components.push(component);
                    }
                }
            }
        }
    }
    components
}

/// Returns the strongly-connected components that can contain a cycle:
/// components with more than one node, plus single nodes with a self-loop.
pub fn cyclic_components<G: GraphView>(graph: &G) -> Vec<Vec<NodeId>> {
    tarjan_scc(graph)
        .into_iter()
        .filter(|comp| comp.len() > 1 || (comp.len() == 1 && graph.has_edge(comp[0], comp[0])))
        .collect()
}

/// Returns `true` if the graph contains at least one directed cycle.
pub fn has_cycle<G: GraphView>(graph: &G) -> bool {
    !cyclic_components(graph).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    #[test]
    fn dag_has_trivial_components() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
        assert!(!has_cycle(&g));
        assert!(cyclic_components(&g).is_empty());
    }

    #[test]
    fn cycle_forms_one_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for i in 0..4 {
            g.add_edge(nodes[i], nodes[(i + 1) % 4], ());
        }
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
        assert!(has_cycle(&g));
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        // cycle 0-1-2, cycle 3-4-5, bridge 2->3
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        g.add_edge(n[3], n[4], ());
        g.add_edge(n[4], n[5], ());
        g.add_edge(n[5], n[3], ());
        g.add_edge(n[2], n[3], ());
        let comps = cyclic_components(&g);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn self_loop_is_cyclic() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert!(has_cycle(&g));
        assert_eq!(cyclic_components(&g).len(), 1);
    }

    #[test]
    fn removing_the_back_edge_breaks_the_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let back = g.add_edge(b, a, ());
        assert!(has_cycle(&g));
        g.remove_edge(back);
        assert!(!has_cycle(&g));
    }

    #[test]
    fn reverse_topological_order_of_condensation() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let comps = tarjan_scc(&g);
        // b's component must come before a's (reverse topological order).
        let pos_a = comps.iter().position(|c| c.contains(&a)).unwrap();
        let pos_b = comps.iter().position(|c| c.contains(&b)).unwrap();
        assert!(pos_b < pos_a);
    }

    #[test]
    fn every_node_in_exactly_one_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..10).map(|_| g.add_node(())).collect();
        for i in 0..9 {
            g.add_edge(n[i], n[i + 1], ());
        }
        g.add_edge(n[9], n[4], ()); // one cycle 4..9
        let comps = tarjan_scc(&g);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 10);
        let mut seen = [false; 10];
        for c in &comps {
            for node in c {
                assert!(!seen[node.index()], "node appears twice");
                seen[node.index()] = true;
            }
        }
    }
}
